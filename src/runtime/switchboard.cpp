#include "runtime/switchboard.hpp"

#include "trace/metrics_registry.hpp"

#include <algorithm>

namespace illixr {

// ---------------------------------------------------------------------------
// LatestSlots: pin-claim protected latest-value slots.
//
// One atomic word per slot carries both roles: the low bits count
// readers currently copying the slot's shared_ptr, the high bit
// (kWriterBit) is the writer's exclusive claim. Because every crossing
// operation is an RMW on that same word, coherence totally orders them
// — either the writer's claim-CAS observes a reader's pin (and fails,
// sending the writer to the next slot), or the reader's pin-increment
// observes the claim bit (and backs off) — with no cross-variable
// fencing. All synchronization is acquire/release on the pin word:
// the writer's plain shared_ptr store is ordered by its claim
// (acquire) and release (release-RMW); a reader's copy is ordered by
// its pin (acquire, reading from the writer's release).
//
// A pinned slot is never overwritten, so the value a reader copies is
// kept alive by the slot itself for the whole copy; it is always the
// value the cursor advertised or a newer one (slots are reused in
// publish order), which is exactly latest() semantics.
// ---------------------------------------------------------------------------

void
LatestSlots::store(EventPtr event, std::uint64_t publish_count)
{
    for (std::size_t probe = 0; probe < kSlots; ++probe) {
        const std::size_t idx =
            static_cast<std::size_t>((publish_count + probe) % kSlots);
        Slot &s = slots_[idx];
        std::uint32_t expected = 0;
        if (!s.pins.compare_exchange_strong(expected, kWriterBit,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed))
            continue; // A reader is mid-copy here; try the next slot.
        s.value = std::move(event);
        s.pins.fetch_sub(kWriterBit, std::memory_order_release);
        cursor_.store((publish_count << kIndexBits) | idx,
                      std::memory_order_release);
        return;
    }

    // Pathological: kSlots readers all stalled mid-copy at once. Fall
    // back to a mutex-guarded side slot so the publisher still never
    // waits on any individual reader.
    {
        std::lock_guard<std::mutex> lock(fallback_mutex_);
        fallback_ = std::move(event);
    }
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    cursor_.store((publish_count << kIndexBits) | kFallbackIndex,
                  std::memory_order_release);
}

EventPtr
LatestSlots::load() const
{
    for (;;) {
        const std::uint64_t c = cursor_.load(std::memory_order_acquire);
        if (c == 0)
            return nullptr;
        const std::uint64_t idx = c & kIndexMask;
        if (idx == kFallbackIndex) {
            std::lock_guard<std::mutex> lock(fallback_mutex_);
            return fallback_;
        }
        const Slot &s = slots_[idx];
        if (s.pins.fetch_add(1, std::memory_order_acquire) &
            kWriterBit) {
            // The writer claimed this slot between the cursor read
            // and the pin; a newer cursor is already (or about to be)
            // published, so restart from it.
            s.pins.fetch_sub(1, std::memory_order_relaxed);
            retries_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        EventPtr e = s.value;
        s.pins.fetch_sub(1, std::memory_order_release);
        return e;
    }
}

// ---------------------------------------------------------------------------
// SyncReader: bounded ring with per-cell sequence validation.
//
// The producer side (push) runs under the topic publish lock, so there
// is exactly one producer; the consumer side (popCell) is CAS-based
// because the producer also acts as a consumer when it evicts the
// oldest event on overflow, and may race the reader doing so.
// ---------------------------------------------------------------------------

void
SyncReader::init(std::size_t capacity)
{
    std::size_t cap = 1;
    while (cap < capacity)
        cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    for (std::size_t i = 0; i < cap; ++i)
        cells_[i].seq.store(i, std::memory_order_relaxed);
    mask_ = cap - 1;
}

std::size_t
SyncReader::push(const EventPtr &event)
{
    std::size_t evictions = 0;
    for (;;) {
        const std::uint64_t t = tail_.load(std::memory_order_relaxed);
        Cell &cell = cells_[t & mask_];
        if (cell.seq.load(std::memory_order_acquire) == t) {
            cell.value = event;
            cell.seq.store(t + 1, std::memory_order_release);
            tail_.store(t + 1, std::memory_order_release);
            return evictions;
        }
        // Ring full: evict the oldest queued event so the survivors
        // are always the newest `capacity()` events, exactly like the
        // historical deque policy. The consumer may drain the cell
        // first, in which case the retry simply finds room.
        EventPtr victim;
        if (popCell(victim)) {
            ++evictions;
            dropped_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

bool
SyncReader::popCell(EventPtr &out)
{
    for (;;) {
        std::uint64_t h = head_.load(std::memory_order_relaxed);
        Cell &cell = cells_[h & mask_];
        const std::uint64_t s = cell.seq.load(std::memory_order_acquire);
        const std::int64_t diff =
            static_cast<std::int64_t>(s) - static_cast<std::int64_t>(h + 1);
        if (diff < 0)
            return false; // seq == head: cell not yet produced — empty.
        if (diff == 0) {
            if (head_.compare_exchange_weak(h, h + 1,
                                            std::memory_order_relaxed)) {
                out = std::move(cell.value);
                // Recycle the cell for the producer one lap ahead
                // (position h + capacity expects seq == h + capacity).
                cell.seq.store(h + mask_ + 1, std::memory_order_release);
                return true;
            }
            continue; // Lost the CAS to the other dequeuer; retry.
        }
        // diff > 0: another dequeuer already claimed this cell; retry
        // from the advanced head.
    }
}

EventPtr
SyncReader::pop()
{
    EventPtr e;
    if (!popCell(e))
        return nullptr;
    // Reading an event inside an executor invocation marks it as a
    // causal input of whatever the invocation publishes.
    TraceContext::noteConsumed(e->trace);
    return e;
}

std::size_t
SyncReader::popAll(std::vector<EventPtr> &out)
{
    std::size_t n = 0;
    EventPtr e;
    while (popCell(e)) {
        TraceContext::noteConsumed(e->trace);
        out.push_back(std::move(e));
        ++n;
    }
    return n;
}

std::size_t
SyncReader::pending() const
{
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return t > h ? static_cast<std::size_t>(t - h) : 0;
}

std::size_t
SyncReader::dropped() const
{
    return static_cast<std::size_t>(
        dropped_.load(std::memory_order_acquire));
}

// ---------------------------------------------------------------------------
// Switchboard
// ---------------------------------------------------------------------------

Switchboard::TopicPtr
Switchboard::topicForUntyped(const std::string &topic)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TopicPtr &t = topics_[topic];
    if (!t) {
        t = std::make_shared<TopicState>();
        t->name = topic;
        by_index_.push_back(t);
        t->index = static_cast<std::uint32_t>(by_index_.size());
        t->sink = sink_;
        t->hook = hook_;
        t->pool_chunk = pool_chunk_events_;
        t->metrics = metrics_;
        wireTopicMetricsLocked(*t);
    }
    return t;
}

Switchboard::TopicPtr
Switchboard::topicFor(const std::string &topic, std::type_index type)
{
    TopicPtr t = topicForUntyped(topic);
    std::lock_guard<std::mutex> lock(t->mutex);
    if (t->type == std::type_index(typeid(void))) {
        t->type = type;
    } else if (t->type != type) {
        throw std::logic_error("switchboard: topic '" + topic +
                               "' already carries a different payload "
                               "type");
    }
    return t;
}

std::shared_ptr<SyncReader>
Switchboard::attachSyncReader(const TopicPtr &t, std::size_t capacity)
{
    // The topic's fan-out list holds a raw pointer; ownership lives in
    // the returned shared_ptr, whose deleter detaches the raw entry
    // under the topic mutex before deleting. publish therefore
    // iterates plain pointers — no per-reader weak_ptr lock, and the
    // detach serializes against any in-flight publish.
    SyncReader *raw = new SyncReader();
    raw->init(capacity == 0 ? 1 : capacity);
    std::shared_ptr<SyncReader> reader(raw, [t](SyncReader *r) {
        {
            std::lock_guard<std::mutex> lock(t->mutex);
            auto &v = t->readers;
            v.erase(std::remove(v.begin(), v.end(), r), v.end());
        }
        delete r;
    });
    std::lock_guard<std::mutex> lock(t->mutex);
    t->readers.push_back(raw);
    return reader;
}

std::size_t
Switchboard::effectiveCapacity(std::size_t requested) const
{
    if (requested != 0)
        return requested;
    std::lock_guard<std::mutex> lock(mutex_);
    return default_ring_capacity_;
}

std::shared_ptr<EventPoolArena>
Switchboard::poolForTopic(const TopicPtr &t)
{
    std::lock_guard<std::mutex> lock(t->mutex);
    if (!t->pool) {
        t->pool = EventPoolArena::create(t->pool_chunk);
        if (t->metrics)
            t->pool->setCounters(
                &t->metrics->counter("sb.pool." + t->name + ".hits"),
                &t->metrics->counter("sb.pool." + t->name + ".misses"));
    }
    return t->pool;
}

void
Switchboard::publishToTopic(const TopicPtr &t, EventPtr event)
{
    TraceId id;
    std::vector<TraceId> parents;
    std::shared_ptr<TraceSink> sink;
    std::vector<std::shared_ptr<PublishListener>> listeners;
    TimePoint event_time = 0;
    {
        std::lock_guard<std::mutex> lock(t->mutex);
        ++t->publish_attempts;
        if (t->hook) {
            // The event is still exclusively held: the hook may
            // corrupt it in place or veto the publish entirely.
            Event *mut = const_cast<Event *>(event.get());
            if (!(*t->hook)(t->name, t->publish_attempts, *mut)) {
                if (t->sink)
                    t->sink->recordSkip(t->name,
                                        TraceContext::active()
                                            ? TraceContext::now()
                                            : event->time,
                                        SkipCause::InjectedDrop);
                return;
            }
        }
        ++t->publish_count;
        id = TraceId{t->index, t->publish_count};

        // Stamp the (still exclusively held) event. Events are
        // immutable from the readers' perspective; the switchboard is
        // the single writer of the trace fields and does so before
        // any fan-out.
        Event *mut = const_cast<Event *>(event.get());
        mut->trace = id;
        if (mut->parents.empty() && TraceContext::active())
            mut->parents = TraceContext::consumed();
        sink = t->sink;
        if (sink)
            parents = mut->parents;
        if (t->m_publishes)
            t->m_publishes->add(1);

        // Fan out to the synchronous readers (detach-on-destroy keeps
        // every entry live; see attachSyncReader).
        for (SyncReader *reader : t->readers) {
            const std::size_t drops = reader->push(event);
            if (drops) {
                if (t->m_drops)
                    t->m_drops->add(drops);
                if (t->m_reader_dropped)
                    t->m_reader_dropped->add(drops);
                if (sink)
                    sink->recordSkip(t->name, TraceContext::now(),
                                     SkipCause::QueueDrop);
            }
        }

        // Store into the latest-value slots last: this is the
        // event's final use here, so the slot adopts our reference
        // instead of paying a refcount round trip. (Ordering against
        // the ring pushes is unobservable — everything above runs
        // under the topic mutex and the sink records nothing here.)
        event_time = event->time;
        t->latest.store(std::move(event), t->publish_count);

        // Snapshot live listeners; they run after the lock drops so a
        // listener may publish, subscribe, or wake a worker pool
        // without deadlocking against this topic.
        auto lit = t->listeners.begin();
        while (lit != t->listeners.end()) {
            if (auto listener = lit->lock()) {
                listeners.push_back(std::move(listener));
                ++lit;
            } else {
                lit = t->listeners.erase(lit);
            }
        }
    }

    if (sink) {
        EventRecord rec;
        rec.id = id;
        rec.parents = std::move(parents);
        rec.topic = t->name;
        rec.event_time = event_time;
        rec.publish_time =
            TraceContext::active() ? TraceContext::now() : event_time;
        rec.span = TraceContext::currentSpan();
        sink->recordEvent(std::move(rec));
    }

    for (const auto &listener : listeners) {
        // One throwing listener must not skip the rest or poison the
        // topic: contain, count, continue.
        try {
            (*listener)(t->name);
        } catch (...) {
            t->listener_exceptions.fetch_add(1,
                                             std::memory_order_relaxed);
        }
    }
}

PublishListenerHandle
Switchboard::onPublish(const std::string &topic, PublishListener listener)
{
    auto handle = std::make_shared<PublishListener>(std::move(listener));
    TopicPtr t = topicForUntyped(topic);
    std::lock_guard<std::mutex> lock(t->mutex);
    t->listeners.push_back(handle);
    return handle;
}

std::size_t
Switchboard::publishCount(const std::string &topic) const
{
    TopicPtr t;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = topics_.find(topic);
        if (it == topics_.end())
            return 0;
        t = it->second;
    }
    std::lock_guard<std::mutex> lock(t->mutex);
    return t->publish_count;
}

std::vector<std::string>
Switchboard::topicNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(topics_.size());
    for (const auto &[name, topic] : topics_)
        names.push_back(name);
    return names;
}

std::uint32_t
Switchboard::topicIndex(const std::string &topic) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = topics_.find(topic);
    if (it == topics_.end())
        return 0;
    return it->second->index;
}

void
Switchboard::setTraceSink(std::shared_ptr<TraceSink> sink)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sink_ = sink;
    for (auto &[name, topic] : topics_) {
        std::lock_guard<std::mutex> tlock(topic->mutex);
        topic->sink = sink;
    }
}

void
Switchboard::setMetrics(MetricsRegistry *metrics)
{
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_ = metrics;
    for (auto &[name, topic] : topics_) {
        std::lock_guard<std::mutex> tlock(topic->mutex);
        topic->metrics = metrics;
        wireTopicMetricsLocked(*topic);
    }
}

void
Switchboard::wireTopicMetricsLocked(TopicState &t) const
{
    if (!metrics_) {
        // Detach: per-run registries die with the run; dangling
        // cached handles were PR 4's kernel-pool bug.
        t.m_publishes = nullptr;
        t.m_drops = nullptr;
        t.m_reader_dropped = nullptr;
        if (t.pool)
            t.pool->setCounters(nullptr, nullptr);
        return;
    }
    t.m_publishes =
        &metrics_->counter("sb.topic." + t.name + ".publishes");
    t.m_drops = &metrics_->counter("sb.topic." + t.name + ".drops");
    t.m_reader_dropped = &metrics_->counter("sb.reader.dropped");
    if (t.pool)
        t.pool->setCounters(
            &metrics_->counter("sb.pool." + t.name + ".hits"),
            &metrics_->counter("sb.pool." + t.name + ".misses"));
}

void
Switchboard::flushMetrics()
{
    MetricsRegistry *m = nullptr;
    std::vector<TopicPtr> snapshot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!metrics_)
            return;
        m = metrics_;
        snapshot.reserve(topics_.size());
        for (const auto &[name, topic] : topics_)
            snapshot.push_back(topic);
    }
    for (const TopicPtr &t : snapshot) {
        m->gauge("sb.topic." + t->name + ".latest_retries")
            .set(static_cast<double>(t->latest.retries()));
        m->gauge("sb.topic." + t->name + ".latest_fallbacks")
            .set(static_cast<double>(t->latest.fallbacks()));
        std::shared_ptr<EventPoolArena> pool;
        {
            std::lock_guard<std::mutex> tlock(t->mutex);
            pool = t->pool;
        }
        if (pool) {
            m->gauge("sb.pool." + t->name + ".live")
                .set(static_cast<double>(pool->live()));
            m->gauge("sb.pool." + t->name + ".hit_rate")
                .set(pool->hitRate());
        }
    }
}

void
Switchboard::setDefaultRingCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    default_ring_capacity_ = capacity == 0 ? 1024 : capacity;
}

void
Switchboard::setPoolChunkEvents(std::size_t events)
{
    std::lock_guard<std::mutex> lock(mutex_);
    pool_chunk_events_ = events == 0 ? 64 : events;
    for (auto &[name, topic] : topics_) {
        std::lock_guard<std::mutex> tlock(topic->mutex);
        if (!topic->pool)
            topic->pool_chunk = pool_chunk_events_;
    }
}

Switchboard::PoolStats
Switchboard::poolStats(const std::string &topic) const
{
    PoolStats stats;
    TopicPtr t;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = topics_.find(topic);
        if (it == topics_.end())
            return stats;
        t = it->second;
    }
    std::shared_ptr<EventPoolArena> pool;
    {
        std::lock_guard<std::mutex> lock(t->mutex);
        pool = t->pool;
    }
    if (pool) {
        stats.hits = pool->hits();
        stats.misses = pool->misses();
        stats.live = pool->live();
        stats.hit_rate = pool->hitRate();
    }
    return stats;
}

std::uint64_t
Switchboard::latestRetries() const
{
    std::vector<TopicPtr> snapshot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshot.reserve(topics_.size());
        for (const auto &[name, topic] : topics_)
            snapshot.push_back(topic);
    }
    std::uint64_t total = 0;
    for (const TopicPtr &t : snapshot)
        total += t->latest.retries();
    return total;
}

void
Switchboard::setPublishHook(PublishHookHandle hook)
{
    std::lock_guard<std::mutex> lock(mutex_);
    hook_ = hook;
    for (auto &[name, topic] : topics_) {
        std::lock_guard<std::mutex> tlock(topic->mutex);
        topic->hook = hook;
    }
}

std::uint64_t
Switchboard::publishAttempts(const std::string &topic) const
{
    TopicPtr t;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = topics_.find(topic);
        if (it == topics_.end())
            return 0;
        t = it->second;
    }
    std::lock_guard<std::mutex> lock(t->mutex);
    return t->publish_attempts;
}

std::size_t
Switchboard::listenerExceptions() const
{
    std::vector<TopicPtr> snapshot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshot.reserve(topics_.size());
        for (const auto &[name, topic] : topics_)
            snapshot.push_back(topic);
    }
    std::size_t total = 0;
    for (const TopicPtr &t : snapshot)
        total += t->listener_exceptions.load(std::memory_order_relaxed);
    return total;
}

} // namespace illixr

