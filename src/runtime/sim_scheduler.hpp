/**
 * @file
 * Discrete-event runtime scheduler.
 *
 * The paper's runtime schedules components on real hardware; here the
 * same scheduling problem is solved on a *modeled* platform: plugins
 * execute for real (producing real images, poses, and audio), the
 * host cost of each invocation is measured, converted to virtual
 * time by the PlatformModel, and the invocation occupies a modeled
 * CPU hardware thread or the GPU queue for that virtual span.
 * Contention, missed deadlines, frame skips, and motion-to-photon
 * latency all emerge from this schedule (see DESIGN.md §4 for the
 * run-at-start simplification).
 *
 * Reprojection support follows §II-B footnote 5: a vsync-aligned
 * task is dispatched as late as possible before each vsync, using an
 * exponential moving average of its past durations as the budget
 * estimate.
 *
 * Implements the Executor interface (virtual timeline); with a
 * TraceSink attached, every invocation is recorded as a Span and
 * every skipped arrival as a SkipRecord.
 */

#pragma once

#include "perfmodel/platform.hpp"
#include "runtime/executor.hpp"
#include "runtime/plugin.hpp"

#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

namespace illixr {

/**
 * The discrete-event scheduler.
 */
class SimScheduler : public ExecutorBase
{
  public:
    explicit SimScheduler(const PlatformModel &platform);

    /** Register a periodic plugin (not owned). */
    void addPlugin(Plugin *plugin) override;

    /**
     * Register a vsync-aligned plugin (reprojection): dispatched as
     * late as possible before each vsync of period @p vsync.
     */
    void addVsyncAlignedPlugin(Plugin *plugin, Duration vsync) override;

    /** Run the virtual timeline for @p duration. */
    void run(Duration duration) override;

    /** Current virtual time. */
    TimePoint now() const { return now_; }

    const TaskStats &stats(const std::string &name) const override;
    std::vector<std::string> taskNames() const override;

    const char *timeline() const override { return "virtual"; }

    /** Mean CPU hardware-thread utilization over the run, [0, 1]. */
    double cpuUtilization() const;

    /** GPU busy fraction over the run, [0, 1]. */
    double gpuUtilization() const;

    const PlatformModel &platform() const { return platform_; }

  private:
    struct Task
    {
        Plugin *plugin = nullptr;
        TaskStats stats;
        TaskMetrics metrics;
        bool running = false;
        bool vsync_aligned = false;
        Duration vsync = 0;
        std::size_t vsync_index = 0;
        double duration_ema_s = 0.0; ///< Host-seconds EMA.
    };

    struct SimEvent
    {
        TimePoint time = 0;
        std::uint64_t seq = 0;    ///< FIFO tie-break.
        int type = 0;             ///< 0 = arrival, 1 = completion.
        std::size_t task = 0;

        bool operator>(const SimEvent &o) const
        {
            if (time != o.time)
                return time > o.time;
            return seq > o.seq;
        }
    };

    void scheduleArrival(std::size_t task_index, TimePoint t);
    void dispatch(std::size_t task_index, TimePoint arrival);
    TimePoint acquireResource(ExecUnit unit, TimePoint earliest,
                              Duration duration);

    PlatformModel platform_;
    std::vector<Task> tasks_;
    std::priority_queue<SimEvent, std::vector<SimEvent>,
                        std::greater<SimEvent>>
        queue_;
    std::uint64_t seq_ = 0;
    TimePoint now_ = 0;
    Duration runDuration_ = 0;

    std::vector<TimePoint> cpuFreeAt_;
    TimePoint gpuFreeAt_ = 0;
    Duration cpuBusy_ = 0;
    Duration gpuBusy_ = 0;
};

} // namespace illixr
