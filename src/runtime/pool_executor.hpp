/**
 * @file
 * PoolExecutor: a fixed-size worker pool over the plugin set, the
 * third implementation of the Executor interface next to the
 * discrete-event SimScheduler and the thread-per-plugin RtExecutor.
 *
 * The pool runs the paper's three pipelines genuinely concurrently
 * (§III's per-stage variability only appears when stages contend),
 * with:
 *
 *  - per-plugin task queues: each plugin owns a release slot; an
 *    invocation is dispatched to whichever worker is free, never to
 *    two workers at once;
 *  - per-pipeline priority lanes mirroring the paper's criticality
 *    ordering (perception > visual > audio): when workers are scarce,
 *    due perception work always dispatches before due visual work,
 *    which beats audio;
 *  - rate-limited periodic tasks: a plugin never runs more than once
 *    per period boundary; overruns realign to the next boundary
 *    (skip-on-overrun plugins drop the missed arrivals, others are
 *    allowed a bounded catch-up burst);
 *  - topic-driven wakeups: event-driven plugins (period() <= 0) are
 *    subscribed to a switchboard topic and woken by its publishes,
 *    with bursts coalesced to one pending invocation ("latest wins");
 *  - a deterministic mode (virtual-clock barrier stepping): the run
 *    advances a virtual timeline event by event, invocations are
 *    handed to their assigned worker and barriered one at a time, and
 *    invocation costs are *modeled* — drawn from per-worker seeded
 *    Rng streams instead of measured host time — so two runs with the
 *    same seed produce byte-identical outputs (see DESIGN.md §4c for
 *    the determinism contract).
 *
 * Instrumentation: every span carries the 1-based id of the worker
 * that executed it, and the pool exports per-lane ready-queue depth
 * gauges (`pool.lane.<lane>.queue_depth`) plus per-worker invocation
 * counters (`pool.worker.<i>.invocations`) into the MetricsRegistry.
 */

#pragma once

#include "foundation/rng.hpp"
#include "perfmodel/platform.hpp"
#include "runtime/executor.hpp"
#include "runtime/plugin.hpp"
#include "runtime/switchboard.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace illixr {

/** The paper's criticality ordering; lower value = higher priority. */
enum class PipelineLane
{
    Perception = 0,
    Visual = 1,
    Audio = 2,
};

const char *laneName(PipelineLane lane);

/** Default lane of a task, from the integrated component names. */
PipelineLane laneForTask(const std::string &name);

/** Pool configuration. */
struct PoolExecutorConfig
{
    std::size_t workers = 4;
    /** Virtual-clock barrier stepping; runs are bit-reproducible. */
    bool deterministic = false;
    /** Seed of the per-worker Rng streams (deterministic mode). */
    std::uint64_t seed = 1;
    /** Platform whose CPU scale shapes the modeled costs
     *  (deterministic mode only; live mode uses the wall clock). */
    PlatformId platform = PlatformId::Desktop;
};

/**
 * Fixed-size worker-pool executor.
 */
class PoolExecutor : public ExecutorBase
{
  public:
    explicit PoolExecutor(PoolExecutorConfig config = {});
    ~PoolExecutor() override;

    PoolExecutor(const PoolExecutor &) = delete;
    PoolExecutor &operator=(const PoolExecutor &) = delete;

    /** Register a periodic plugin on its default lane (by name). */
    void addPlugin(Plugin *plugin) override;

    /** Register a periodic plugin on an explicit lane. */
    void addPlugin(Plugin *plugin, PipelineLane lane);

    /** Vsync-aligned plugin: periodic at the vsync period, each
     *  invocation stamped with the boundary it aims at. */
    void addVsyncAlignedPlugin(Plugin *plugin, Duration vsync) override;

    /**
     * Register an event-driven plugin (period() <= 0): it runs when
     * @p topic is published on @p sb, bursts coalesced to one pending
     * invocation while the plugin is queued or running.
     */
    void addEventDrivenPlugin(Plugin *plugin, PipelineLane lane,
                              Switchboard &sb, const std::string &topic);

    /**
     * Run for @p duration: wall time live, virtual time when
     * deterministic.
     */
    void run(Duration duration) override;

    /** Launch the workers (live mode; no-op when deterministic). */
    void start();

    /** Stop and join the workers. Never blocks on a sleeping worker:
     *  the stop flag is raised and broadcast before any join, and no
     *  lock is held across the joins. */
    void stop();

    bool running() const { return running_.load(); }

    /** Completed invocations of a plugin so far (live-readable). */
    std::size_t iterations(const std::string &name) const;

    const TaskStats &stats(const std::string &name) const override;
    std::vector<std::string> taskNames() const override;

    const char *timeline() const override
    {
        return config_.deterministic ? "virtual" : "wall";
    }

    const PoolExecutorConfig &config() const { return config_; }

    /** Mean worker-busy fraction over the run, [0, 1]. */
    double cpuUtilization() const;

    /** Busy fraction of the GPU-unit tasks over the run, [0, 1]. */
    double gpuUtilization() const;

  private:
    struct Entry
    {
        Plugin *plugin = nullptr;
        PipelineLane lane = PipelineLane::Visual;
        Duration period = 0;      ///< <= 0 means event-driven.
        bool vsync_aligned = false;
        Duration vsync = 0;

        // Live-mode release state, guarded by mutex_.
        TimePoint next_release = 0;
        std::size_t pending_events = 0; ///< Coalesced to <= 1.
        bool in_flight = false;

        // Deterministic-mode state (single-threaded event loop).
        bool sim_running = false;
        int sim_queued = 0; ///< Ready-queue backlog of this entry.

        std::atomic<std::size_t> iterations{0};
        TaskStats stats;
        TaskMetrics metrics;
        PublishListenerHandle listener;
    };

    /** Events of the deterministic virtual timeline. */
    struct SimEvent
    {
        TimePoint time = 0;
        int lane = 0;          ///< Criticality tie-break at equal time.
        std::uint64_t seq = 0; ///< FIFO tie-break within a lane.
        int type = 0;          ///< 0 = arrival, 1 = completion.
        std::size_t task = 0;
        std::size_t worker = 0; ///< Completion: worker being freed.

        bool operator>(const SimEvent &o) const
        {
            if (time != o.time)
                return time > o.time;
            if (lane != o.lane)
                return lane > o.lane;
            return seq > o.seq;
        }
    };

    void addEntry(Plugin *plugin, PipelineLane lane, Duration period,
                  bool vsync_aligned, Duration vsync);

    // ---- live mode ----
    void workerMain(std::size_t worker_index);
    /** Pick the due entry with the best (lane, release); nullptr if
     *  none. Caller holds mutex_. */
    Entry *pickDue(TimePoint now);
    /** Earliest future release among idle periodic entries; -1 when
     *  only event-driven work remains. Caller holds mutex_. */
    TimePoint earliestRelease() const;
    void updateQueueGauges(TimePoint now);
    void executeLive(Entry &entry, std::size_t worker_index,
                     TimePoint release, TimePoint now);

    // ---- deterministic mode ----
    void runVirtual(Duration duration);
    void virtualWorkerMain(std::size_t worker_index);
    /** Hand @p entry to worker @p w, barrier until the guarded
     *  invocation returns on that worker's thread (the interceptor
     *  and the plugin both run there, where TraceContext lives). */
    InvocationOutcome handoff(Entry &entry, std::size_t w,
                              TimePoint arrival, std::uint64_t attempt,
                              std::uint64_t span_id);
    /** Modeled virtual cost of one invocation on worker @p w. */
    Duration modeledCost(const Entry &entry, std::size_t w);

    TimePoint wallNs() const;

    PoolExecutorConfig config_;
    PlatformModel platform_;
    std::vector<std::unique_ptr<Entry>> entries_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::thread> workers_;
    std::atomic<bool> running_{false};
    std::chrono::steady_clock::time_point epoch_;

    // Deterministic-mode handoff slot (one in-flight task at a time;
    // the barrier is what makes the interleaving reproducible).
    std::mutex handoffMutex_;
    std::condition_variable handoffCv_;
    Entry *handoffEntry_ = nullptr;
    std::size_t handoffWorker_ = 0;
    TimePoint handoffArrival_ = 0;
    std::uint64_t handoffAttempt_ = 0;
    std::uint64_t handoffSpan_ = 0;
    bool handoffDone_ = false;
    InvocationOutcome handoffOutcome_;
    bool shutdownWorkers_ = false;

    // Topic wakeups raised while a deterministic invocation runs;
    // drained by the event loop after each barrier.
    std::mutex simWakeupMutex_;
    std::vector<std::size_t> simWakeups_;

    Duration runDuration_ = 0;
    Duration busyCpu_ = 0;
    Duration busyGpu_ = 0;

    std::vector<Rng> workerRng_;
    std::vector<Counter *> workerInvocations_;
    Gauge *laneDepth_[3] = {nullptr, nullptr, nullptr};
};

} // namespace illixr
