/**
 * @file
 * Plugin architecture (§II-B): components are plugins that interact
 * only through switchboard event streams. A name-based factory
 * registry preserves the modularity property of ILLIXR's shared-
 * object plugin loader in a self-contained build: alternative
 * implementations of a component register under different names and
 * are swappable without touching the rest of the system.
 */

#pragma once

#include "foundation/pose.hpp"
#include "foundation/time.hpp"
#include "perfmodel/platform.hpp"
#include "runtime/phonebook.hpp"
#include "runtime/switchboard.hpp"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace illixr {

/**
 * Base class of all plugins.
 */
class Plugin
{
  public:
    explicit Plugin(std::string name) : name_(std::move(name)) {}
    virtual ~Plugin() = default;

    const std::string &name() const { return name_; }

    /** Called once before scheduling begins. */
    virtual void start(const Phonebook &phonebook) { (void)phonebook; }

    /** Called once after the run ends. */
    virtual void stop() {}

    /**
     * One periodic invocation at (virtual) time @p now.
     * The scheduler measures the host cost of this call and converts
     * it to platform-virtual time.
     */
    virtual void iterate(TimePoint now) = 0;

    /** The nominal period; <= 0 means event-driven (not periodic). */
    virtual Duration period() const = 0;

    /** Which execution unit this plugin's work occupies. */
    virtual ExecUnit execUnit() const { return ExecUnit::Cpu; }

    /**
     * Deadline semantics: when true, an invocation whose previous
     * instance is still running is skipped (frame drop); when false
     * invocations queue up.
     */
    virtual bool skipOnOverrun() const { return true; }

    /**
     * The pose-trajectory estimate this plugin produced, when it is a
     * head-tracking source (VIO, offloaded VIO); nullptr otherwise.
     * Lets the session collect IntegratedResult::vio_trajectory from
     * a factory-installed tracker without knowing its concrete type.
     */
    virtual const std::vector<StampedPose> *
    vioTrajectory() const
    {
        return nullptr;
    }

    /**
     * Export plugin-specific run metrics into
     * IntegratedResult::extra (e.g., offload round-trip, edge
     * served/shed counts). Called once after the run.
     */
    virtual void
    exportExtras(std::map<std::string, double> &extra) const
    {
        (void)extra;
    }

    /**
     * Host seconds spent inside the last iterate() on work that does
     * NOT occupy this platform's resources — e.g., computation an
     * offloaded component performs on a remote server. The scheduler
     * subtracts it from the measured invocation cost (and models the
     * remote round-trip separately). Cleared on read.
     */
    double
    consumeExcludedHostSeconds()
    {
        const double v = excludedHostSeconds_;
        excludedHostSeconds_ = 0.0;
        return v;
    }

  protected:
    /** Mark @p seconds of the current iterate() as remote work. */
    void excludeHostSeconds(double seconds)
    {
        excludedHostSeconds_ += seconds;
    }

  private:
    std::string name_;
    double excludedHostSeconds_ = 0.0;
};

/** Factory signature used by the registry. */
using PluginFactory =
    std::function<std::unique_ptr<Plugin>(const Phonebook &)>;

/**
 * Name-based plugin registry (the plugin-loader substitute).
 */
class PluginRegistry
{
  public:
    /** Process-wide registry instance. */
    static PluginRegistry &instance();

    /** Register a factory; overwrites an existing name. */
    void registerFactory(const std::string &name, PluginFactory factory);

    /** Instantiate by name. @throws std::out_of_range when unknown. */
    std::unique_ptr<Plugin> create(const std::string &name,
                                   const Phonebook &phonebook) const;

    bool has(const std::string &name) const;
    std::vector<std::string> names() const;

  private:
    std::map<std::string, PluginFactory> factories_;
};

} // namespace illixr
