#include "runtime/executor.hpp"

#include "foundation/profile.hpp"
#include "runtime/parallel.hpp"

#include <algorithm>
#include <chrono>

namespace illixr {

double
TaskStats::achievedHz(Duration wall) const
{
    if (wall <= 0)
        return 0.0;
    return static_cast<double>(invocations) / toSeconds(wall);
}

ExecutorBase::TaskMetrics
ExecutorBase::internMetrics(const std::string &task)
{
    TaskMetrics m;
    if (!metrics_)
        return m;
    m.invocations = &metrics_->counter("task." + task + ".invocations");
    m.skips = &metrics_->counter("task." + task + ".skips");
    m.exceptions = &metrics_->counter("task." + task + ".exceptions");
    m.exec_ms = &metrics_->histogram("task." + task + ".exec_ms");
    return m;
}

InvocationOutcome
ExecutorBase::invokeGuarded(Plugin &plugin, std::uint64_t attempt,
                            TimePoint now, std::uint64_t span_id)
{
    InvocationOutcome out;
    PreInvocationAction pre;
    if (interceptor_)
        pre = interceptor_->before(plugin, attempt, now);
    out.extra = std::max<Duration>(0, pre.stall);
    out.duration_scale = std::max(1.0, pre.duration_scale);

    if (pre.suppress) {
        out.suppressed = true;
        if (interceptor_)
            interceptor_->after(plugin, now, out);
        return out;
    }

    // Route kernel.* metrics/spans launched by this invocation to THIS
    // executor's sinks: with several sessions per process, the
    // process-wide KernelPool cannot carry one global registry — the
    // scope makes kernel accounting per-session (thread-local, so
    // concurrent sessions never stomp each other's registries).
    KernelPool::MetricsScope kernel_scope(metrics_, sink_.get());

    TraceContext::beginInvocation(span_id, now);
    const double t0 = hostTimeSeconds();
    try {
        if (pre.crash)
            throw InjectedFault("injected fault: task '" + plugin.name() +
                                "', attempt " + std::to_string(attempt));
        plugin.iterate(now);
        out.ran = true;
    } catch (const std::exception &e) {
        out.exception = true;
        out.error = e.what();
    } catch (...) {
        out.exception = true;
        out.error = "non-standard exception";
    }
    out.host_seconds =
        std::max(0.0, hostTimeSeconds() - t0 -
                          plugin.consumeExcludedHostSeconds());
    // Close the scope on every path: an escaped exception must not
    // leave a poisoned consumed set for this thread's next invocation.
    TraceContext::endInvocation();

    if (interceptor_)
        interceptor_->after(plugin, now, out);
    return out;
}

void
ExecutorBase::requestStop()
{
    {
        // The lock orders the flag-store before any waiter's re-check:
        // without it a sleeper could test the flag, lose the CPU, miss
        // the notify, and wait out the full configured duration.
        std::lock_guard<std::mutex> lock(stop_request_mutex_);
        stop_requested_.store(true, std::memory_order_release);
    }
    stop_request_cv_.notify_all();
}

void
ExecutorBase::interruptibleSleep(Duration duration)
{
    if (duration <= 0)
        return;
    std::unique_lock<std::mutex> lock(stop_request_mutex_);
    stop_request_cv_.wait_for(
        lock, std::chrono::nanoseconds(duration), [this] {
            return stop_requested_.load(std::memory_order_acquire);
        });
}

void
ExecutorBase::startPlugins()
{
    if (started_)
        return;
    started_ = true;
    static const Phonebook empty;
    const Phonebook &pb = phonebook_ ? *phonebook_ : empty;
    for (Plugin *plugin : lifecycle_)
        plugin->start(pb);
}

void
ExecutorBase::stopPlugins()
{
    if (!started_)
        return;
    started_ = false;
    for (auto it = lifecycle_.rbegin(); it != lifecycle_.rend(); ++it)
        (*it)->stop();
}

} // namespace illixr
