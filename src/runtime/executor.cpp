#include "runtime/executor.hpp"

#include "foundation/profile.hpp"

#include <algorithm>

namespace illixr {

double
TaskStats::achievedHz(Duration wall) const
{
    if (wall <= 0)
        return 0.0;
    return static_cast<double>(invocations) / toSeconds(wall);
}

ExecutorBase::TaskMetrics
ExecutorBase::internMetrics(const std::string &task)
{
    TaskMetrics m;
    if (!metrics_)
        return m;
    m.invocations = &metrics_->counter("task." + task + ".invocations");
    m.skips = &metrics_->counter("task." + task + ".skips");
    m.exceptions = &metrics_->counter("task." + task + ".exceptions");
    m.exec_ms = &metrics_->histogram("task." + task + ".exec_ms");
    return m;
}

InvocationOutcome
ExecutorBase::invokeGuarded(Plugin &plugin, std::uint64_t attempt,
                            TimePoint now, std::uint64_t span_id)
{
    InvocationOutcome out;
    PreInvocationAction pre;
    if (interceptor_)
        pre = interceptor_->before(plugin, attempt, now);
    out.extra = std::max<Duration>(0, pre.stall);
    out.duration_scale = std::max(1.0, pre.duration_scale);

    if (pre.suppress) {
        out.suppressed = true;
        if (interceptor_)
            interceptor_->after(plugin, now, out);
        return out;
    }

    TraceContext::beginInvocation(span_id, now);
    const double t0 = hostTimeSeconds();
    try {
        if (pre.crash)
            throw InjectedFault("injected fault: task '" + plugin.name() +
                                "', attempt " + std::to_string(attempt));
        plugin.iterate(now);
        out.ran = true;
    } catch (const std::exception &e) {
        out.exception = true;
        out.error = e.what();
    } catch (...) {
        out.exception = true;
        out.error = "non-standard exception";
    }
    out.host_seconds =
        std::max(0.0, hostTimeSeconds() - t0 -
                          plugin.consumeExcludedHostSeconds());
    // Close the scope on every path: an escaped exception must not
    // leave a poisoned consumed set for this thread's next invocation.
    TraceContext::endInvocation();

    if (interceptor_)
        interceptor_->after(plugin, now, out);
    return out;
}

void
ExecutorBase::startPlugins()
{
    if (started_)
        return;
    started_ = true;
    static const Phonebook empty;
    const Phonebook &pb = phonebook_ ? *phonebook_ : empty;
    for (Plugin *plugin : lifecycle_)
        plugin->start(pb);
}

void
ExecutorBase::stopPlugins()
{
    if (!started_)
        return;
    started_ = false;
    for (auto it = lifecycle_.rbegin(); it != lifecycle_.rend(); ++it)
        (*it)->stop();
}

} // namespace illixr
