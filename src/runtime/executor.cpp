#include "runtime/executor.hpp"

namespace illixr {

double
TaskStats::achievedHz(Duration wall) const
{
    if (wall <= 0)
        return 0.0;
    return static_cast<double>(invocations) / toSeconds(wall);
}

ExecutorBase::TaskMetrics
ExecutorBase::internMetrics(const std::string &task)
{
    TaskMetrics m;
    if (!metrics_)
        return m;
    m.invocations = &metrics_->counter("task." + task + ".invocations");
    m.skips = &metrics_->counter("task." + task + ".skips");
    m.exec_ms = &metrics_->histogram("task." + task + ".exec_ms");
    return m;
}

void
ExecutorBase::startPlugins()
{
    if (started_)
        return;
    started_ = true;
    static const Phonebook empty;
    const Phonebook &pb = phonebook_ ? *phonebook_ : empty;
    for (Plugin *plugin : lifecycle_)
        plugin->start(pb);
}

void
ExecutorBase::stopPlugins()
{
    if (!started_)
        return;
    started_ = false;
    for (auto it = lifecycle_.rbegin(); it != lifecycle_.rend(); ++it)
        (*it)->stop();
}

} // namespace illixr
