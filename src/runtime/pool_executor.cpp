#include "runtime/pool_executor.hpp"

#include "foundation/profile.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace illixr {

namespace {

/** Non-skip plugins may burst to catch up, but never unboundedly. */
constexpr int kMaxCatchupPeriods = 8;

/** Modeled cost of an event-driven invocation (deterministic mode). */
constexpr Duration kEventTaskNominal = kMillisecond;

} // namespace

const char *
laneName(PipelineLane lane)
{
    switch (lane) {
    case PipelineLane::Perception:
        return "perception";
    case PipelineLane::Visual:
        return "visual";
    case PipelineLane::Audio:
        return "audio";
    }
    return "?";
}

PipelineLane
laneForTask(const std::string &name)
{
    // The integrated system's component names (paper Table II /
    // Fig 2). Unknown tasks land on the middle lane.
    if (name == "camera" || name == "imu" || name == "vio" ||
        name == "integrator" || name.find("vio") != std::string::npos ||
        name.find("imu") != std::string::npos)
        return PipelineLane::Perception;
    if (name.find("audio") != std::string::npos)
        return PipelineLane::Audio;
    return PipelineLane::Visual;
}

PoolExecutor::PoolExecutor(PoolExecutorConfig config)
    : config_(config), platform_(PlatformModel::get(config.platform))
{
    if (config_.workers == 0)
        config_.workers = 1;
}

PoolExecutor::~PoolExecutor()
{
    stop();
}

void
PoolExecutor::addEntry(Plugin *plugin, PipelineLane lane, Duration period,
                       bool vsync_aligned, Duration vsync)
{
    auto entry = std::make_unique<Entry>();
    entry->plugin = plugin;
    entry->lane = lane;
    entry->period = period;
    entry->vsync_aligned = vsync_aligned;
    entry->vsync = vsync;
    entry->stats.name = plugin->name();
    entry->stats.unit = plugin->execUnit();
    entry->stats.period = period;
    entry->metrics = internMetrics(entry->stats.name);
    notePlugin(plugin);
    entries_.push_back(std::move(entry));
}

void
PoolExecutor::addPlugin(Plugin *plugin)
{
    addPlugin(plugin, laneForTask(plugin->name()));
}

void
PoolExecutor::addPlugin(Plugin *plugin, PipelineLane lane)
{
    addEntry(plugin, lane, plugin->period(), false, 0);
}

void
PoolExecutor::addVsyncAlignedPlugin(Plugin *plugin, Duration vsync)
{
    addEntry(plugin, laneForTask(plugin->name()), vsync, true, vsync);
}

void
PoolExecutor::addEventDrivenPlugin(Plugin *plugin, PipelineLane lane,
                                   Switchboard &sb,
                                   const std::string &topic)
{
    addEntry(plugin, lane, 0, false, 0);
    Entry *entry = entries_.back().get();
    const std::size_t task_index = entries_.size() - 1;
    entry->listener = sb.onPublish(
        topic, [this, entry, task_index](const std::string &) {
            if (config_.deterministic) {
                std::lock_guard<std::mutex> lock(simWakeupMutex_);
                simWakeups_.push_back(task_index);
                return;
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                // Coalesce bursts: one pending invocation, latest wins
                // (the plugin reads the newest value when it runs).
                entry->pending_events = 1;
                entry->next_release = wallNs();
            }
            cv_.notify_one();
        });
}

TimePoint
PoolExecutor::wallNs() const
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
PoolExecutor::run(Duration duration)
{
    if (config_.deterministic) {
        runVirtual(duration);
        return;
    }
    start();
    interruptibleSleep(duration); // Eviction cuts the wall run short.
    stop();
    runDuration_ = duration;
}

void
PoolExecutor::start()
{
    if (config_.deterministic || running_.exchange(true))
        return;
    startPlugins();
    epoch_ = std::chrono::steady_clock::now();
    if (metrics_) {
        for (int lane = 0; lane < 3; ++lane)
            laneDepth_[lane] = &metrics_->gauge(
                std::string("pool.lane.") +
                laneName(static_cast<PipelineLane>(lane)) + ".queue_depth");
        workerInvocations_.clear();
        for (std::size_t w = 0; w < config_.workers; ++w)
            workerInvocations_.push_back(&metrics_->counter(
                "pool.worker." + std::to_string(w + 1) + ".invocations"));
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        busyCpu_ = 0;
        busyGpu_ = 0;
        for (auto &entry : entries_) {
            entry->next_release = 0;
            entry->pending_events = 0;
            entry->in_flight = false;
        }
    }
    for (std::size_t w = 0; w < config_.workers; ++w)
        workers_.emplace_back([this, w] { workerMain(w); });
}

void
PoolExecutor::stop()
{
    if (config_.deterministic)
        return;
    // Raise the flag under the scheduling mutex so a worker between
    // its running check and its wait cannot miss the broadcast, then
    // release it: the joins below must never run while holding it
    // (a parked worker needs the mutex to observe the flag and exit).
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_.exchange(false))
            return;
    }
    cv_.notify_all();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
    workers_.clear();
    stopPlugins();
}

PoolExecutor::Entry *
PoolExecutor::pickDue(TimePoint now)
{
    Entry *best = nullptr;
    for (auto &entry : entries_) {
        if (entry->in_flight)
            continue;
        const bool due = entry->period > 0
                             ? entry->next_release <= now
                             : entry->pending_events > 0;
        if (!due)
            continue;
        if (!best || entry->lane < best->lane ||
            (entry->lane == best->lane &&
             entry->next_release < best->next_release))
            best = entry.get();
    }
    return best;
}

TimePoint
PoolExecutor::earliestRelease() const
{
    TimePoint earliest = -1;
    for (const auto &entry : entries_) {
        if (entry->in_flight || entry->period <= 0)
            continue;
        if (earliest < 0 || entry->next_release < earliest)
            earliest = entry->next_release;
    }
    return earliest;
}

void
PoolExecutor::updateQueueGauges(TimePoint now)
{
    if (!laneDepth_[0])
        return;
    std::size_t depth[3] = {0, 0, 0};
    for (const auto &entry : entries_) {
        if (entry->in_flight)
            continue;
        const bool due = entry->period > 0
                             ? entry->next_release <= now
                             : entry->pending_events > 0;
        if (due)
            ++depth[static_cast<int>(entry->lane)];
    }
    for (int lane = 0; lane < 3; ++lane)
        laneDepth_[lane]->set(static_cast<double>(depth[lane]));
}

void
PoolExecutor::executeLive(Entry &entry, std::size_t worker_index,
                          TimePoint release, TimePoint now)
{
    const std::uint64_t span_id = sink_ ? sink_->nextSpanId() : 0;
    std::uint64_t attempt;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        attempt = ++entry.stats.attempts;
    }
    const InvocationOutcome out =
        invokeGuarded(*entry.plugin, attempt, now, span_id);

    if (out.suppressed) {
        if (sink_)
            sink_->recordSkip(entry.stats.name, now,
                              SkipCause::Suppressed);
        std::lock_guard<std::mutex> lock(mutex_);
        ++entry.stats.suppressed;
        return;
    }
    // Injected stalls hang the worker (bounded) so the occupancy is
    // real contention for the pool, like an actual hang would be.
    if (out.extra > 0)
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            std::min<Duration>(out.extra, 100 * kMillisecond)));
    const TimePoint done = wallNs();

    entry.iterations.fetch_add(1);
    if (entry.metrics.invocations)
        entry.metrics.invocations->add();
    if (out.exception && entry.metrics.exceptions)
        entry.metrics.exceptions->add();
    if (entry.metrics.exec_ms)
        entry.metrics.exec_ms->observe(toMilliseconds(done - now));
    if (worker_index < workerInvocations_.size() &&
        workerInvocations_[worker_index])
        workerInvocations_[worker_index]->add();
    if (sink_) {
        Span span;
        span.task = entry.stats.name;
        span.unit = entry.plugin->execUnit();
        span.arrival = release;
        span.start = now;
        span.completion = done;
        span.host_seconds = out.host_seconds;
        span.id = span_id;
        span.worker = static_cast<std::uint32_t>(worker_index + 1);
        sink_->recordSpan(std::move(span));
    }

    InvocationRecord rec;
    rec.arrival = release;
    rec.start = now;
    rec.virtual_duration = done - now;
    rec.completion = done;
    rec.host_seconds = out.host_seconds;
    if (entry.vsync_aligned && entry.vsync > 0)
        rec.target_vsync =
            ((now + entry.vsync - 1) / entry.vsync) * entry.vsync;

    std::lock_guard<std::mutex> lock(mutex_);
    entry.stats.records.push_back(rec);
    entry.stats.exec_ms.add(toMilliseconds(done - now));
    entry.stats.busy += done - now;
    ++entry.stats.invocations;
    if (out.exception)
        ++entry.stats.exceptions;
    if (entry.plugin->execUnit() == ExecUnit::Cpu)
        busyCpu_ += done - now;
    else
        busyGpu_ += done - now;
}

void
PoolExecutor::workerMain(std::size_t worker_index)
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (running_.load()) {
        const TimePoint now = wallNs();
        Entry *entry = pickDue(now);
        if (!entry) {
            const TimePoint wake = earliestRelease();
            updateQueueGauges(now);
            if (wake < 0)
                cv_.wait(lock);
            else
                cv_.wait_until(lock,
                               epoch_ + std::chrono::nanoseconds(wake));
            continue;
        }

        const TimePoint release = entry->next_release;
        entry->in_flight = true;
        if (entry->period <= 0)
            entry->pending_events = 0;
        updateQueueGauges(now);

        // Wakeup chaining: one publish raises one notify_one, but by
        // the time this worker claimed its entry another may have
        // become due (a second publish, a periodic release). Without
        // a chained notify the remaining work waits for this worker's
        // completion — a measured scheduler-wait tail source on
        // topic-driven plugins.
        if (pickDue(now))
            cv_.notify_one();

        lock.unlock();
        executeLive(*entry, worker_index, release, now);
        lock.lock();

        entry->in_flight = false;
        if (entry->period > 0) {
            // Rate limit: exactly one invocation per period boundary.
            const TimePoint after = wallNs();
            entry->next_release += entry->period;
            if (entry->next_release <= after) {
                const bool skip = entry->plugin->skipOnOverrun();
                const TimePoint behind =
                    (after - entry->next_release) / entry->period;
                if (skip || behind > kMaxCatchupPeriods) {
                    // Drop the missed boundaries and realign.
                    while (entry->next_release <= after) {
                        ++entry->stats.skips;
                        if (entry->metrics.skips)
                            entry->metrics.skips->add();
                        if (sink_)
                            sink_->recordSkip(entry->stats.name, after,
                                              SkipCause::Overrun);
                        entry->next_release += entry->period;
                    }
                }
                // else: a non-skip plugin catches up by running again
                // immediately (bounded by kMaxCatchupPeriods).
            }
        }
        // A slot changed: a sleeping worker may now have work.
        cv_.notify_one();
    }
}

// --------------------------------------------------- deterministic

Duration
PoolExecutor::modeledCost(const Entry &entry, std::size_t w)
{
    // Deterministic by construction: the cost is a seeded per-worker
    // draw around a nominal fraction of the period, scaled by the
    // platform — never the measured host time, which varies run to
    // run.
    const Duration nominal =
        entry.period > 0 ? entry.period / 4 : kEventTaskNominal;
    const double jitter = workerRng_[w].uniform(0.9, 1.1);
    return platform_.scaleDuration(toSeconds(nominal) * jitter,
                                   entry.plugin->execUnit());
}

InvocationOutcome
PoolExecutor::handoff(Entry &entry, std::size_t w, TimePoint arrival,
                      std::uint64_t attempt, std::uint64_t span_id)
{
    std::unique_lock<std::mutex> lock(handoffMutex_);
    handoffEntry_ = &entry;
    handoffWorker_ = w;
    handoffArrival_ = arrival;
    handoffAttempt_ = attempt;
    handoffSpan_ = span_id;
    handoffDone_ = false;
    handoffCv_.notify_all();
    handoffCv_.wait(lock, [this] { return handoffDone_; });
    handoffEntry_ = nullptr;
    return handoffOutcome_;
}

void
PoolExecutor::virtualWorkerMain(std::size_t worker_index)
{
    std::unique_lock<std::mutex> lock(handoffMutex_);
    for (;;) {
        handoffCv_.wait(lock, [this, worker_index] {
            return shutdownWorkers_ ||
                   (handoffEntry_ && handoffWorker_ == worker_index &&
                    !handoffDone_);
        });
        if (shutdownWorkers_)
            return;
        Entry &entry = *handoffEntry_;
        const TimePoint arrival = handoffArrival_;
        const std::uint64_t attempt = handoffAttempt_;
        const std::uint64_t span_id = handoffSpan_;
        lock.unlock();

        // The guarded call runs here, on the worker thread, because
        // TraceContext is thread-local and the interceptor must see
        // the same thread the plugin publishes from. The barrier
        // keeps it serialized, so interceptor decisions stay a pure
        // function of (task, attempt).
        const InvocationOutcome out =
            invokeGuarded(*entry.plugin, attempt, arrival, span_id);

        lock.lock();
        handoffOutcome_ = out;
        handoffDone_ = true;
        handoffCv_.notify_all();
    }
}

void
PoolExecutor::runVirtual(Duration duration)
{
    startPlugins();
    runDuration_ = duration;
    busyCpu_ = 0;
    busyGpu_ = 0;
    for (auto &entry : entries_) {
        entry->sim_running = false;
        entry->sim_queued = 0;
    }

    if (metrics_) {
        for (int lane = 0; lane < 3; ++lane)
            laneDepth_[lane] = &metrics_->gauge(
                std::string("pool.lane.") +
                laneName(static_cast<PipelineLane>(lane)) + ".queue_depth");
        workerInvocations_.clear();
        for (std::size_t w = 0; w < config_.workers; ++w)
            workerInvocations_.push_back(&metrics_->counter(
                "pool.worker." + std::to_string(w + 1) + ".invocations"));
    }

    // Seed one Rng stream per worker; identical seeds give identical
    // draws, making the whole timeline a pure function of the seed.
    workerRng_.clear();
    for (std::size_t w = 0; w < config_.workers; ++w)
        workerRng_.emplace_back(config_.seed * 0x9e3779b97f4a7c15ULL +
                                w + 1);

    shutdownWorkers_ = false;
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < config_.workers; ++w)
        workers.emplace_back([this, w] { virtualWorkerMain(w); });

    std::priority_queue<SimEvent, std::vector<SimEvent>,
                        std::greater<SimEvent>>
        queue;
    std::uint64_t seq = 0;

    // Dispatch model: arrivals land in a ready queue and are handed
    // to a worker only when one is genuinely free, highest lane (then
    // FIFO) first. The old scheme bound every arrival to the
    // earliest-free worker *at arrival time* — FCFS per worker, so a
    // due perception task could sit behind an already-queued audio
    // task (head-of-line blocking, tail_bench's top scheduler-wait
    // attribution) and a non-skip plugin could overlap itself.
    struct ReadyItem
    {
        int lane = 0;
        std::uint64_t seq = 0;
        std::size_t task = 0;
        TimePoint arrival = 0;
    };
    std::vector<ReadyItem> ready;
    std::vector<bool> workerBusy(config_.workers, false);

    auto pushArrival = [&queue, &seq, this](std::size_t task, TimePoint t) {
        queue.push(SimEvent{t, static_cast<int>(entries_[task]->lane),
                            seq++, 0, task});
    };

    auto recordOverrun = [this](Entry &entry, TimePoint t) {
        ++entry.stats.skips;
        if (entry.metrics.skips)
            entry.metrics.skips->add();
        if (sink_)
            sink_->recordSkip(entry.stats.name, t, SkipCause::Overrun);
    };

    // Admit one arrival to the ready queue, or drop it when the entry
    // is saturated: skip-on-overrun and event-driven entries coalesce
    // to one outstanding invocation; non-skip periodic entries may
    // queue a catch-up burst but never past kMaxCatchupPeriods (the
    // same bound live mode enforces — unbounded virtual catch-up was
    // tail_bench's post-stall drop-retry storm).
    auto onArrival = [&ready, &seq, &recordOverrun,
                      this](std::size_t task, TimePoint t) {
        Entry &entry = *entries_[task];
        const int backlog =
            entry.sim_queued + (entry.sim_running ? 1 : 0);
        const bool coalesce =
            entry.period <= 0 || entry.plugin->skipOnOverrun();
        const int limit = coalesce ? 1 : kMaxCatchupPeriods;
        if (backlog >= limit) {
            recordOverrun(entry, t);
            return;
        }
        ready.push_back(ReadyItem{static_cast<int>(entry.lane), seq++,
                                  task, t});
        ++entry.sim_queued;
    };

    // Run every ready item a free worker can take at virtual time
    // @p now, best (lane, seq) first, lowest free worker index first;
    // topic wakeups raised by each invocation join the ready queue
    // before the next pick, so a chain of event-driven stages drains
    // at one virtual instant when workers allow.
    auto dispatchReady = [&](TimePoint now) {
        for (;;) {
            std::size_t w = config_.workers;
            for (std::size_t i = 0; i < config_.workers; ++i) {
                if (!workerBusy[i]) {
                    w = i;
                    break;
                }
            }
            if (w == config_.workers)
                return;
            std::size_t best = ready.size();
            for (std::size_t j = 0; j < ready.size(); ++j) {
                if (entries_[ready[j].task]->sim_running)
                    continue;
                if (best == ready.size() ||
                    ready[j].lane < ready[best].lane ||
                    (ready[j].lane == ready[best].lane &&
                     ready[j].seq < ready[best].seq))
                    best = j;
            }
            if (best == ready.size())
                return;
            const ReadyItem item = ready[best];
            ready.erase(ready.begin() +
                        static_cast<std::ptrdiff_t>(best));
            Entry &entry = *entries_[item.task];
            --entry.sim_queued;

            const std::uint64_t span_id =
                sink_ ? sink_->nextSpanId() : 0;
            const std::uint64_t attempt = ++entry.stats.attempts;
            const InvocationOutcome out =
                handoff(entry, w, now, attempt, span_id);

            if (out.suppressed) {
                // Held by the interceptor: no cost draw (the decision
                // is deterministic, so the draw stream stays aligned
                // across runs), no completion event, worker stays
                // free.
                ++entry.stats.suppressed;
                if (sink_)
                    sink_->recordSkip(entry.stats.name, now,
                                      SkipCause::Suppressed);
            } else {
                if (out.exception) {
                    ++entry.stats.exceptions;
                    if (entry.metrics.exceptions)
                        entry.metrics.exceptions->add();
                }

                // Injected spikes/stalls stretch the *modeled* cost,
                // so they land on the virtual timeline
                // deterministically.
                Duration vdur = modeledCost(entry, w);
                vdur = static_cast<Duration>(
                           static_cast<double>(vdur) *
                           out.duration_scale) +
                       out.extra;
                const TimePoint completion = now + vdur;
                workerBusy[w] = true;
                entry.sim_running = true;
                queue.push(SimEvent{completion,
                                    static_cast<int>(entry.lane), seq++,
                                    1, item.task, w});

                InvocationRecord rec;
                rec.arrival = item.arrival;
                rec.start = now;
                rec.virtual_duration = vdur;
                rec.completion = completion;
                rec.host_seconds = out.host_seconds;
                if (entry.vsync_aligned && entry.vsync > 0)
                    rec.target_vsync =
                        ((item.arrival + entry.vsync - 1) /
                         entry.vsync) *
                        entry.vsync;
                entry.stats.records.push_back(rec);
                entry.stats.exec_ms.add(toMilliseconds(vdur));
                entry.stats.busy += vdur;
                ++entry.stats.invocations;
                entry.iterations.fetch_add(1);
                if (entry.plugin->execUnit() == ExecUnit::Cpu)
                    busyCpu_ += vdur;
                else
                    busyGpu_ += vdur;

                if (entry.metrics.invocations)
                    entry.metrics.invocations->add();
                if (entry.metrics.exec_ms)
                    entry.metrics.exec_ms->observe(
                        toMilliseconds(vdur));
                if (workerInvocations_.size() > w &&
                    workerInvocations_[w])
                    workerInvocations_[w]->add();
                if (sink_) {
                    Span span;
                    span.task = entry.stats.name;
                    span.unit = entry.plugin->execUnit();
                    span.arrival = item.arrival;
                    span.start = now;
                    span.completion = completion;
                    span.host_seconds = out.host_seconds;
                    span.id = span_id;
                    span.worker = static_cast<std::uint32_t>(w + 1);
                    sink_->recordSpan(std::move(span));
                }
            }

            // Topic wakeups raised by the invocation become ready
            // arrivals at the current virtual time, in publish order.
            {
                std::lock_guard<std::mutex> wlock(simWakeupMutex_);
                for (std::size_t task : simWakeups_)
                    onArrival(task, now);
                simWakeups_.clear();
            }
        }
    };

    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i]->period > 0)
            pushArrival(i, 0);
    }

    while (!queue.empty()) {
        // Cooperative eviction (Session::stop()): wind down at the
        // next virtual-event boundary; the lifecycle below still runs.
        if (stopRequested())
            break;
        const SimEvent ev = queue.top();
        queue.pop();
        if (ev.time > duration)
            break;
        Entry &entry = *entries_[ev.task];

        if (ev.type == 1) { // Completion frees worker and slot.
            entry.sim_running = false;
            workerBusy[ev.worker] = false;
        } else {
            onArrival(ev.task, ev.time);
            if (entry.period > 0)
                pushArrival(ev.task, ev.time + entry.period);
        }

        dispatchReady(ev.time);

        if (laneDepth_[0]) {
            // True ready-queue depth per lane at this virtual instant
            // (runnable-but-waiting, the scheduler-wait backlog).
            std::size_t depth[3] = {0, 0, 0};
            for (const ReadyItem &item : ready)
                ++depth[item.lane];
            for (int lane = 0; lane < 3; ++lane)
                laneDepth_[lane]->set(static_cast<double>(depth[lane]));
        }
    }

    // Post-horizon state: entries left in the ready queue never ran.
    for (const ReadyItem &item : ready)
        --entries_[item.task]->sim_queued;

    {
        std::lock_guard<std::mutex> lock(handoffMutex_);
        shutdownWorkers_ = true;
    }
    handoffCv_.notify_all();
    for (std::thread &t : workers) {
        if (t.joinable())
            t.join();
    }
    stopPlugins();
}

// ---------------------------------------------------------- stats

std::size_t
PoolExecutor::iterations(const std::string &name) const
{
    for (const auto &entry : entries_) {
        if (entry->stats.name == name)
            return entry->iterations.load();
    }
    return 0;
}

const TaskStats &
PoolExecutor::stats(const std::string &name) const
{
    for (const auto &entry : entries_) {
        if (entry->stats.name == name) {
            std::lock_guard<std::mutex> lock(mutex_);
            return entry->stats;
        }
    }
    throw std::out_of_range("no such task: " + name);
}

std::vector<std::string>
PoolExecutor::taskNames() const
{
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto &entry : entries_)
        names.push_back(entry->stats.name);
    return names;
}

double
PoolExecutor::cpuUtilization() const
{
    if (runDuration_ <= 0 || config_.workers == 0)
        return 0.0;
    return toSeconds(busyCpu_) /
           (toSeconds(runDuration_) * static_cast<double>(config_.workers));
}

double
PoolExecutor::gpuUtilization() const
{
    if (runDuration_ <= 0)
        return 0.0;
    return std::min(1.0, toSeconds(busyGpu_) / toSeconds(runDuration_));
}

} // namespace illixr
