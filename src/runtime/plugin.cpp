#include "runtime/plugin.hpp"

#include <stdexcept>

namespace illixr {

PluginRegistry &
PluginRegistry::instance()
{
    static PluginRegistry registry;
    return registry;
}

void
PluginRegistry::registerFactory(const std::string &name,
                                PluginFactory factory)
{
    factories_[name] = std::move(factory);
}

std::unique_ptr<Plugin>
PluginRegistry::create(const std::string &name,
                       const Phonebook &phonebook) const
{
    auto it = factories_.find(name);
    if (it == factories_.end())
        throw std::out_of_range("unknown plugin: " + name);
    return it->second(phonebook);
}

bool
PluginRegistry::has(const std::string &name) const
{
    return factories_.count(name) > 0;
}

std::vector<std::string>
PluginRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;
}

} // namespace illixr
