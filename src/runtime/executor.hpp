/**
 * @file
 * Executor: the one interface over both ways of running a plugin set
 * — the discrete-event SimScheduler (virtual timeline) and the
 * real-threaded RtExecutor (wall clock). Examples and benches program
 * against this interface, so simulated and live execution are
 * swappable without divergent call sites.
 *
 * The base class also unifies the plugin lifecycle, which the two
 * executors previously half-duplicated (and half-skipped): run()
 * calls Plugin::start() in registration order before the first
 * iterate() and Plugin::stop() in reverse order after the last one,
 * on both timelines.
 *
 * Instrumentation: an attached TraceSink receives one Span per
 * invocation (task, exec unit, arrival/start/completion, skip
 * causes); the attached MetricsRegistry receives per-task interned
 * counters (`task.<name>.invocations`, `.skips`) and an exec-time
 * histogram (`task.<name>.exec_ms`).
 */

#pragma once

#include "foundation/stats.hpp"
#include "perfmodel/platform.hpp"
#include "runtime/phonebook.hpp"
#include "runtime/plugin.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/trace.hpp"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace illixr {

/** One completed invocation (virtual or wall timeline). */
struct InvocationRecord
{
    TimePoint arrival = 0;
    TimePoint start = 0;
    Duration virtual_duration = 0;
    TimePoint completion = 0;
    TimePoint target_vsync = 0; ///< 0 unless vsync-aligned.
    double host_seconds = 0.0;
};

/** Aggregated statistics of one scheduled task. */
struct TaskStats
{
    std::string name;
    ExecUnit unit = ExecUnit::Cpu;
    Duration period = 0;
    std::size_t invocations = 0;
    std::size_t skips = 0;       ///< Arrivals dropped due to overrun.
    std::size_t attempts = 0;    ///< Dispatch attempts (incl. held).
    std::size_t exceptions = 0;  ///< Invocations that threw.
    std::size_t suppressed = 0;  ///< Invocations held by a supervisor.
    Duration busy = 0;           ///< Total busy time.
    SampleSeries exec_ms;        ///< Per-invocation ms.
    std::vector<InvocationRecord> records;

    /** Achieved rate over a run of @p wall duration. */
    double achievedHz(Duration wall) const;
};

/** The exception type thrown by injected crash faults. */
struct InjectedFault : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * Decision taken at the invocation boundary, before iterate() runs.
 * Produced by an InvocationInterceptor (fault injection, supervision).
 */
struct PreInvocationAction
{
    bool suppress = false; ///< Hold this invocation (recorded as such).
    bool crash = false;    ///< Throw an InjectedFault inside the scope.
    Duration stall = 0;    ///< Extra occupancy (hang-then-complete).
    double duration_scale = 1.0; ///< Latency-spike cost multiplier.
};

/** What one guarded invocation did. */
struct InvocationOutcome
{
    bool ran = false;        ///< iterate() returned normally.
    bool suppressed = false; ///< Held back; iterate() never ran.
    bool exception = false;  ///< iterate() (or an injected crash) threw.
    std::string error;       ///< what() of the escaped exception.
    double host_seconds = 0.0;
    Duration extra = 0;          ///< Injected stall to add to occupancy.
    double duration_scale = 1.0; ///< Injected cost multiplier.
};

/**
 * Hook consulted by every executor around every plugin invocation.
 * before() may suppress the invocation, inject a crash, or add
 * modeled latency; after() observes the outcome (including escaped
 * exceptions) outside the invocation's trace scope, so anything it
 * publishes does not inherit the invocation's lineage.
 *
 * Called from executor worker threads: implementations must be
 * thread-safe, and under the deterministic PoolExecutor must make
 * decisions that are pure functions of (task, attempt) — never of
 * wall-clock time — to preserve the determinism contract.
 */
class InvocationInterceptor
{
  public:
    virtual ~InvocationInterceptor() = default;

    virtual PreInvocationAction before(Plugin &plugin,
                                       std::uint64_t attempt,
                                       TimePoint now) = 0;

    virtual void after(Plugin &plugin, TimePoint now,
                       const InvocationOutcome &outcome) = 0;
};

/**
 * The executor interface.
 */
class Executor
{
  public:
    virtual ~Executor() = default;

    /** Register a periodic plugin (not owned). Precedes run(). */
    virtual void addPlugin(Plugin *plugin) = 0;

    /**
     * Register a vsync-aligned plugin (reprojection). Executors
     * without late-latch scheduling run it as plain periodic at the
     * vsync period.
     */
    virtual void
    addVsyncAlignedPlugin(Plugin *plugin, Duration vsync)
    {
        (void)vsync;
        addPlugin(plugin);
    }

    /**
     * Run the plugin set for @p duration (virtual or wall time,
     * depending on the executor), blocking until done. Wraps the
     * unified plugin lifecycle (start before, stop after).
     */
    virtual void run(Duration duration) = 0;

    /** Statistics of one task. @throws std::out_of_range. */
    virtual const TaskStats &stats(const std::string &name) const = 0;

    /** Names of all registered tasks. */
    virtual std::vector<std::string> taskNames() const = 0;

    /** Attach the span/lineage sink (nullptr disables tracing). */
    virtual void setTraceSink(std::shared_ptr<TraceSink> sink) = 0;

    /** "virtual" or "wall": which timeline the timestamps are on. */
    virtual const char *timeline() const = 0;
};

/**
 * Shared lifecycle + instrumentation plumbing of both executors.
 */
class ExecutorBase : public Executor
{
  public:
    void
    setTraceSink(std::shared_ptr<TraceSink> sink) override
    {
        sink_ = std::move(sink);
    }

    /** Registry receiving per-task metrics (nullptr disables). */
    void setMetrics(MetricsRegistry *metrics) { metrics_ = metrics; }

    /** Phonebook handed to Plugin::start() (optional). */
    void setPhonebook(const Phonebook *phonebook)
    {
        phonebook_ = phonebook;
    }

    /** The phonebook plugins were started with (may be nullptr). */
    const Phonebook *phonebook() const { return phonebook_; }

    /**
     * Attach the invocation-boundary hook (nullptr detaches). Must be
     * set before run(); the interceptor must outlive the run.
     */
    void setInterceptor(InvocationInterceptor *interceptor)
    {
        interceptor_ = interceptor;
    }

    /**
     * Cooperative early stop: ask an in-flight (or not yet started)
     * run() to wind down at its next scheduling point. Safe to call
     * from any thread; one-way for this executor instance. A run that
     * ends early still performs the full plugin stop() lifecycle and
     * leaves the collected stats valid — sessions use this for
     * eviction (Session::stop()).
     */
    void requestStop();

    /** Has requestStop() been called on this executor? */
    bool
    stopRequested() const
    {
        return stop_requested_.load(std::memory_order_acquire);
    }

  protected:
    /** Interned per-task metric handles (resolved once, not per hit). */
    struct TaskMetrics
    {
        Counter *invocations = nullptr;
        Counter *skips = nullptr;
        Counter *exceptions = nullptr;
        Histogram *exec_ms = nullptr;
    };

    TaskMetrics internMetrics(const std::string &task);

    /**
     * The one way executors run iterate(): consults the interceptor,
     * opens/closes the TraceContext scope on *every* path (an escaped
     * exception must not poison the thread's next invocation), and
     * contains any exception the plugin throws instead of letting it
     * unwind the executor. host_seconds excludes the plugin's
     * excluded (modeled-remote) time.
     */
    InvocationOutcome invokeGuarded(Plugin &plugin, std::uint64_t attempt,
                                    TimePoint now, std::uint64_t span_id);

    /** Track a plugin for the shared start/stop lifecycle. */
    void notePlugin(Plugin *plugin) { lifecycle_.push_back(plugin); }

    /** Plugin::start() in registration order (idempotent per run). */
    void startPlugins();

    /** Plugin::stop() in reverse registration order. */
    void stopPlugins();

    /**
     * Block for @p duration, or until requestStop() — the wall-clock
     * executors' run() bodies sleep through this so an eviction never
     * has to wait out the configured duration.
     */
    void interruptibleSleep(Duration duration);

    std::shared_ptr<TraceSink> sink_;
    MetricsRegistry *metrics_ = &MetricsRegistry::global();
    const Phonebook *phonebook_ = nullptr;
    InvocationInterceptor *interceptor_ = nullptr;
    std::atomic<bool> stop_requested_{false};

  private:
    std::vector<Plugin *> lifecycle_;
    bool started_ = false;
    std::mutex stop_request_mutex_;
    std::condition_variable stop_request_cv_;
};

} // namespace illixr
