/**
 * @file
 * Executor: the one interface over both ways of running a plugin set
 * — the discrete-event SimScheduler (virtual timeline) and the
 * real-threaded RtExecutor (wall clock). Examples and benches program
 * against this interface, so simulated and live execution are
 * swappable without divergent call sites.
 *
 * The base class also unifies the plugin lifecycle, which the two
 * executors previously half-duplicated (and half-skipped): run()
 * calls Plugin::start() in registration order before the first
 * iterate() and Plugin::stop() in reverse order after the last one,
 * on both timelines.
 *
 * Instrumentation: an attached TraceSink receives one Span per
 * invocation (task, exec unit, arrival/start/completion, skip
 * causes); the attached MetricsRegistry receives per-task interned
 * counters (`task.<name>.invocations`, `.skips`) and an exec-time
 * histogram (`task.<name>.exec_ms`).
 */

#pragma once

#include "foundation/stats.hpp"
#include "perfmodel/platform.hpp"
#include "runtime/phonebook.hpp"
#include "runtime/plugin.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/trace.hpp"

#include <memory>
#include <string>
#include <vector>

namespace illixr {

/** One completed invocation (virtual or wall timeline). */
struct InvocationRecord
{
    TimePoint arrival = 0;
    TimePoint start = 0;
    Duration virtual_duration = 0;
    TimePoint completion = 0;
    TimePoint target_vsync = 0; ///< 0 unless vsync-aligned.
    double host_seconds = 0.0;
};

/** Aggregated statistics of one scheduled task. */
struct TaskStats
{
    std::string name;
    ExecUnit unit = ExecUnit::Cpu;
    Duration period = 0;
    std::size_t invocations = 0;
    std::size_t skips = 0;       ///< Arrivals dropped due to overrun.
    Duration busy = 0;           ///< Total busy time.
    SampleSeries exec_ms;        ///< Per-invocation ms.
    std::vector<InvocationRecord> records;

    /** Achieved rate over a run of @p wall duration. */
    double achievedHz(Duration wall) const;
};

/**
 * The executor interface.
 */
class Executor
{
  public:
    virtual ~Executor() = default;

    /** Register a periodic plugin (not owned). Precedes run(). */
    virtual void addPlugin(Plugin *plugin) = 0;

    /**
     * Register a vsync-aligned plugin (reprojection). Executors
     * without late-latch scheduling run it as plain periodic at the
     * vsync period.
     */
    virtual void
    addVsyncAlignedPlugin(Plugin *plugin, Duration vsync)
    {
        (void)vsync;
        addPlugin(plugin);
    }

    /**
     * Run the plugin set for @p duration (virtual or wall time,
     * depending on the executor), blocking until done. Wraps the
     * unified plugin lifecycle (start before, stop after).
     */
    virtual void run(Duration duration) = 0;

    /** Statistics of one task. @throws std::out_of_range. */
    virtual const TaskStats &stats(const std::string &name) const = 0;

    /** Names of all registered tasks. */
    virtual std::vector<std::string> taskNames() const = 0;

    /** Attach the span/lineage sink (nullptr disables tracing). */
    virtual void setTraceSink(std::shared_ptr<TraceSink> sink) = 0;

    /** "virtual" or "wall": which timeline the timestamps are on. */
    virtual const char *timeline() const = 0;
};

/**
 * Shared lifecycle + instrumentation plumbing of both executors.
 */
class ExecutorBase : public Executor
{
  public:
    void
    setTraceSink(std::shared_ptr<TraceSink> sink) override
    {
        sink_ = std::move(sink);
    }

    /** Registry receiving per-task metrics (nullptr disables). */
    void setMetrics(MetricsRegistry *metrics) { metrics_ = metrics; }

    /** Phonebook handed to Plugin::start() (optional). */
    void setPhonebook(const Phonebook *phonebook)
    {
        phonebook_ = phonebook;
    }

  protected:
    /** Interned per-task metric handles (resolved once, not per hit). */
    struct TaskMetrics
    {
        Counter *invocations = nullptr;
        Counter *skips = nullptr;
        Histogram *exec_ms = nullptr;
    };

    TaskMetrics internMetrics(const std::string &task);

    /** Track a plugin for the shared start/stop lifecycle. */
    void notePlugin(Plugin *plugin) { lifecycle_.push_back(plugin); }

    /** Plugin::start() in registration order (idempotent per run). */
    void startPlugins();

    /** Plugin::stop() in reverse registration order. */
    void stopPlugins();

    std::shared_ptr<TraceSink> sink_;
    MetricsRegistry *metrics_ = &MetricsRegistry::global();
    const Phonebook *phonebook_ = nullptr;

  private:
    std::vector<Plugin *> lifecycle_;
    bool started_ = false;
};

} // namespace illixr
