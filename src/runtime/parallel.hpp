/**
 * @file
 * Data-parallel kernel runtime: a deterministic parallelFor /
 * parallelReduce over a fixed worker set (KernelPool), plus a
 * per-thread bump allocator (ScratchArena) that removes per-frame
 * heap traffic from the hot kernels.
 *
 * Determinism is a hard contract (DESIGN.md §6):
 *
 *  - Tiling is a *pure function* of (range, grain): kernelTiles()
 *    never consults the worker count, the clock, or any scheduler
 *    state. Tile i always covers
 *    [begin + i*grain, min(end, begin + (i+1)*grain)).
 *  - Tiles write disjoint outputs, so the assignment of tiles to
 *    workers (which *is* timing-dependent, via stealing) cannot
 *    change results.
 *  - parallelReduce() stores one partial per tile and combines them
 *    in ascending tile order on the calling thread, so reductions
 *    are bit-identical across worker counts — including width 1,
 *    which executes the very same tiles in the very same order.
 *
 * Executor interaction: there is ONE process-wide KernelPool, started
 * lazily on the first parallel launch (so RT/Sim executors get it for
 * free). Kernel launches are single-flight: a launch that arrives
 * while another kernel is parallelizing — e.g. two PoolExecutor tasks
 * both hitting a hot kernel — runs its tiles inline on the calling
 * thread instead of queueing or spawning more threads. Nested
 * launches (a parallel kernel calling another) also degrade to
 * inline-serial. Peak extra threads are therefore width-1 for the
 * whole process, never per task, and a pool of width 1 can never
 * deadlock on nesting.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace illixr {

class TraceSink;
class MetricsRegistry;

/** One tile of a kernel launch: a half-open index range. */
struct KernelTile
{
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t index = 0;
};

/**
 * The deterministic tiling: a pure function of (range, grain) only.
 * grain 0 is treated as 1; an empty range yields no tiles.
 */
std::vector<KernelTile> kernelTiles(std::size_t begin, std::size_t end,
                                    std::size_t grain);

/**
 * Per-thread bump allocator for kernel scratch (pyramid temporaries,
 * KLT patches, MSCKF Jacobian rows). Allocation is a pointer bump;
 * nothing is freed until rewind. Kernels open an ArenaFrame at entry,
 * which rewinds the arena on exit, so capacity reached after warmup
 * is reused forever (asserted by ParallelTest.ArenaNoGrowthAfterWarmup
 * via growthCount()).
 */
class ScratchArena
{
  public:
    /** Arena of the calling thread (created on first use). */
    static ScratchArena &forThisThread();

    /** A rewind point (see ArenaFrame). */
    struct Mark
    {
        std::size_t block = 0;
        std::size_t offset = 0;
    };

    void *allocate(std::size_t bytes,
                   std::size_t align = alignof(std::max_align_t));

    /** Typed array of @p n trivially-destructible Ts (uninitialised). */
    template <typename T>
    T *
    alloc(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is never destructed");
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    Mark mark() const { return {block_, offset_}; }
    void rewind(Mark m);

    /** Free every block (capacity back to zero). */
    void releaseAll();

    /** Total bytes across blocks. */
    std::size_t capacity() const { return capacity_; }

    /** Number of block allocations ever made (growth events). */
    std::uint64_t growthCount() const { return growths_; }

    /** Number of allocate() calls ever made. */
    std::uint64_t allocationCount() const { return allocs_; }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    std::vector<Block> blocks_;
    std::size_t block_ = 0;  ///< Current block index.
    std::size_t offset_ = 0; ///< Bump offset within the current block.
    std::size_t capacity_ = 0;
    std::uint64_t growths_ = 0;
    std::uint64_t allocs_ = 0;
};

/**
 * RAII arena scope: saves the bump point on entry and rewinds on
 * exit, so nested kernels (pyramid -> gaussianBlur) stack cleanly.
 */
class ArenaFrame
{
  public:
    explicit ArenaFrame(ScratchArena &arena = ScratchArena::forThisThread())
        : arena_(arena), mark_(arena.mark())
    {
    }

    ~ArenaFrame() { arena_.rewind(mark_); }

    template <typename T>
    T *
    alloc(std::size_t n)
    {
        return arena_.alloc<T>(n);
    }

    ScratchArena &arena() { return arena_; }

    ArenaFrame(const ArenaFrame &) = delete;
    ArenaFrame &operator=(const ArenaFrame &) = delete;

  private:
    ScratchArena &arena_;
    ScratchArena::Mark mark_;
};

/**
 * The process-wide kernel worker pool. Width comes from
 * `ILLIXR_KERNEL_THREADS` (default 1 == serial) and can be overridden
 * via setWidth() (IntegratedConfig::kernel_threads is wired through
 * it). Helpers are started lazily on the first launch that can use
 * them and joined on setWidth()/shutdown.
 *
 * Scheduling: the tile index space is split into one contiguous chunk
 * per participant; each participant drains its own chunk through an
 * atomic cursor, then *steals* remaining tiles from other chunks
 * (kernel.steal counts those). Every tile is claimed exactly once —
 * fetch_add hands out unique indices — so work stealing never
 * double-executes a tile.
 */
class KernelPool
{
  public:
    /** The process-wide pool (created on first use). */
    static KernelPool &instance();

    /** Width from ILLIXR_KERNEL_THREADS (>=1), or 1 when unset. */
    static std::size_t defaultWidth();

    ~KernelPool();

    /** Reconfigure the worker count; waits out an in-flight kernel. */
    void setWidth(std::size_t width);

    std::size_t width() const;

    /** Record `kernel.*` spans into @p sink (null to disable). */
    void setTraceSink(std::shared_ptr<TraceSink> sink);

    /**
     * Registry for the kernel.<name>.{tiles,steal,ns} family
     * (defaults to MetricsRegistry::global()).
     *
     * Process-wide: with several sessions sharing the pool this is the
     * wrong knob — use a MetricsScope on the launching thread instead,
     * which takes precedence and needs no quiescence.
     */
    void setMetrics(MetricsRegistry *metrics);

    /**
     * Thread-local accounting override: while a scope is alive on the
     * launching thread, every kernel launched from that thread records
     * its kernel.<name>.{tiles,steal,ns} metrics into @p metrics and
     * its spans into @p sink — not into the pool-wide defaults. This
     * is how per-session kernel accounting works: each executor
     * installs a scope around plugin invocations, so N concurrent
     * sessions sharing the one process-wide pool never mix metrics.
     * Scopes nest (the previous scope is restored on destruction);
     * a null @p metrics falls back to MetricsRegistry::global(), a
     * null @p sink disables span recording for the scope.
     */
    class MetricsScope
    {
      public:
        MetricsScope(MetricsRegistry *metrics, TraceSink *sink);
        ~MetricsScope();

        MetricsScope(const MetricsScope &) = delete;
        MetricsScope &operator=(const MetricsScope &) = delete;

      private:
        friend class KernelPool;

        MetricsRegistry *metrics_ = nullptr;
        TraceSink *sink_ = nullptr;
        const MetricsScope *prev_ = nullptr;
    };

    /**
     * Drop every cached Counter/Histogram handle interned against
     * @p metrics. Sessions call this when tearing down their registry:
     * the pool's per-registry handle cache would otherwise dangle —
     * and silently alias a *new* registry allocated at the same
     * address (the PR-4 use-after-free, multi-tenant edition).
     */
    void forgetMetrics(const MetricsRegistry *metrics);

    using TileFn = void (*)(void *ctx, std::size_t begin, std::size_t end);

    /**
     * Execute fn over [begin, end) tiled by @p grain. Blocks until
     * every tile ran. Runs inline-serial (same tiles, ascending
     * order) when width()==1, when nested inside another kernel, or
     * when another kernel launch is already in flight.
     */
    void run(const char *name, std::size_t begin, std::size_t end,
             std::size_t grain, TileFn fn, void *ctx);

    /** True while the calling thread is inside a kernel tile. */
    static bool inKernel();

    /** Total parallel launches (not counting inline-serial ones). */
    std::uint64_t parallelLaunches() const;

    /** Total tiles executed via stealing. */
    std::uint64_t stealCount() const;

  private:
    KernelPool();

    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * parallelFor: apply fn(tile_begin, tile_end) to every tile of
 * [begin, end) tiled by grain. Tiles must write disjoint outputs.
 * (This is the paper-issue `parallel_for` primitive, spelled in the
 * repo's camelCase.)
 */
template <typename F>
inline void
parallelFor(const char *name, std::size_t begin, std::size_t end,
            std::size_t grain, F &&fn)
{
    using Fn = std::remove_reference_t<F>;
    KernelPool::instance().run(
        name, begin, end, grain,
        [](void *ctx, std::size_t b, std::size_t e) {
            (*static_cast<Fn *>(ctx))(b, e);
        },
        const_cast<void *>(static_cast<const void *>(&fn)));
}

/**
 * parallelReduce: tile_fn(tile_begin, tile_end) -> T per tile;
 * partials are combined with combine(acc, partial) in ascending tile
 * order on the calling thread, so the result is bit-identical across
 * worker counts.
 */
template <typename T, typename TileF, typename CombineF>
inline T
parallelReduce(const char *name, std::size_t begin, std::size_t end,
               std::size_t grain, T init, TileF &&tile_fn,
               CombineF &&combine)
{
    const std::vector<KernelTile> tiles = kernelTiles(begin, end, grain);
    if (tiles.empty())
        return init;
    std::vector<T> partials(tiles.size());
    parallelFor(name, 0, tiles.size(), 1,
                [&](std::size_t tb, std::size_t te) {
                    for (std::size_t t = tb; t < te; ++t)
                        partials[t] =
                            tile_fn(tiles[t].begin, tiles[t].end);
                });
    T acc = std::move(init);
    for (std::size_t t = 0; t < tiles.size(); ++t)
        acc = combine(std::move(acc), std::move(partials[t]));
    return acc;
}

} // namespace illixr
