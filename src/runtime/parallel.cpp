#include "runtime/parallel.hpp"

#include "foundation/profile.hpp"
#include "foundation/simd.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/trace.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace illixr {

// ---------------------------------------------------------------------
// Tiling
// ---------------------------------------------------------------------

std::vector<KernelTile>
kernelTiles(std::size_t begin, std::size_t end, std::size_t grain)
{
    std::vector<KernelTile> tiles;
    if (end <= begin)
        return tiles;
    if (grain == 0)
        grain = 1;
    const std::size_t n = end - begin;
    const std::size_t count = (n + grain - 1) / grain;
    tiles.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        KernelTile t;
        t.begin = begin + i * grain;
        t.end = std::min(end, t.begin + grain);
        t.index = i;
        tiles.push_back(t);
    }
    return tiles;
}

// ---------------------------------------------------------------------
// ScratchArena
// ---------------------------------------------------------------------

namespace {
constexpr std::size_t kMinArenaBlock = 64 * 1024;
} // namespace

ScratchArena &
ScratchArena::forThisThread()
{
    static thread_local ScratchArena arena;
    return arena;
}

void *
ScratchArena::allocate(std::size_t bytes, std::size_t align)
{
    ++allocs_;
    if (bytes == 0)
        bytes = 1;
    if (align == 0)
        align = 1;
    // Try the current block, then any later (already-grown) block.
    while (block_ < blocks_.size()) {
        Block &b = blocks_[block_];
        const std::size_t base =
            reinterpret_cast<std::size_t>(b.data.get());
        const std::size_t aligned =
            (base + offset_ + align - 1) & ~(align - 1);
        const std::size_t new_offset = aligned - base + bytes;
        if (new_offset <= b.size) {
            offset_ = new_offset;
            return reinterpret_cast<void *>(aligned);
        }
        ++block_;
        offset_ = 0;
    }
    // Grow: blocks double so steady-state kernels settle into block 0.
    std::size_t size = kMinArenaBlock;
    if (!blocks_.empty())
        size = std::max(size, blocks_.back().size * 2);
    size = std::max(size, bytes + align);
    Block b;
    b.data = std::make_unique<std::byte[]>(size);
    b.size = size;
    capacity_ += size;
    ++growths_;
    blocks_.push_back(std::move(b));
    block_ = blocks_.size() - 1;
    offset_ = 0;
    const std::size_t base =
        reinterpret_cast<std::size_t>(blocks_.back().data.get());
    const std::size_t aligned = (base + align - 1) & ~(align - 1);
    offset_ = aligned - base + bytes;
    return reinterpret_cast<void *>(aligned);
}

void
ScratchArena::rewind(Mark m)
{
    assert(m.block <= blocks_.size());
    block_ = m.block;
    offset_ = m.offset;
}

void
ScratchArena::releaseAll()
{
    blocks_.clear();
    block_ = 0;
    offset_ = 0;
    capacity_ = 0;
}

// ---------------------------------------------------------------------
// KernelPool
// ---------------------------------------------------------------------

namespace {

constexpr std::size_t kMaxKernelWidth = 64;

thread_local bool tl_in_kernel = false;

/** Innermost live MetricsScope of the calling thread (see header). */
thread_local const KernelPool::MetricsScope *tl_metrics_scope = nullptr;

/** Cached metric handles for one kernel name. */
struct KernelMetrics
{
    Counter *tiles = nullptr;
    Counter *steals = nullptr;
    Histogram *ns = nullptr;
};

struct alignas(64) ChunkCursor
{
    std::atomic<std::size_t> next{0};
    std::size_t limit = 0;
};

struct Launch
{
    const char *name = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t tiles = 0;
    KernelPool::TileFn fn = nullptr;
    void *ctx = nullptr;
    std::size_t parts = 1;
    ChunkCursor chunks[kMaxKernelWidth];
    std::atomic<std::size_t> done{0};
    std::atomic<std::uint64_t> steals{0};
};

} // namespace

struct KernelPool::Impl
{
    // --- configuration (config_mutex) ---
    mutable std::mutex config_mutex;
    std::size_t width = 1;
    std::shared_ptr<TraceSink> sink;
    MetricsRegistry *metrics = nullptr; // null -> global()

    // --- single-flight admission ---
    std::mutex launch_mutex;

    // --- helper handoff (m) ---
    std::mutex m;
    std::condition_variable work_cv;
    std::condition_variable done_cv;
    std::vector<std::thread> helpers;
    Launch *current = nullptr;
    std::uint64_t generation = 0;
    std::size_t active = 0; ///< Helpers inside the current launch.
    bool stop = false;

    // --- stats ---
    std::atomic<std::uint64_t> parallel_launches{0};
    std::atomic<std::uint64_t> steal_total{0};

    // --- metric handle cache (cache_mutex) ---
    // Keyed per registry: concurrent sessions intern the same kernel
    // names into *different* registries, so a name-only cache would
    // hand one session handles into another session's registry.
    std::mutex cache_mutex;
    std::unordered_map<const MetricsRegistry *,
                       std::unordered_map<std::string, KernelMetrics>>
        metric_cache;

    void
    runTile(Launch &l, std::size_t tile)
    {
        const std::size_t b = l.begin + tile * l.grain;
        const std::size_t e = std::min(l.end, b + l.grain);
        l.fn(l.ctx, b, e);
        l.done.fetch_add(1, std::memory_order_release);
    }

    /** Drain own chunk, then steal from the others. */
    void
    participate(Launch &l, std::size_t w)
    {
        const bool was_in_kernel = tl_in_kernel;
        tl_in_kernel = true;
        ChunkCursor &own = l.chunks[w];
        std::size_t i;
        while ((i = own.next.fetch_add(1, std::memory_order_relaxed)) <
               own.limit)
            runTile(l, i);
        // Steal: scan the other chunks until every tile is claimed.
        for (std::size_t scan = 1; scan < l.parts; ++scan) {
            const std::size_t v = (w + scan) % l.parts;
            ChunkCursor &victim = l.chunks[v];
            while (victim.next.load(std::memory_order_relaxed) <
                   victim.limit) {
                i = victim.next.fetch_add(1, std::memory_order_relaxed);
                if (i >= victim.limit)
                    break;
                runTile(l, i);
                l.steals.fetch_add(1, std::memory_order_relaxed);
            }
        }
        tl_in_kernel = was_in_kernel;
    }

    void
    helperMain()
    {
        std::uint64_t seen = 0;
        for (;;) {
            Launch *l = nullptr;
            std::size_t slot = 0;
            {
                std::unique_lock<std::mutex> lk(m);
                work_cv.wait(lk, [&] {
                    return stop || (current && generation != seen);
                });
                if (stop)
                    return;
                seen = generation;
                l = current;
                slot = ++active; // 1-based helper slot
                if (slot >= l->parts) {
                    // More helpers than participant slots (width was
                    // lowered mid-flight): sit this one out.
                    --active;
                    continue;
                }
            }
            participate(*l, slot);
            {
                std::lock_guard<std::mutex> lk(m);
                --active;
            }
            done_cv.notify_all();
        }
    }

    void
    stopHelpers()
    {
        {
            std::lock_guard<std::mutex> lk(m);
            stop = true;
        }
        work_cv.notify_all();
        for (std::thread &t : helpers)
            t.join();
        helpers.clear();
        {
            std::lock_guard<std::mutex> lk(m);
            stop = false;
        }
    }

    KernelMetrics
    metricsFor(const char *name, MetricsRegistry *reg)
    {
        std::lock_guard<std::mutex> lk(cache_mutex);
        const bool fresh_registry = !metric_cache.count(reg);
        auto &per_registry = metric_cache[reg];
        if (fresh_registry)
            reg->gauge("kernel.simd_backend")
                .set(static_cast<double>(simd::backendId()));
        auto it = per_registry.find(name);
        if (it != per_registry.end())
            return it->second;
        KernelMetrics km;
        const std::string base = std::string("kernel.") + name;
        km.tiles = &reg->counter(base + ".tiles");
        km.steals = &reg->counter(base + ".steal");
        km.ns = &reg->histogram(base + ".ns");
        per_registry.emplace(name, km);
        return km;
    }
};

KernelPool::KernelPool() : impl_(std::make_unique<Impl>())
{
    impl_->width = defaultWidth();
}

KernelPool::~KernelPool()
{
    impl_->stopHelpers();
}

KernelPool &
KernelPool::instance()
{
    static KernelPool pool;
    return pool;
}

std::size_t
KernelPool::defaultWidth()
{
    if (const char *v = std::getenv("ILLIXR_KERNEL_THREADS")) {
        char *end = nullptr;
        const unsigned long n = std::strtoul(v, &end, 10);
        if (end && *end == '\0' && n >= 1)
            return std::min<std::size_t>(n, kMaxKernelWidth);
    }
    return 1;
}

void
KernelPool::setWidth(std::size_t width)
{
    width = std::clamp<std::size_t>(width, 1, kMaxKernelWidth);
    // Wait out any in-flight kernel so helpers are quiescent.
    std::lock_guard<std::mutex> launch_lk(impl_->launch_mutex);
    impl_->stopHelpers();
    std::lock_guard<std::mutex> lk(impl_->config_mutex);
    impl_->width = width;
}

std::size_t
KernelPool::width() const
{
    std::lock_guard<std::mutex> lk(impl_->config_mutex);
    return impl_->width;
}

void
KernelPool::setTraceSink(std::shared_ptr<TraceSink> sink)
{
    std::lock_guard<std::mutex> lk(impl_->config_mutex);
    impl_->sink = std::move(sink);
}

void
KernelPool::setMetrics(MetricsRegistry *metrics)
{
    std::lock_guard<std::mutex> lk(impl_->config_mutex);
    MetricsRegistry *previous =
        impl_->metrics ? impl_->metrics : &MetricsRegistry::global();
    impl_->metrics = metrics;
    // Retargeting usually means the previous per-run registry is about
    // to die; evict its handles so a future registry reusing the same
    // address can never hit a stale Counter*/Histogram*. The global
    // registry is immortal — its handles stay cached.
    if (previous != &MetricsRegistry::global()) {
        std::lock_guard<std::mutex> ck(impl_->cache_mutex);
        impl_->metric_cache.erase(previous);
    }
}

KernelPool::MetricsScope::MetricsScope(MetricsRegistry *metrics,
                                       TraceSink *sink)
    : metrics_(metrics), sink_(sink), prev_(tl_metrics_scope)
{
    tl_metrics_scope = this;
}

KernelPool::MetricsScope::~MetricsScope()
{
    tl_metrics_scope = prev_;
}

void
KernelPool::forgetMetrics(const MetricsRegistry *metrics)
{
    // Same lock order as setMetrics (config before cache).
    std::lock_guard<std::mutex> lk(impl_->config_mutex);
    if (impl_->metrics == metrics)
        impl_->metrics = nullptr;
    std::lock_guard<std::mutex> ck(impl_->cache_mutex);
    impl_->metric_cache.erase(metrics);
}

bool
KernelPool::inKernel()
{
    return tl_in_kernel;
}

std::uint64_t
KernelPool::parallelLaunches() const
{
    return impl_->parallel_launches.load(std::memory_order_relaxed);
}

std::uint64_t
KernelPool::stealCount() const
{
    return impl_->steal_total.load(std::memory_order_relaxed);
}

void
KernelPool::run(const char *name, std::size_t begin, std::size_t end,
                std::size_t grain, TileFn fn, void *ctx)
{
    if (end <= begin)
        return;
    if (grain == 0)
        grain = 1;
    const std::size_t tiles = (end - begin + grain - 1) / grain;

    const double t0 = hostTimeSeconds();

    // Accounting targets: the launching thread's MetricsScope wins
    // (per-session routing under concurrent sessions); otherwise the
    // pool-wide defaults. The shared_ptr hold keeps a pool-wide sink
    // alive across the launch; a scope sink is a raw pointer whose
    // lifetime the scope's installer (the executor run) guarantees.
    std::size_t width;
    MetricsRegistry *reg = nullptr;
    TraceSink *sink = nullptr;
    std::shared_ptr<TraceSink> sink_hold;
    {
        std::lock_guard<std::mutex> lk(impl_->config_mutex);
        width = impl_->width;
        if (tl_metrics_scope) {
            reg = tl_metrics_scope->metrics_;
            sink = tl_metrics_scope->sink_;
        } else {
            reg = impl_->metrics;
            sink_hold = impl_->sink;
            sink = sink_hold.get();
        }
    }
    if (!reg)
        reg = &MetricsRegistry::global();

    std::uint64_t steals = 0;
    // Serial path: width 1, a single tile, a nested launch, or a
    // kernel already in flight. Identical tiles in ascending order,
    // so outputs match the parallel path bit-for-bit.
    bool parallel = width > 1 && tiles > 1 && !tl_in_kernel;
    std::unique_lock<std::mutex> launch_lk(impl_->launch_mutex,
                                           std::defer_lock);
    if (parallel)
        parallel = launch_lk.try_lock();

    if (!parallel) {
        const bool was_in_kernel = tl_in_kernel;
        tl_in_kernel = true;
        for (std::size_t i = 0; i < tiles; ++i) {
            const std::size_t b = begin + i * grain;
            const std::size_t e = std::min(end, b + grain);
            fn(ctx, b, e);
        }
        tl_in_kernel = was_in_kernel;
    } else {
        Launch l;
        l.name = name;
        l.begin = begin;
        l.end = end;
        l.grain = grain;
        l.tiles = tiles;
        l.fn = fn;
        l.ctx = ctx;
        l.parts = std::min(width, kMaxKernelWidth);
        for (std::size_t w = 0; w < l.parts; ++w) {
            l.chunks[w].next.store(tiles * w / l.parts,
                                   std::memory_order_relaxed);
            l.chunks[w].limit = tiles * (w + 1) / l.parts;
        }
        {
            std::lock_guard<std::mutex> lk(impl_->m);
            // Lazily (re)start helpers at the configured width, but
            // never keep more workers than the host has cores: on an
            // oversubscribed host the extra helpers only add
            // wake/quiesce handoff per launch (the fig3 width-4
            // inversion). The tiling (l.parts) is unchanged and idle
            // chunks are drained by stealing, so outputs are
            // bit-identical either way.
            const std::size_t host_cores = std::max<std::size_t>(
                1, std::thread::hardware_concurrency());
            while (impl_->helpers.size() + 1 < std::min(width, host_cores))
                impl_->helpers.emplace_back(
                    [this] { impl_->helperMain(); });
            impl_->current = &l;
            ++impl_->generation;
        }
        impl_->work_cv.notify_all();
        impl_->participate(l, 0);
        {
            std::unique_lock<std::mutex> lk(impl_->m);
            impl_->done_cv.wait(lk, [&] {
                return impl_->active == 0 &&
                       l.done.load(std::memory_order_acquire) ==
                           l.tiles;
            });
            impl_->current = nullptr;
        }
        steals = l.steals.load(std::memory_order_relaxed);
        impl_->parallel_launches.fetch_add(1,
                                           std::memory_order_relaxed);
        impl_->steal_total.fetch_add(steals,
                                     std::memory_order_relaxed);
        launch_lk.unlock();
    }

    const double t1 = hostTimeSeconds();

    KernelMetrics km = impl_->metricsFor(name, reg);
    km.tiles->add(tiles);
    if (steals)
        km.steals->add(steals);
    km.ns->observe((t1 - t0) * 1e9);

    if (sink) {
        Span span;
        span.task = std::string("kernel.") + name;
        span.unit = ExecUnit::Cpu;
        span.arrival = static_cast<TimePoint>(t0 * 1e9);
        span.start = span.arrival;
        span.completion = static_cast<TimePoint>(t1 * 1e9);
        span.host_seconds = t1 - t0;
        span.id = sink->nextSpanId();
        sink->recordSpan(std::move(span));
    }
}

} // namespace illixr
