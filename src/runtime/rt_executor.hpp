/**
 * @file
 * Real-threaded executor: runs the same plugins as the discrete-event
 * scheduler, but live — one thread per plugin, sleeping to its
 * period, wall-clock timestamps. Used by the examples to demonstrate
 * the runtime working as a live system (paper §II-B: "The ILLIXR
 * runtime currently runs on Linux").
 */

#pragma once

#include "foundation/stats.hpp"
#include "runtime/plugin.hpp"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace illixr {

/**
 * Threaded periodic executor.
 */
class RtExecutor
{
  public:
    RtExecutor() = default;
    ~RtExecutor();

    RtExecutor(const RtExecutor &) = delete;
    RtExecutor &operator=(const RtExecutor &) = delete;

    /** Register a plugin (not owned). Must precede start(). */
    void addPlugin(Plugin *plugin);

    /** Launch one thread per plugin. */
    void start();

    /** Stop all threads and join. */
    void stop();

    bool running() const { return running_.load(); }

    /** Completed iterations of a plugin so far. */
    std::size_t iterations(const std::string &name) const;

  private:
    struct Entry
    {
        Plugin *plugin = nullptr;
        std::atomic<std::size_t> iterations{0};
    };

    void threadMain(Entry &entry);

    std::vector<std::unique_ptr<Entry>> entries_;
    std::vector<std::thread> threads_;
    std::atomic<bool> running_{false};
};

} // namespace illixr
