/**
 * @file
 * Real-threaded executor: runs the same plugins as the discrete-event
 * scheduler, but live — one thread per plugin, sleeping to its
 * period, wall-clock timestamps. Used by the examples to demonstrate
 * the runtime working as a live system (paper §II-B: "The ILLIXR
 * runtime currently runs on Linux").
 *
 * Implements the Executor interface (wall timeline): run(duration)
 * starts the plugin threads, sleeps, and stops them; TaskStats and
 * TraceSink spans mirror the SimScheduler's, with nanoseconds since
 * the executor epoch as the timeline.
 */

#pragma once

#include "runtime/executor.hpp"
#include "runtime/plugin.hpp"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace illixr {

/**
 * Threaded periodic executor.
 */
class RtExecutor : public ExecutorBase
{
  public:
    RtExecutor() = default;
    ~RtExecutor() override;

    RtExecutor(const RtExecutor &) = delete;
    RtExecutor &operator=(const RtExecutor &) = delete;

    /** Register a plugin (not owned). Must precede start(). */
    void addPlugin(Plugin *plugin) override;

    /** Run live for @p duration of wall time, then stop. */
    void run(Duration duration) override;

    /** Launch one thread per plugin (start() plugins first). */
    void start();

    /**
     * Stop all threads, join, and stop() plugins. Completes promptly
     * even when every plugin thread is parked mid-period: the threads
     * sleep on a condition variable that stop() broadcasts, and the
     * stop flag is raised under that cv's mutex (never held across
     * the joins) so a thread between its check and its wait cannot
     * miss the wakeup.
     */
    void stop();

    bool running() const { return running_.load(); }

    /** Completed iterations of a plugin so far. */
    std::size_t iterations(const std::string &name) const;

    /** Statistics of a plugin; call after stop(). */
    const TaskStats &stats(const std::string &name) const override;

    std::vector<std::string> taskNames() const override;

    const char *timeline() const override { return "wall"; }

  private:
    struct Entry
    {
        Plugin *plugin = nullptr;
        std::atomic<std::size_t> iterations{0};
        mutable std::mutex mutex; ///< Guards stats while live.
        TaskStats stats;
        TaskMetrics metrics;
    };

    void threadMain(Entry &entry);

    std::vector<std::unique_ptr<Entry>> entries_;
    std::vector<std::thread> threads_;
    std::atomic<bool> running_{false};
    std::mutex stopMutex_;       ///< Guards the sleep/stop handshake.
    std::condition_variable stopCv_;
};

} // namespace illixr
