/**
 * @file
 * Phonebook: the type-indexed service registry through which plugins
 * discover runtime services (switchboard, clock, platform model, ...)
 * — mirroring ILLIXR's phonebook.
 */

#pragma once

#include <memory>
#include <stdexcept>
#include <typeindex>
#include <unordered_map>

namespace illixr {

class Phonebook
{
  public:
    /** Register a service instance under its type. */
    template <typename Service>
    void
    registerService(std::shared_ptr<Service> service)
    {
        services_[std::type_index(typeid(Service))] = std::move(service);
    }

    /** Look up a service. @throws std::out_of_range if absent. */
    template <typename Service>
    std::shared_ptr<Service>
    lookup() const
    {
        auto it = services_.find(std::type_index(typeid(Service)));
        if (it == services_.end()) {
            throw std::out_of_range(std::string("phonebook: no service ") +
                                    typeid(Service).name());
        }
        return std::static_pointer_cast<Service>(it->second);
    }

    /** True when a service of the given type is registered. */
    template <typename Service>
    bool
    has() const
    {
        return services_.count(std::type_index(typeid(Service))) > 0;
    }

  private:
    std::unordered_map<std::type_index, std::shared_ptr<void>> services_;
};

} // namespace illixr
