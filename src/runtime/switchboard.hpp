/**
 * @file
 * Switchboard: the event-stream communication framework of §II-B.
 *
 * Topics are named channels carrying immutable events. Writers
 * publish; *asynchronous* readers get the latest value ("ask for the
 * latest"); *synchronous* readers see every value through a bounded
 * per-reader queue. Plugins may only interact through these streams,
 * which is what makes every component independently swappable.
 *
 * ## Typed handles
 *
 * The steady-state API is handle-based: a plugin interns a topic
 * once (`writer<T>()`, `reader<T>()`, `asyncReader<T>()`) and then
 * publishes/reads through the handle with no per-access map lookup
 * and no dynamic_pointer_cast — the topic's payload type is locked at
 * handle creation, so reads are a single static cast behind one
 * per-topic mutex. The string-keyed `publish`/`latest`/`subscribe`
 * calls remain as thin deprecated shims over the same topics.
 *
 * ## Lineage
 *
 * On publish every event is stamped with a TraceId (interned topic
 * index + per-topic sequence). If the publishing plugin is running
 * inside an executor invocation (TraceContext), the ids of every
 * event it read this invocation become the new event's parent links,
 * so a displayed frame's full causal chain back to its source camera
 * frame and IMU window is reconstructible from the TraceSink.
 */

#pragma once

#include "foundation/time.hpp"
#include "trace/trace.hpp"
#include "trace/trace_id.hpp"

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <vector>

namespace illixr {

/** Base class of everything published on a topic. */
struct Event
{
    TimePoint time = 0; ///< When the payload was produced/captured.

    /** Causal identity; assigned by the switchboard on publish. */
    TraceId trace;

    /**
     * Events this one was derived from. Left empty, the switchboard
     * fills it from the running invocation's consumed set; a plugin
     * may also set it explicitly (e.g., for results released long
     * after the invocation that consumed the inputs).
     */
    std::vector<TraceId> parents;

    virtual ~Event() = default;
};

using EventPtr = std::shared_ptr<const Event>;

/**
 * A synchronous reader: sees every event published after its
 * creation, in order.
 */
class SyncReader
{
  public:
    /** Pop the oldest unread event; nullptr when drained. */
    EventPtr pop();

    /** Events currently queued. */
    std::size_t pending() const;

    /** Number of events dropped due to queue overflow. */
    std::size_t dropped() const;

  private:
    friend class Switchboard;
    mutable std::mutex mutex_;
    std::deque<EventPtr> queue_;
    std::size_t capacity_ = 1024;
    std::size_t dropped_ = 0;
};

/** Callback fired after a publish completes on a topic. */
using PublishListener = std::function<void(const std::string &topic)>;

/**
 * Owning token of a publish listener: the listener stays registered
 * for as long as the handle is alive (topics keep only weak refs).
 */
using PublishListenerHandle = std::shared_ptr<PublishListener>;

/**
 * Hook consulted on every publish, before the event is stamped and
 * fanned out. Return false to drop the publish (no TraceId, no
 * readers, no listeners — recorded as an injected-drop skip); the
 * mutable Event reference may be corrupted in place.
 *
 * @p attempt counts publish *attempts* on the topic (1-based),
 * including dropped ones, so fault decisions keyed on it are
 * deterministic regardless of earlier drops. Runs under the topic
 * lock: must not re-enter the switchboard.
 */
using PublishHook = std::function<bool(
    const std::string &topic, std::uint64_t attempt, Event &event)>;

using PublishHookHandle = std::shared_ptr<PublishHook>;

/**
 * The switchboard.
 */
class Switchboard
{
    /** Interned per-topic state shared with the typed handles. */
    struct TopicState
    {
        std::string name;
        std::uint32_t index = 0; ///< 1-based interned source id.
        mutable std::mutex mutex;
        EventPtr latest;
        std::uint64_t publish_count = 0;
        std::uint64_t publish_attempts = 0; ///< Includes dropped ones.
        std::type_index type = std::type_index(typeid(void));
        std::vector<std::weak_ptr<SyncReader>> readers;
        std::vector<std::weak_ptr<PublishListener>> listeners;
        std::shared_ptr<TraceSink> sink;
        PublishHookHandle hook;
        std::atomic<std::size_t> listener_exceptions{0};
    };

    using TopicPtr = std::shared_ptr<TopicState>;

  public:
    /**
     * Typed publish handle. Obtain once; put() is map-lookup-free.
     */
    template <typename T> class Writer
    {
      public:
        Writer() = default;

        /** Publish (stamps TraceId + parents, fans out to readers). */
        void
        put(std::shared_ptr<T> event)
        {
            Switchboard::publishToTopic(topic_, std::move(event));
        }

        /** TraceId of the most recent put() on this topic. */
        TraceId
        lastId() const
        {
            std::lock_guard<std::mutex> lock(topic_->mutex);
            if (topic_->publish_count == 0)
                return TraceId{};
            return TraceId{topic_->index, topic_->publish_count};
        }

        explicit operator bool() const { return topic_ != nullptr; }

      private:
        friend class Switchboard;
        explicit Writer(TopicPtr topic) : topic_(std::move(topic)) {}
        TopicPtr topic_;
    };

    /**
     * Typed latest-value handle ("asynchronous read" in §II-B): no
     * queue, no history, just the newest event. latest() performs no
     * map lookup and no dynamic cast — the topic's type was locked
     * when the handle was created.
     */
    template <typename T> class AsyncReader
    {
      public:
        AsyncReader() = default;

        std::shared_ptr<const T>
        latest() const
        {
            EventPtr e;
            {
                std::lock_guard<std::mutex> lock(topic_->mutex);
                e = topic_->latest;
            }
            if (e)
                TraceContext::noteConsumed(e->trace);
            return std::static_pointer_cast<const T>(e);
        }

        explicit operator bool() const { return topic_ != nullptr; }

      private:
        friend class Switchboard;
        explicit AsyncReader(TopicPtr topic) : topic_(std::move(topic)) {}
        TopicPtr topic_;
    };

    /**
     * Typed every-event handle: a bounded queue that sees each value
     * published after creation, in order, plus a latest() peek.
     */
    template <typename T> class Reader
    {
      public:
        Reader() = default;

        /** Pop the oldest unread event; nullptr when drained. */
        std::shared_ptr<const T>
        pop()
        {
            return std::static_pointer_cast<const T>(sync_->pop());
        }

        /** Newest value on the topic (independent of the queue). */
        std::shared_ptr<const T>
        latest() const
        {
            return async_.latest();
        }

        std::size_t pending() const { return sync_->pending(); }
        std::size_t dropped() const { return sync_->dropped(); }

        explicit operator bool() const { return sync_ != nullptr; }

      private:
        friend class Switchboard;
        Reader(TopicPtr topic, std::shared_ptr<SyncReader> sync)
            : async_(std::move(topic)), sync_(std::move(sync))
        {
        }
        AsyncReader<T> async_;
        std::shared_ptr<SyncReader> sync_;
    };

    // ---- typed handle factories (intern once, use forever) ----

    /** Get the typed publish handle for @p topic. */
    template <typename T>
    Writer<T>
    writer(const std::string &topic)
    {
        return Writer<T>(topicFor(topic, typeid(T)));
    }

    /** Get the typed latest-value handle for @p topic. */
    template <typename T>
    AsyncReader<T>
    asyncReader(const std::string &topic)
    {
        return AsyncReader<T>(topicFor(topic, typeid(T)));
    }

    /** Create a typed every-event reader on @p topic. */
    template <typename T>
    Reader<T>
    reader(const std::string &topic, std::size_t capacity = 1024)
    {
        TopicPtr t = topicFor(topic, typeid(T));
        return Reader<T>(t, attachSyncReader(t, capacity));
    }

    // ---- deprecated string-keyed shims ----

    /**
     * Publish an event on a topic (creates the topic on first use).
     * @deprecated Obtain a Writer<T> once and put() through it.
     */
    void publish(const std::string &topic, EventPtr event);

    /**
     * Asynchronous read: latest value, or nullptr if none yet.
     * @deprecated Obtain an AsyncReader<T> once and latest() it.
     */
    EventPtr latest(const std::string &topic) const;

    /** Typed asynchronous read (nullptr if absent or wrong type). */
    template <typename T>
    std::shared_ptr<const T>
    latest(const std::string &topic) const
    {
        return std::dynamic_pointer_cast<const T>(latest(topic));
    }

    /**
     * Create a synchronous reader on a topic.
     * @deprecated Obtain a Reader<T> via reader<T>().
     */
    std::shared_ptr<SyncReader>
    subscribe(const std::string &topic, std::size_t capacity = 1024);

    // ---- introspection / wiring ----

    /** Number of events ever published on a topic. */
    std::size_t publishCount(const std::string &topic) const;

    /** Names of all topics that have been touched. */
    std::vector<std::string> topicNames() const;

    /** Interned 1-based index of a topic (0 if never touched). */
    std::uint32_t topicIndex(const std::string &topic) const;

    /**
     * Attach a trace sink: every subsequent publish (on existing and
     * future topics) is recorded as an EventRecord.
     */
    void setTraceSink(std::shared_ptr<TraceSink> sink);

    /**
     * Attach the publish-boundary hook (fault injection): consulted
     * on every subsequent publish on existing and future topics.
     * nullptr detaches.
     */
    void setPublishHook(PublishHookHandle hook);

    /**
     * Publish attempts ever made on a topic, including ones a hook
     * dropped (publishCount() counts only completed publishes).
     */
    std::uint64_t publishAttempts(const std::string &topic) const;

    /**
     * Total exceptions thrown (and contained) by onPublish listeners
     * across all topics: one throwing listener never skips the rest.
     */
    std::size_t listenerExceptions() const;

    /**
     * Register a wakeup callback on @p topic: invoked after every
     * publish, outside the topic lock (safe to re-enter the
     * switchboard or wake an executor). The listener is dropped as
     * soon as the returned handle dies; executors keep the handle for
     * the lifetime of the subscribed task.
     */
    PublishListenerHandle onPublish(const std::string &topic,
                                    PublishListener listener);

  private:
    /** Intern (or fetch) a topic, locking its payload type. */
    TopicPtr topicFor(const std::string &topic, std::type_index type);

    /** Untyped intern (shims; leaves the type unlocked). */
    TopicPtr topicForUntyped(const std::string &topic);

    static std::shared_ptr<SyncReader> attachSyncReader(const TopicPtr &t,
                                                        std::size_t capacity);

    /** The one publish path: stamp id/parents, fan out, record. */
    static void publishToTopic(const TopicPtr &t, EventPtr event);

    template <typename T>
    static void
    publishToTopic(const TopicPtr &t, std::shared_ptr<T> event)
    {
        publishToTopic(t, std::static_pointer_cast<const Event>(
                              std::shared_ptr<const T>(std::move(event))));
    }

    mutable std::mutex mutex_;
    std::map<std::string, TopicPtr> topics_;
    std::vector<TopicPtr> by_index_;
    std::shared_ptr<TraceSink> sink_;
    PublishHookHandle hook_;
};

/** Convenience: make a shared event of type T. */
template <typename T, typename... Args>
std::shared_ptr<T>
makeEvent(Args &&...args)
{
    return std::make_shared<T>(std::forward<Args>(args)...);
}

} // namespace illixr
