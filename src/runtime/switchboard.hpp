/**
 * @file
 * Switchboard: the event-stream communication framework of §II-B.
 *
 * Topics are named channels carrying immutable events. Writers
 * publish; *asynchronous* readers get the latest value ("ask for the
 * latest"); *synchronous* readers see every value through a bounded
 * per-reader queue. Plugins may only interact through these streams,
 * which is what makes every component independently swappable.
 */

#pragma once

#include "foundation/time.hpp"

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace illixr {

/** Base class of everything published on a topic. */
struct Event
{
    TimePoint time = 0; ///< When the payload was produced/captured.
    virtual ~Event() = default;
};

using EventPtr = std::shared_ptr<const Event>;

/**
 * A synchronous reader: sees every event published after its
 * creation, in order.
 */
class SyncReader
{
  public:
    /** Pop the oldest unread event; nullptr when drained. */
    EventPtr pop();

    /** Events currently queued. */
    std::size_t pending() const;

    /** Number of events dropped due to queue overflow. */
    std::size_t dropped() const { return dropped_; }

  private:
    friend class Switchboard;
    mutable std::mutex mutex_;
    std::deque<EventPtr> queue_;
    std::size_t capacity_ = 1024;
    std::size_t dropped_ = 0;
};

/**
 * The switchboard.
 */
class Switchboard
{
  public:
    /** Publish an event on a topic (creates the topic on first use). */
    void publish(const std::string &topic, EventPtr event);

    /** Asynchronous read: latest value, or nullptr if none yet. */
    EventPtr latest(const std::string &topic) const;

    /** Typed asynchronous read (nullptr if absent or wrong type). */
    template <typename T>
    std::shared_ptr<const T>
    latest(const std::string &topic) const
    {
        return std::dynamic_pointer_cast<const T>(latest(topic));
    }

    /** Create a synchronous reader on a topic. */
    std::shared_ptr<SyncReader> subscribe(const std::string &topic);

    /** Number of events ever published on a topic. */
    std::size_t publishCount(const std::string &topic) const;

    /** Names of all topics that have been touched. */
    std::vector<std::string> topicNames() const;

  private:
    struct Topic
    {
        EventPtr latest;
        std::size_t publish_count = 0;
        std::vector<std::weak_ptr<SyncReader>> readers;
    };

    mutable std::mutex mutex_;
    std::map<std::string, Topic> topics_;
};

/** Convenience: make a shared event of type T. */
template <typename T, typename... Args>
std::shared_ptr<T>
makeEvent(Args &&...args)
{
    return std::make_shared<T>(std::forward<Args>(args)...);
}

} // namespace illixr
