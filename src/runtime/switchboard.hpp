/**
 * @file
 * Switchboard: the event-stream communication framework of §II-B.
 *
 * Topics are named channels carrying immutable events. Writers
 * publish; *asynchronous* readers get the latest value ("ask for the
 * latest"); *synchronous* readers see every value through a bounded
 * per-reader queue. Plugins may only interact through these streams,
 * which is what makes every component independently swappable.
 *
 * ## Typed handles
 *
 * The API is handle-based: a plugin interns a topic once
 * (`writer<T>()`, `reader<T>()`, `asyncReader<T>()`) and then
 * publishes/reads through the handle with no per-access map lookup
 * and no dynamic_pointer_cast — the topic's payload type is locked at
 * handle creation. The historical string-keyed `publish`/`latest`/
 * `subscribe` shims have been removed; `onPublish()` is the one
 * remaining string-keyed entry point (it observes a topic without
 * locking its type).
 *
 * ## Zero-copy data plane (DESIGN.md §7)
 *
 * Publishers serialize per topic (one short mutex), but readers never
 * take any lock:
 *
 *  - `AsyncReader::latest()` reads a *seqlock-protected slot ring*:
 *    the topic's newest event lives in one of kLatestSlots slots
 *    published through a versioned cursor word. Readers pin a slot
 *    (one atomic increment), validate its version, copy the
 *    shared_ptr, and unpin; a publisher never waits on readers — it
 *    claims the next unpinned slot, so a stalled reader can hold at
 *    most one stale slot, never the topic.
 *
 *  - Each `SyncReader` is a fixed-capacity power-of-two ring with
 *    per-cell sequence validation (single producer — the serialized
 *    publisher — and its consumer; the producer additionally acts as
 *    consumer when evicting). Overflow evicts the *oldest* queued
 *    event, exactly like the historical deque, and every eviction is
 *    counted in `dropped()` and the `sb.reader.dropped` metric.
 *
 *  - Events come from per-topic slab pools (`Writer<T>::make()`), so
 *    steady-state publish→read performs zero heap allocations.
 *
 * ## Lineage
 *
 * On publish every event is stamped with a TraceId (interned topic
 * index + per-topic sequence). If the publishing plugin is running
 * inside an executor invocation (TraceContext), the ids of every
 * event it read this invocation become the new event's parent links,
 * so a displayed frame's full causal chain back to its source camera
 * frame and IMU window is reconstructible from the TraceSink.
 */

#pragma once

#include "foundation/time.hpp"
#include "runtime/event_pool.hpp"
#include "trace/trace.hpp"
#include "trace/trace_id.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <vector>

namespace illixr {

class MetricsRegistry;
class Counter;

/** Base class of everything published on a topic. */
struct Event
{
    TimePoint time = 0; ///< When the payload was produced/captured.

    /** Causal identity; assigned by the switchboard on publish. */
    TraceId trace;

    /**
     * Events this one was derived from. Left empty, the switchboard
     * fills it from the running invocation's consumed set; a plugin
     * may also set it explicitly (e.g., for results released long
     * after the invocation that consumed the inputs).
     */
    std::vector<TraceId> parents;

    virtual ~Event() = default;
};

using EventPtr = std::shared_ptr<const Event>;

/**
 * The seqlock-protected latest-value slots of one topic. Writers are
 * already serialized (topic publish lock); readers are lock-free and
 * never block the writer. See DESIGN.md §7 for the protocol proof
 * sketch.
 */
class LatestSlots
{
  public:
    /** Publisher side; must be called under the topic publish lock.
     *  Takes the event by value so the caller's last use can move. */
    void store(EventPtr event, std::uint64_t publish_count);

    /** Reader side: lock-free snapshot of the newest value. */
    EventPtr load() const;

    /** Reader validation retries (contention signal). */
    std::uint64_t
    retries() const
    {
        return retries_.load(std::memory_order_relaxed);
    }

    /** Publishes that found every slot pinned (pathological). */
    std::uint64_t
    fallbacks() const
    {
        return fallbacks_.load(std::memory_order_relaxed);
    }

  private:
    /** 8 slots ride out 7 concurrently stalled readers per topic. */
    static constexpr std::size_t kSlots = 8;
    static constexpr std::uint64_t kIndexBits = 4;
    static constexpr std::uint64_t kIndexMask = (1u << kIndexBits) - 1;
    static constexpr std::uint64_t kFallbackIndex = kSlots;

    /** High bit of pins: the writer's exclusive claim. */
    static constexpr std::uint32_t kWriterBit = 0x80000000u;

    struct Slot
    {
        /**
         * Reader pin count, with kWriterBit doubling as the writer's
         * claim. Every crossing access is an RMW on this one word, so
         * plain acquire/release coherence already totally orders the
         * claim against every pin — no cross-variable fencing needed.
         */
        mutable std::atomic<std::uint32_t> pins{0};
        /** Guarded by the pins protocol. */
        EventPtr value;
    };

    /** (publish_count << kIndexBits) | slot_index; 0 = never stored. */
    std::atomic<std::uint64_t> cursor_{0};
    Slot slots_[kSlots];

    /** Cold path: taken only when all kSlots are pinned at once. */
    mutable std::mutex fallback_mutex_;
    EventPtr fallback_;

    mutable std::atomic<std::uint64_t> retries_{0};
    std::atomic<std::uint64_t> fallbacks_{0};
};

/**
 * A synchronous reader: sees every event published after its
 * creation, in order, through a fixed-capacity ring.
 *
 * The ring holds exactly `capacity` events (requested capacities are
 * rounded up to a power of two). When a publish finds it full, the
 * *oldest* queued event is evicted and counted in dropped() — the
 * survivors are always the newest `capacity` events. pop()/popAll()
 * are lock-free against the publisher; use one popping thread per
 * reader (one reader handle per plugin, the repo-wide convention).
 */
class SyncReader
{
  public:
    /** Pop the oldest unread event; nullptr when drained. */
    EventPtr pop();

    /**
     * Batch drain: append every currently queued event, in order, to
     * @p out. Returns the number drained. One loop acquire per event,
     * no per-event wakeup churn.
     */
    std::size_t popAll(std::vector<EventPtr> &out);

    /** Events currently queued. */
    std::size_t pending() const;

    /**
     * Number of events evicted due to ring overflow. Eviction always
     * removes the *oldest* queued event (newest events survive).
     */
    std::size_t dropped() const;

    /** Power-of-two ring capacity actually in effect. */
    std::size_t capacity() const { return mask_ + 1; }

  private:
    friend class Switchboard;

    struct Cell
    {
        std::atomic<std::uint64_t> seq{0};
        EventPtr value;
    };

    void init(std::size_t capacity);

    /**
     * Producer side (serialized by the topic publish lock). Returns
     * the number of evictions performed (0 or 1).
     */
    std::size_t push(const EventPtr &event);

    /** Shared dequeue step for pop()/popAll()/producer eviction. */
    bool popCell(EventPtr &out);

    std::vector<Cell> cells_;
    std::size_t mask_ = 0;
    std::atomic<std::uint64_t> head_{0}; ///< Consumer cursor.
    std::atomic<std::uint64_t> tail_{0}; ///< Producer cursor.
    std::atomic<std::uint64_t> dropped_{0};
};

/** Callback fired after a publish completes on a topic. */
using PublishListener = std::function<void(const std::string &topic)>;

/**
 * Owning token of a publish listener: the listener stays registered
 * for as long as the handle is alive (topics keep only weak refs).
 */
using PublishListenerHandle = std::shared_ptr<PublishListener>;

/**
 * Hook consulted on every publish, before the event is stamped and
 * fanned out. Return false to drop the publish (no TraceId, no
 * readers, no listeners — recorded as an injected-drop skip); the
 * mutable Event reference may be corrupted in place.
 *
 * @p attempt counts publish *attempts* on the topic (1-based),
 * including dropped ones, so fault decisions keyed on it are
 * deterministic regardless of earlier drops. Runs under the topic
 * lock: must not re-enter the switchboard.
 */
using PublishHook = std::function<bool(
    const std::string &topic, std::uint64_t attempt, Event &event)>;

using PublishHookHandle = std::shared_ptr<PublishHook>;

/**
 * The switchboard.
 */
class Switchboard
{
    /** Interned per-topic state shared with the typed handles. */
    struct TopicState
    {
        std::string name;
        std::uint32_t index = 0; ///< 1-based interned source id.
        /** Serializes publishers and topic wiring; readers never
         *  take it on the data path. */
        mutable std::mutex mutex;
        LatestSlots latest;
        std::uint64_t publish_count = 0;
        std::uint64_t publish_attempts = 0; ///< Includes dropped ones.
        std::type_index type = std::type_index(typeid(void));
        /** Raw fan-out list: the shared_ptr handed to Reader<T> owns
         *  the SyncReader through a deleter that detaches the raw
         *  pointer under this topic's mutex before deleting, so
         *  publish iterates without per-reader weak_ptr locking and
         *  never sees a dangling entry. */
        std::vector<SyncReader *> readers;
        std::vector<std::weak_ptr<PublishListener>> listeners;
        std::shared_ptr<TraceSink> sink;
        PublishHookHandle hook;
        std::atomic<std::size_t> listener_exceptions{0};

        /** Slab pool shared by this topic's Writer<T>::make() calls.
         *  Created lazily on the first make(); pool_chunk/metrics are
         *  copied here so the creation site needs only the topic. */
        std::shared_ptr<EventPoolArena> pool;
        std::size_t pool_chunk = 64;
        MetricsRegistry *metrics = nullptr;

        /** Cached metric handles (null until a registry attaches). */
        Counter *m_publishes = nullptr;
        Counter *m_drops = nullptr;
        Counter *m_reader_dropped = nullptr; ///< Global sb.reader.dropped.
    };

    using TopicPtr = std::shared_ptr<TopicState>;

  public:
    /**
     * Typed publish handle. Obtain once; put() is map-lookup-free.
     */
    template <typename T> class Writer
    {
      public:
        Writer() = default;

        /** Publish (stamps TraceId + parents, fans out to readers). */
        void
        put(std::shared_ptr<T> event)
        {
            Switchboard::publishToTopic(topic_, std::move(event));
        }

        /**
         * Allocate an event from the topic's slab pool: after warmup
         * a freelist pop, zero heap allocations. The event recycles
         * into the pool when its last reader drops it.
         */
        template <typename... Args>
        std::shared_ptr<T>
        make(Args &&...args)
        {
            if (!pool_)
                pool_ = Switchboard::poolForTopic(topic_);
            return std::allocate_shared<T>(
                PoolAllocator<T>(pool_.get()), std::forward<Args>(args)...);
        }

        /** TraceId of the most recent put() on this topic. */
        TraceId
        lastId() const
        {
            std::lock_guard<std::mutex> lock(topic_->mutex);
            if (topic_->publish_count == 0)
                return TraceId{};
            return TraceId{topic_->index, topic_->publish_count};
        }

        explicit operator bool() const { return topic_ != nullptr; }

      private:
        friend class Switchboard;
        explicit Writer(TopicPtr topic) : topic_(std::move(topic)) {}
        TopicPtr topic_;
        std::shared_ptr<EventPoolArena> pool_;
    };

    /**
     * Typed latest-value handle ("asynchronous read" in §II-B): no
     * queue, no history, just the newest event. latest() is lock-free
     * (seqlock slot read) and never blocks or is blocked by a
     * publisher.
     */
    template <typename T> class AsyncReader
    {
      public:
        AsyncReader() = default;

        std::shared_ptr<const T>
        latest() const
        {
            EventPtr e = topic_->latest.load();
            if (e)
                TraceContext::noteConsumed(e->trace);
            return std::static_pointer_cast<const T>(e);
        }

        explicit operator bool() const { return topic_ != nullptr; }

      private:
        friend class Switchboard;
        explicit AsyncReader(TopicPtr topic) : topic_(std::move(topic)) {}
        TopicPtr topic_;
    };

    /**
     * Typed every-event handle: a bounded ring that sees each value
     * published after creation, in order, plus a latest() peek.
     */
    template <typename T> class Reader
    {
      public:
        Reader() = default;

        /** Pop the oldest unread event; nullptr when drained. */
        std::shared_ptr<const T>
        pop()
        {
            return std::static_pointer_cast<const T>(sync_->pop());
        }

        /** Batch drain of everything queued, in order. Allocation-free
         *  once @p out has warmed up its capacity. */
        std::size_t
        popAll(std::vector<std::shared_ptr<const T>> &out)
        {
            std::size_t n = 0;
            while (EventPtr e = sync_->pop()) {
                out.push_back(
                    std::static_pointer_cast<const T>(std::move(e)));
                ++n;
            }
            return n;
        }

        /** Newest value on the topic (independent of the queue). */
        std::shared_ptr<const T>
        latest() const
        {
            return async_.latest();
        }

        std::size_t pending() const { return sync_->pending(); }
        std::size_t dropped() const { return sync_->dropped(); }

        explicit operator bool() const { return sync_ != nullptr; }

      private:
        friend class Switchboard;
        Reader(TopicPtr topic, std::shared_ptr<SyncReader> sync)
            : async_(std::move(topic)), sync_(std::move(sync))
        {
        }
        AsyncReader<T> async_;
        std::shared_ptr<SyncReader> sync_;
    };

    // ---- typed handle factories (intern once, use forever) ----

    /** Get the typed publish handle for @p topic. */
    template <typename T>
    Writer<T>
    writer(const std::string &topic)
    {
        return Writer<T>(topicFor(topic, typeid(T)));
    }

    /** Get the typed latest-value handle for @p topic. */
    template <typename T>
    AsyncReader<T>
    asyncReader(const std::string &topic)
    {
        return AsyncReader<T>(topicFor(topic, typeid(T)));
    }

    /**
     * Create a typed every-event reader on @p topic. @p capacity 0
     * uses the switchboard default (1024 unless reconfigured); other
     * values round up to a power of two.
     */
    template <typename T>
    Reader<T>
    reader(const std::string &topic, std::size_t capacity = 0)
    {
        TopicPtr t = topicFor(topic, typeid(T));
        return Reader<T>(t, attachSyncReader(t, effectiveCapacity(capacity)));
    }

    // ---- introspection / wiring ----

    /** Number of events ever published on a topic. */
    std::size_t publishCount(const std::string &topic) const;

    /** Names of all topics that have been touched. */
    std::vector<std::string> topicNames() const;

    /** Interned 1-based index of a topic (0 if never touched). */
    std::uint32_t topicIndex(const std::string &topic) const;

    /**
     * Attach a trace sink: every subsequent publish (on existing and
     * future topics) is recorded as an EventRecord.
     */
    void setTraceSink(std::shared_ptr<TraceSink> sink);

    /**
     * Attach a metrics registry: per-topic `sb.topic.<name>.*`
     * counters, pool `sb.pool.<name>.*` counters, and the global
     * `sb.reader.dropped` counter land there. null detaches (handles
     * are re-resolved, so per-run registries never dangle).
     */
    void setMetrics(MetricsRegistry *metrics);

    /**
     * Mirror accumulated transport gauges (`sb.topic.<name>.latest_*`
     * seqlock contention, `sb.pool.<name>.live`/`.hit_rate`) into the
     * attached registry. Counters update live; gauges are sampled
     * here because the reader fast path must stay store-free. Each
     * session calls this before handing off its registry; harmless
     * without one.
     */
    void flushMetrics();

    /**
     * Attach the publish-boundary hook (fault injection): consulted
     * on every subsequent publish on existing and future topics.
     * nullptr detaches.
     */
    void setPublishHook(PublishHookHandle hook);

    /**
     * Default SyncReader ring capacity used when reader()/subscribe()
     * are called with capacity 0 (initially 1024; rounded up to a
     * power of two). `ILLIXR_SB_RING_CAP` reaches here through
     * IntegratedConfig.
     */
    void setDefaultRingCapacity(std::size_t capacity);

    /**
     * Events per initial slab-pool chunk for topics whose pool is
     * created after this call (initially 64). `ILLIXR_SB_POOL_CHUNK`
     * reaches here through IntegratedConfig.
     */
    void setPoolChunkEvents(std::size_t events);

    /** Aggregate pool statistics of one topic (zeros if no pool). */
    struct PoolStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t live = 0;
        double hit_rate = 0.0;
    };
    PoolStats poolStats(const std::string &topic) const;

    /** Seqlock reader retries across all topics (contention). */
    std::uint64_t latestRetries() const;

    /**
     * Publish attempts ever made on a topic, including ones a hook
     * dropped (publishCount() counts only completed publishes).
     */
    std::uint64_t publishAttempts(const std::string &topic) const;

    /**
     * Total exceptions thrown (and contained) by onPublish listeners
     * across all topics: one throwing listener never skips the rest.
     */
    std::size_t listenerExceptions() const;

    /**
     * Register a wakeup callback on @p topic: invoked after every
     * publish, outside the topic lock (safe to re-enter the
     * switchboard or wake an executor). The listener is dropped as
     * soon as the returned handle dies; executors keep the handle for
     * the lifetime of the subscribed task.
     */
    PublishListenerHandle onPublish(const std::string &topic,
                                    PublishListener listener);

  private:
    /** Intern (or fetch) a topic, locking its payload type. */
    TopicPtr topicFor(const std::string &topic, std::type_index type);

    /** Untyped intern (onPublish; leaves the type unlocked). */
    TopicPtr topicForUntyped(const std::string &topic);

    static std::shared_ptr<SyncReader> attachSyncReader(const TopicPtr &t,
                                                        std::size_t capacity);

    /** The one publish path: stamp id/parents, fan out, record. */
    static void publishToTopic(const TopicPtr &t, EventPtr event);

    template <typename T>
    static void
    publishToTopic(const TopicPtr &t, std::shared_ptr<T> event)
    {
        publishToTopic(t, std::static_pointer_cast<const Event>(
                              std::shared_ptr<const T>(std::move(event))));
    }

    /** Lazily create (or fetch) the topic's slab-pool arena. */
    static std::shared_ptr<EventPoolArena> poolForTopic(const TopicPtr &t);

    std::size_t effectiveCapacity(std::size_t requested) const;

    /** Resolve per-topic counters from the attached registry. */
    void wireTopicMetricsLocked(TopicState &t) const;

    mutable std::mutex mutex_;
    std::map<std::string, TopicPtr> topics_;
    std::vector<TopicPtr> by_index_;
    std::shared_ptr<TraceSink> sink_;
    PublishHookHandle hook_;
    MetricsRegistry *metrics_ = nullptr;
    std::size_t default_ring_capacity_ = 1024;
    std::size_t pool_chunk_events_ = 64;
};

/** Convenience: make a shared event of type T (heap-allocated; hot
 *  paths should prefer Writer<T>::make() for pooled events). */
template <typename T, typename... Args>
std::shared_ptr<T>
makeEvent(Args &&...args)
{
    return std::make_shared<T>(std::forward<Args>(args)...);
}

} // namespace illixr
