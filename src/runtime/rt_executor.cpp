#include "runtime/rt_executor.hpp"

#include "foundation/profile.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace illixr {

RtExecutor::~RtExecutor()
{
    stop();
}

void
RtExecutor::addPlugin(Plugin *plugin)
{
    auto entry = std::make_unique<Entry>();
    entry->plugin = plugin;
    entry->stats.name = plugin->name();
    entry->stats.unit = plugin->execUnit();
    entry->stats.period = plugin->period();
    entry->metrics = internMetrics(entry->stats.name);
    notePlugin(plugin);
    entries_.push_back(std::move(entry));
}

void
RtExecutor::run(Duration duration)
{
    start();
    interruptibleSleep(duration); // Eviction cuts the wall run short.
    stop();
}

void
RtExecutor::start()
{
    if (running_.exchange(true))
        return;
    startPlugins();
    for (auto &entry : entries_)
        threads_.emplace_back([this, &entry] { threadMain(*entry); });
}

void
RtExecutor::stop()
{
    // Raise the flag under stopMutex_ so a thread between its running
    // check and its wait cannot miss the broadcast; drop the lock
    // before joining (joining while holding the mutex the threads
    // need to observe the flag would deadlock against parked threads).
    {
        std::lock_guard<std::mutex> lock(stopMutex_);
        if (!running_.exchange(false))
            return;
    }
    stopCv_.notify_all();
    for (std::thread &t : threads_) {
        if (t.joinable())
            t.join();
    }
    threads_.clear();
    stopPlugins();
}

std::size_t
RtExecutor::iterations(const std::string &name) const
{
    for (const auto &entry : entries_) {
        if (entry->plugin->name() == name)
            return entry->iterations.load();
    }
    return 0;
}

const TaskStats &
RtExecutor::stats(const std::string &name) const
{
    for (const auto &entry : entries_) {
        if (entry->stats.name == name) {
            std::lock_guard<std::mutex> lock(entry->mutex);
            return entry->stats;
        }
    }
    throw std::out_of_range("no such task: " + name);
}

std::vector<std::string>
RtExecutor::taskNames() const
{
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto &entry : entries_)
        names.push_back(entry->stats.name);
    return names;
}

void
RtExecutor::threadMain(Entry &entry)
{
    using Clock = std::chrono::steady_clock;
    const auto epoch = Clock::now();
    const auto period =
        std::chrono::nanoseconds(entry.plugin->period());
    auto next = epoch;

    auto wallNs = [&epoch](Clock::time_point t) {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(t -
                                                                    epoch)
            .count();
    };

    while (running_.load()) {
        const auto now = Clock::now();
        const TimePoint vnow = wallNs(now);

        const std::uint64_t span_id = sink_ ? sink_->nextSpanId() : 0;
        std::uint64_t attempt;
        {
            std::lock_guard<std::mutex> lock(entry.mutex);
            attempt = ++entry.stats.attempts;
        }
        const InvocationOutcome out =
            invokeGuarded(*entry.plugin, attempt, vnow, span_id);

        if (out.suppressed) {
            {
                std::lock_guard<std::mutex> lock(entry.mutex);
                ++entry.stats.suppressed;
            }
            if (sink_)
                sink_->recordSkip(entry.stats.name, vnow,
                                  SkipCause::Suppressed);
        } else {
            // A stall fault hangs the thread (bounded) before the
            // invocation is accounted, so the occupancy shows up in
            // the span like a real hang would.
            if (out.extra > 0)
                std::this_thread::sleep_for(std::chrono::nanoseconds(
                    std::min<Duration>(out.extra, 100 * kMillisecond)));

            const TimePoint done = wallNs(Clock::now());
            entry.iterations.fetch_add(1);

            {
                std::lock_guard<std::mutex> lock(entry.mutex);
                InvocationRecord rec;
                rec.arrival = vnow;
                rec.start = vnow; // Dedicated thread: runs on arrival.
                rec.virtual_duration = done - vnow;
                rec.completion = done;
                rec.host_seconds = out.host_seconds;
                entry.stats.records.push_back(rec);
                entry.stats.exec_ms.add(toMilliseconds(done - vnow));
                entry.stats.busy += done - vnow;
                ++entry.stats.invocations;
                if (out.exception)
                    ++entry.stats.exceptions;
            }
            if (out.exception && entry.metrics.exceptions)
                entry.metrics.exceptions->add();
            if (entry.metrics.invocations)
                entry.metrics.invocations->add();
            if (entry.metrics.exec_ms)
                entry.metrics.exec_ms->observe(toMilliseconds(done - vnow));
            if (sink_) {
                Span span;
                span.task = entry.stats.name;
                span.unit = entry.plugin->execUnit();
                span.arrival = vnow;
                span.start = vnow;
                span.completion = done;
                span.host_seconds = out.host_seconds;
                span.id = span_id;
                sink_->recordSpan(std::move(span));
            }
        }

        next += period;
        if (next < Clock::now()) {
            // Overran: realign instead of bursting (skip semantics).
            {
                std::lock_guard<std::mutex> lock(entry.mutex);
                ++entry.stats.skips;
            }
            if (entry.metrics.skips)
                entry.metrics.skips->add();
            if (sink_)
                sink_->recordSkip(entry.stats.name, wallNs(Clock::now()),
                                  SkipCause::Overrun);
            next = Clock::now() + period;
        }
        // Park until the next release — or until stop() broadcasts,
        // so shutdown latency is bounded by a wakeup, not a period.
        std::unique_lock<std::mutex> lock(stopMutex_);
        stopCv_.wait_until(lock, next,
                           [this] { return !running_.load(); });
    }
}

} // namespace illixr
