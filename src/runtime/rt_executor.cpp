#include "runtime/rt_executor.hpp"

#include <chrono>

namespace illixr {

RtExecutor::~RtExecutor()
{
    stop();
}

void
RtExecutor::addPlugin(Plugin *plugin)
{
    auto entry = std::make_unique<Entry>();
    entry->plugin = plugin;
    entries_.push_back(std::move(entry));
}

void
RtExecutor::start()
{
    if (running_.exchange(true))
        return;
    for (auto &entry : entries_)
        threads_.emplace_back([this, &entry] { threadMain(*entry); });
}

void
RtExecutor::stop()
{
    if (!running_.exchange(false))
        return;
    for (std::thread &t : threads_) {
        if (t.joinable())
            t.join();
    }
    threads_.clear();
}

std::size_t
RtExecutor::iterations(const std::string &name) const
{
    for (const auto &entry : entries_) {
        if (entry->plugin->name() == name)
            return entry->iterations.load();
    }
    return 0;
}

void
RtExecutor::threadMain(Entry &entry)
{
    using Clock = std::chrono::steady_clock;
    const auto epoch = Clock::now();
    const auto period =
        std::chrono::nanoseconds(entry.plugin->period());
    auto next = epoch;

    while (running_.load()) {
        const auto now = Clock::now();
        const TimePoint vnow =
            std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                                 epoch)
                .count();
        entry.plugin->iterate(vnow);
        entry.iterations.fetch_add(1);
        next += period;
        if (next < Clock::now()) {
            // Overran: realign instead of bursting (skip semantics).
            next = Clock::now() + period;
        }
        std::this_thread::sleep_until(next);
    }
}

} // namespace illixr
