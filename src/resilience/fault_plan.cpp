#include "resilience/fault_plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace illixr {

namespace {

/** splitmix64 finalizer: the avalanche step that turns a structured
 *  coordinate into an unbiased draw. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
hashName(const std::string &name)
{
    // FNV-1a; stable across platforms (std::hash is not guaranteed).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseRate(const std::string &s, double &out)
{
    double v = 0.0;
    if (!parseDouble(s, v) || v < 0.0 || v > 1.0)
        return false;
    out = v;
    return true;
}

std::vector<std::string>
splitList(const std::string &s, char sep)
{
    std::vector<std::string> parts;
    std::string part;
    std::istringstream in(s);
    while (std::getline(in, part, sep)) {
        if (!part.empty())
            parts.push_back(part);
    }
    return parts;
}

bool
contains(const std::vector<std::string> &names, const std::string &name)
{
    return std::find(names.begin(), names.end(), name) != names.end();
}

} // namespace

bool
FaultPlan::active() const
{
    return crash_rate > 0.0 || stall_rate > 0.0 || spike_rate > 0.0 ||
           drop_rate > 0.0 || corrupt_rate > 0.0 || !brownouts.empty();
}

bool
FaultPlan::appliesToTask(const std::string &task) const
{
    return tasks.empty() || contains(tasks, task);
}

bool
FaultPlan::appliesToTopic(const std::string &topic) const
{
    return contains(topics, topic);
}

const BrownoutWindow *
FaultPlan::brownoutAt(TimePoint now) const
{
    for (const BrownoutWindow &w : brownouts) {
        if (now >= w.start && now < w.start + w.length)
            return &w;
    }
    return nullptr;
}

bool
parseFaultPlan(const std::string &spec, FaultPlan &out)
{
    FaultPlan plan;
    for (const std::string &item : splitList(spec, ',')) {
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        double v = 0.0;
        if (key == "seed") {
            if (!parseDouble(value, v) || v < 0.0)
                return false;
            plan.seed = static_cast<std::uint64_t>(v);
        } else if (key == "crash") {
            if (!parseRate(value, plan.crash_rate))
                return false;
        } else if (key == "stall") {
            if (!parseRate(value, plan.stall_rate))
                return false;
        } else if (key == "stall_ms") {
            if (!parseDouble(value, v) || v < 0.0)
                return false;
            plan.stall = static_cast<Duration>(v * 1e6);
        } else if (key == "spike") {
            if (!parseRate(value, plan.spike_rate))
                return false;
        } else if (key == "spike_scale") {
            if (!parseDouble(value, v) || v < 1.0)
                return false;
            plan.spike_scale = v;
        } else if (key == "drop") {
            if (!parseRate(value, plan.drop_rate))
                return false;
        } else if (key == "corrupt") {
            if (!parseRate(value, plan.corrupt_rate))
                return false;
        } else if (key == "tasks") {
            plan.tasks = splitList(value, '|');
        } else if (key == "topics") {
            plan.topics = splitList(value, '|');
        } else if (key == "brownout") {
            // start_ms:length_ms:loss:latency_ms
            const std::vector<std::string> f = splitList(value, ':');
            if (f.size() != 4)
                return false;
            double start_ms = 0, length_ms = 0, loss = 0, lat_ms = 0;
            if (!parseDouble(f[0], start_ms) || start_ms < 0.0 ||
                !parseDouble(f[1], length_ms) || length_ms <= 0.0 ||
                !parseRate(f[2], loss) ||
                !parseDouble(f[3], lat_ms) || lat_ms < 0.0)
                return false;
            BrownoutWindow w;
            w.start = static_cast<TimePoint>(start_ms * 1e6);
            w.length = static_cast<Duration>(length_ms * 1e6);
            w.extra_loss = loss;
            w.extra_latency_ms = lat_ms;
            plan.brownouts.push_back(w);
        } else {
            return false;
        }
    }
    out = std::move(plan);
    return true;
}

std::string
faultPlanSummary(const FaultPlan &plan)
{
    std::ostringstream out;
    out << "seed=" << plan.seed;
    if (plan.crash_rate > 0.0)
        out << " crash=" << plan.crash_rate;
    if (plan.stall_rate > 0.0)
        out << " stall=" << plan.stall_rate << "@"
            << toMilliseconds(plan.stall) << "ms";
    if (plan.spike_rate > 0.0)
        out << " spike=" << plan.spike_rate << "x" << plan.spike_scale;
    if (plan.drop_rate > 0.0)
        out << " drop=" << plan.drop_rate;
    if (plan.corrupt_rate > 0.0)
        out << " corrupt=" << plan.corrupt_rate;
    for (const BrownoutWindow &w : plan.brownouts)
        out << " brownout=" << (w.start / 1000000) << "+"
            << (w.length / 1000000) << "ms(loss=" << w.extra_loss
            << ",+" << w.extra_latency_ms << "ms)";
    if (!plan.active())
        out << " (inactive)";
    return out.str();
}

double
faultDraw(std::uint64_t seed, std::uint32_t kind,
          const std::string &name, std::uint64_t index)
{
    std::uint64_t x = mix64(seed ^ (0xa0761d6478bd642fULL +
                                    static_cast<std::uint64_t>(kind)));
    x = mix64(x ^ hashName(name));
    x = mix64(x ^ index);
    // 53 high bits -> uniform double in [0, 1).
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

} // namespace illixr
