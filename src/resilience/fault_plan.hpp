/**
 * @file
 * FaultPlan: the seeded, declarative description of every fault a run
 * will experience. A plan is data, not code — the same plan string
 * and seed always produce the same faults at the same (task, attempt)
 * and (topic, publish) coordinates, which is what makes chaos runs
 * replayable byte-for-byte under the deterministic executor
 * (DESIGN.md §5 determinism contract).
 *
 * Plans are written as comma-separated `key=value` specs, e.g.
 *
 *   crash=0.01,stall=0.02,drop=0.05,brownout=1000:500:1.0:80,seed=7
 *
 * See parseFaultPlan() for the full key reference (README has the
 * user-facing version).
 */

#pragma once

#include "foundation/time.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace illixr {

/** One offload-link brownout window on the run's timeline. */
struct BrownoutWindow
{
    TimePoint start = 0;   ///< Window start (timeline ns).
    Duration length = 0;   ///< Window length (ns).
    double extra_loss = 1.0;      ///< Added to NetworkLink.loss_rate.
    double extra_latency_ms = 0.0; ///< Added to the base latency.
};

/**
 * The declarative fault plan. Rates are per-boundary probabilities
 * in [0, 1]: crash/stall/spike apply per invocation attempt,
 * drop/corrupt per publish attempt.
 */
struct FaultPlan
{
    std::uint64_t seed = 1;

    // ---- invocation-boundary faults ----
    double crash_rate = 0.0; ///< Injected exception inside iterate().
    double stall_rate = 0.0; ///< Invocation hangs for `stall`.
    Duration stall = 20 * kMillisecond;
    double spike_rate = 0.0; ///< Invocation cost multiplied by scale.
    double spike_scale = 4.0;

    /** Tasks the invocation faults apply to (empty = all). */
    std::vector<std::string> tasks;

    // ---- publish-boundary faults ----
    double drop_rate = 0.0;    ///< Event silently dropped.
    double corrupt_rate = 0.0; ///< Event payload corrupted in place.

    /** Topics the publish faults apply to (empty = none — sensor
     *  topics are opted in explicitly by the wiring). */
    std::vector<std::string> topics;

    // ---- offload-link brownouts ----
    std::vector<BrownoutWindow> brownouts;

    /** True if any fault can ever fire under this plan. */
    bool active() const;

    /** True if invocation faults apply to @p task. */
    bool appliesToTask(const std::string &task) const;

    /** True if publish faults apply to @p topic. */
    bool appliesToTopic(const std::string &topic) const;

    /** The brownout window covering @p now, or nullptr. */
    const BrownoutWindow *brownoutAt(TimePoint now) const;
};

/**
 * Parse a `key=value,key=value` plan spec. Keys: `seed`, `crash`,
 * `stall`, `stall_ms`, `spike`, `spike_scale`, `drop`, `corrupt`,
 * `tasks` / `topics` (pipe-separated name lists), and repeatable
 * `brownout=start_ms:length_ms:loss:latency_ms`. Unknown keys or
 * malformed values fail the parse; @p out is only written on success.
 * An empty spec parses to an inactive plan.
 */
bool parseFaultPlan(const std::string &spec, FaultPlan &out);

/** One-line human-readable summary ("crash=0.01 drop=0.05 ..."). */
std::string faultPlanSummary(const FaultPlan &plan);

/**
 * The deterministic per-coordinate uniform draw in [0, 1) every fault
 * decision is made from: a pure function of (seed, kind, name,
 * index), independent of wall time, thread, and call order.
 */
double faultDraw(std::uint64_t seed, std::uint32_t kind,
                 const std::string &name, std::uint64_t index);

} // namespace illixr
