/**
 * @file
 * DegradationManager: the QoE-aware graceful-degradation policy loop.
 *
 * It runs as an ordinary periodic plugin ("resilience_governor"), so
 * its decisions get spans, lineage, and scheduling like every other
 * component. Each tick it reads the executors' interned per-task
 * counters (`task.<t>.invocations` / `.skips`) out of the
 * MetricsRegistry, computes the worst deadline-miss ratio across the
 * watched tasks over the window, and moves a degradation level
 * 0..max_level with hysteresis:
 *
 *  - pressure above `shed_threshold` for `rise_hold` consecutive
 *    ticks escalates one level;
 *  - pressure below `clear_threshold` for `recover_hold` ticks
 *    recovers one level.
 *
 * Levels map onto the paper's load-shedding knobs (§V-C): camera
 * frame decimation, reprojection stride, audio block coalescing —
 * published as one DegradationCommandEvent on
 * `resilience.degradation`, which the knob consumers (camera,
 * timewarp, audio encoder) read asynchronously. Exported gauges:
 * `resilience.degradation_level`, `resilience.pressure`.
 */

#pragma once

#include "resilience/health_events.hpp"
#include "runtime/plugin.hpp"
#include "trace/metrics_registry.hpp"

#include <map>
#include <string>
#include <vector>

namespace illixr {

struct DegradationPolicy
{
    Duration period = 100 * kMillisecond; ///< Policy tick.

    double shed_threshold = 0.15;  ///< Miss ratio that escalates.
    double clear_threshold = 0.03; ///< Miss ratio that recovers.
    int rise_hold = 2;    ///< Ticks above threshold to escalate.
    int recover_hold = 5; ///< Ticks below threshold to recover.
    int max_level = 3;

    /** Tasks whose miss ratio constitutes "pressure". */
    std::vector<std::string> watched = {"timewarp", "vio",
                                        "application"};
};

class DegradationPlugin final : public Plugin
{
  public:
    DegradationPlugin(Switchboard &switchboard, MetricsRegistry *metrics,
                      DegradationPolicy policy = {});

    void iterate(TimePoint now) override;
    Duration period() const override { return policy_.period; }

    int level() const { return level_; }
    int maxLevelReached() const { return max_level_reached_; }

    /** The knob values of a given level (also used by tests). */
    static DegradationCommandEvent commandForLevel(int level);

  private:
    struct Window
    {
        Counter *invocations = nullptr;
        Counter *skips = nullptr;
        std::uint64_t last_invocations = 0;
        std::uint64_t last_skips = 0;
    };

    double samplePressure();
    void publishLevel(TimePoint now);

    DegradationPolicy policy_;
    MetricsRegistry *metrics_ = nullptr;

    Switchboard::Writer<DegradationCommandEvent> commands_;
    std::map<std::string, Window> windows_;

    int level_ = 0;
    int max_level_reached_ = 0;
    int above_ = 0; ///< Consecutive ticks above shed_threshold.
    int below_ = 0; ///< Consecutive ticks below clear_threshold.
    bool published_initial_ = false;

    Gauge *levelGauge_ = nullptr;
    Gauge *pressureGauge_ = nullptr;
    Counter *shedCounter_ = nullptr;
    Counter *recoverCounter_ = nullptr;
};

} // namespace illixr
