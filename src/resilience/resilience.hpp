/**
 * @file
 * ResilienceContext: one object that owns and wires the whole
 * resilience subsystem for a run — the FaultInjector, the Supervisor,
 * and the DegradationManager — so call sites (the integrated system,
 * the offloaded variant, the live demo) enable it with three lines
 * instead of re-plumbing hooks.
 *
 * The context itself is the InvocationInterceptor the executor sees;
 * it chains the pieces in the only order that makes sense:
 *
 *   1. Supervisor::before  — a down plugin is suppressed (or
 *      restarted) before any fault can fire on it;
 *   2. FaultInjector::before — faults apply to live plugins only;
 *   3. (guarded invocation runs)
 *   4. Supervisor::after   — sees real *and* injected exceptions, so
 *      injected crashes exercise the same recovery path real ones do.
 */

#pragma once

#include "resilience/degradation.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/supervisor.hpp"
#include "runtime/executor.hpp"

#include <memory>

namespace illixr {

/** Everything a run needs to decide about resilience, in one bag. */
struct ResilienceConfig
{
    FaultPlan fault_plan;

    bool supervise = false;
    SupervisorPolicy supervisor;

    bool degrade = false;
    DegradationPolicy degradation;

    /** Anything to set up at all? */
    bool
    enabled() const
    {
        return fault_plan.active() || supervise || degrade;
    }
};

class ResilienceContext final : public InvocationInterceptor
{
  public:
    /**
     * Build the enabled pieces. The injector's publish hook is
     * installed on @p switchboard immediately (it is inert for topics
     * outside the plan); the invocation side attaches via attach().
     */
    ResilienceContext(const ResilienceConfig &config,
                      Switchboard &switchboard, MetricsRegistry *metrics);

    /**
     * Attach to an executor: installs this context as the
     * interceptor and hands the executor's phonebook to the
     * Supervisor for restarts. The DegradationPlugin is NOT added
     * here — the caller registers degradationPlugin() like any other
     * plugin, so it lands on the right lane/period.
     */
    void attach(ExecutorBase &executor);

    // ---- InvocationInterceptor (the chained boundary) ----

    PreInvocationAction before(Plugin &plugin, std::uint64_t attempt,
                               TimePoint now) override;

    void after(Plugin &plugin, TimePoint now,
               const InvocationOutcome &outcome) override;

    // ---- the pieces (nullptr when not enabled) ----

    FaultInjector *injector() { return injector_.get(); }
    Supervisor *supervisor() { return supervisor_.get(); }
    DegradationPlugin *degradationPlugin() { return degradation_.get(); }

  private:
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<Supervisor> supervisor_;
    std::unique_ptr<DegradationPlugin> degradation_;
};

} // namespace illixr
