#include "resilience/supervisor.hpp"

#include <algorithm>

namespace illixr {

Supervisor::Supervisor(Switchboard &switchboard, MetricsRegistry *metrics,
                       SupervisorPolicy policy)
    : policy_(policy), metrics_(metrics),
      health_(switchboard.writer<HealthEvent>(topics::kHealth))
{
    if (metrics_) {
        restartCounter_ = &metrics_->counter("resilience.restarts");
        exceptionCounter_ = &metrics_->counter("resilience.exceptions");
        suppressedCounter_ =
            &metrics_->counter("resilience.suppressed");
    }
}

Duration
Supervisor::backoffFor(std::size_t restart_streak) const
{
    double backoff = static_cast<double>(policy_.initial_backoff);
    for (std::size_t i = 1; i < restart_streak; ++i)
        backoff *= policy_.backoff_factor;
    backoff = std::min(backoff, static_cast<double>(policy_.max_backoff));
    return static_cast<Duration>(backoff);
}

PreInvocationAction
Supervisor::before(Plugin &plugin, std::uint64_t attempt, TimePoint now)
{
    (void)attempt;
    PreInvocationAction pre;
    bool restart = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TaskState &state = states_[plugin.name()];
        if (state.down) {
            if (now < state.restart_at) {
                pre.suppress = true;
                if (suppressedCounter_)
                    suppressedCounter_->add();
                return pre;
            }
            // Backoff elapsed: bring the plugin back up. stop() +
            // start() is the whole restart contract — plugins own
            // whatever internal state needs resetting.
            state.down = false;
            state.consecutive_exceptions = 0;
            state.healthy = 0;
            ++restarts_;
            if (restartCounter_)
                restartCounter_->add();
            restart = true;
        }
    }
    if (restart) {
        static const Phonebook empty;
        plugin.stop();
        plugin.start(phonebook_ ? *phonebook_ : empty);
        publish(HealthKind::Restart, plugin.name(),
                "restarted after backoff", now);
    }
    return pre;
}

void
Supervisor::after(Plugin &plugin, TimePoint now,
                  const InvocationOutcome &outcome)
{
    if (outcome.suppressed)
        return;
    const std::string &name = plugin.name();

    bool went_down = false;
    Duration backoff = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TaskState &state = states_[name];
        if (outcome.exception) {
            ++exceptions_;
            if (exceptionCounter_)
                exceptionCounter_->add();
            state.healthy = 0;
            if (++state.consecutive_exceptions >=
                    policy_.exception_threshold &&
                !state.down) {
                state.down = true;
                ++state.restart_streak;
                backoff = backoffFor(state.restart_streak);
                state.restart_at = now + backoff;
                went_down = true;
            }
        } else if (outcome.ran) {
            state.consecutive_exceptions = 0;
            if (++state.healthy >= policy_.healthy_streak)
                state.restart_streak = 0;
        }
    }
    if (outcome.exception)
        publish(HealthKind::Exception, name, outcome.error, now);
    if (went_down)
        publish(HealthKind::Restart, name,
                "down; restart in " +
                    std::to_string(toMilliseconds(backoff)) + " ms",
                now);

    // Deadline-miss watchdog: sustained overrun skips, observed via
    // the executor's interned per-task counters.
    if (policy_.miss_report_threshold > 0 && metrics_) {
        std::uint64_t missed = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            TaskState &state = states_[name];
            if (!state.skips_counter)
                state.skips_counter =
                    &metrics_->counter("task." + name + ".skips");
            const std::uint64_t skips = state.skips_counter->value();
            if (skips - state.last_skips >=
                policy_.miss_report_threshold) {
                missed = skips - state.last_skips;
                state.last_skips = skips;
            }
        }
        if (missed)
            publish(HealthKind::DeadlineMiss, name,
                    std::to_string(missed) + " deadline misses", now);
    }
}

void
Supervisor::publish(HealthKind kind, const std::string &task,
                    std::string detail, TimePoint now)
{
    auto event = health_.make();
    event->time = now;
    event->kind = kind;
    event->task = task;
    event->detail = std::move(detail);
    health_.put(std::move(event));
}

std::uint64_t
Supervisor::restarts() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return restarts_;
}

std::uint64_t
Supervisor::exceptionsSeen() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return exceptions_;
}

bool
Supervisor::isDown(const std::string &task) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = states_.find(task);
    return it != states_.end() && it->second.down;
}

} // namespace illixr
