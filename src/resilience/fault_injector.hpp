/**
 * @file
 * FaultInjector: turns a FaultPlan into decisions at the two runtime
 * boundaries every component passes through — Executor invocations
 * (via InvocationInterceptor) and Switchboard publishes (via
 * PublishHook) — plus the offload-link brownout windows the network
 * model samples.
 *
 * Every decision is a pure function of (plan seed, boundary kind,
 * task/topic name, attempt index) through faultDraw(), never of wall
 * time or thread identity, so the same plan replays the same faults
 * under the deterministic executor, byte for byte.
 *
 * The injector knows nothing about payload types: corrupting an
 * event is delegated to per-topic corrupter callbacks registered by
 * the layer that owns the types (the xr wiring registers camera and
 * IMU corrupters), each handed a deterministically seeded Rng.
 */

#pragma once

#include "resilience/fault_plan.hpp"
#include "foundation/rng.hpp"
#include "runtime/executor.hpp"
#include "runtime/switchboard.hpp"
#include "trace/metrics_registry.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace illixr {

/** Mutates one event in place; drawn values come from @p rng. */
using EventCorrupter = std::function<void(Event &event, Rng &rng)>;

class FaultInjector final : public InvocationInterceptor
{
  public:
    explicit FaultInjector(FaultPlan plan,
                           MetricsRegistry *metrics = nullptr);

    const FaultPlan &plan() const { return plan_; }

    // ---- invocation boundary (InvocationInterceptor) ----

    PreInvocationAction before(Plugin &plugin, std::uint64_t attempt,
                               TimePoint now) override;

    void after(Plugin &plugin, TimePoint now,
               const InvocationOutcome &outcome) override;

    // ---- publish boundary ----

    /**
     * The hook to install via Switchboard::setPublishHook(). Keeps
     * `this` borrowed: the injector must outlive the switchboard's
     * use of the handle.
     */
    PublishHookHandle makePublishHook();

    /** Register the corrupter for @p topic (replaces any previous). */
    void setCorrupter(const std::string &topic, EventCorrupter fn);

    // ---- offload link ----

    /** The brownout window covering @p now, or nullptr. */
    const BrownoutWindow *brownoutAt(TimePoint now) const
    {
        return plan_.brownoutAt(now);
    }

    // ---- accounting ----

    std::uint64_t injectedCrashes() const { return crashes_; }
    std::uint64_t injectedStalls() const { return stalls_; }
    std::uint64_t injectedSpikes() const { return spikes_; }
    std::uint64_t injectedDrops() const { return drops_; }
    std::uint64_t injectedCorruptions() const { return corruptions_; }
    std::uint64_t injectedTotal() const
    {
        return injectedCrashes() + injectedStalls() + injectedSpikes() +
               injectedDrops() + injectedCorruptions();
    }

  private:
    bool onPublish(const std::string &topic, std::uint64_t attempt,
                   Event &event);

    FaultPlan plan_;

    std::mutex mutex_; ///< Guards corrupters_ registration/lookup.
    std::map<std::string, EventCorrupter> corrupters_;

    std::atomic<std::uint64_t> crashes_{0};
    std::atomic<std::uint64_t> stalls_{0};
    std::atomic<std::uint64_t> spikes_{0};
    std::atomic<std::uint64_t> drops_{0};
    std::atomic<std::uint64_t> corruptions_{0};

    Counter *crashCounter_ = nullptr;
    Counter *stallCounter_ = nullptr;
    Counter *spikeCounter_ = nullptr;
    Counter *dropCounter_ = nullptr;
    Counter *corruptCounter_ = nullptr;
};

} // namespace illixr
