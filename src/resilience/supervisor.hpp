/**
 * @file
 * Supervisor: the per-plugin watchdog of the resilience subsystem.
 *
 * Fed by the same invocation boundary the FaultInjector uses, it
 *
 *  - contains and counts plugin exceptions (the executor already
 *    guarantees they cannot unwind a worker; the supervisor decides
 *    what happens next),
 *  - takes a plugin *down* after a threshold of consecutive
 *    exceptions and restarts it (stop() + start()) after an
 *    exponential backoff, capped and reset by a healthy streak,
 *  - watches per-task overrun skips in the MetricsRegistry as a
 *    deadline-miss heartbeat, announcing sustained misses,
 *
 * publishing every decision as a typed HealthEvent on
 * `resilience.health`.
 *
 * Timeline-agnostic: all delays are computed from the executor's
 * `now` (virtual or wall), so backoff schedules replay exactly under
 * the deterministic executor.
 */

#pragma once

#include "resilience/health_events.hpp"
#include "runtime/executor.hpp"
#include "runtime/phonebook.hpp"
#include "trace/metrics_registry.hpp"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace illixr {

struct SupervisorPolicy
{
    /** Consecutive exceptions that take a plugin down. */
    std::size_t exception_threshold = 1;

    /** First restart delay; doubles per consecutive restart. */
    Duration initial_backoff = 50 * kMillisecond;

    double backoff_factor = 2.0;
    Duration max_backoff = 2 * kSecond;

    /** Clean invocations that reset the backoff exponent. */
    std::size_t healthy_streak = 8;

    /** Overrun skips since the last report that announce a sustained
     *  deadline-miss episode (0 disables the watchdog). */
    std::size_t miss_report_threshold = 10;
};

class Supervisor final : public InvocationInterceptor
{
  public:
    Supervisor(Switchboard &switchboard, MetricsRegistry *metrics,
               SupervisorPolicy policy = {});

    /** Phonebook handed to restarted plugins' start(). */
    void setPhonebook(const Phonebook *phonebook)
    {
        phonebook_ = phonebook;
    }

    // ---- InvocationInterceptor ----

    PreInvocationAction before(Plugin &plugin, std::uint64_t attempt,
                               TimePoint now) override;

    void after(Plugin &plugin, TimePoint now,
               const InvocationOutcome &outcome) override;

    // ---- accounting ----

    std::uint64_t restarts() const;
    std::uint64_t exceptionsSeen() const;

    /** Is @p task currently held down awaiting restart? */
    bool isDown(const std::string &task) const;

  private:
    struct TaskState
    {
        bool down = false;
        TimePoint restart_at = 0;
        std::size_t consecutive_exceptions = 0;
        std::size_t healthy = 0;
        std::size_t restart_streak = 0; ///< Drives the backoff exponent.
        std::uint64_t last_skips = 0;   ///< Watchdog counter baseline.
        Counter *skips_counter = nullptr;
    };

    void publish(HealthKind kind, const std::string &task,
                 std::string detail, TimePoint now);

    Duration backoffFor(std::size_t restart_streak) const;

    SupervisorPolicy policy_;
    const Phonebook *phonebook_ = nullptr;
    MetricsRegistry *metrics_ = nullptr;

    Switchboard::Writer<HealthEvent> health_;

    mutable std::mutex mutex_;
    std::map<std::string, TaskState> states_;
    std::uint64_t restarts_ = 0;
    std::uint64_t exceptions_ = 0;

    Counter *restartCounter_ = nullptr;
    Counter *exceptionCounter_ = nullptr;
    Counter *suppressedCounter_ = nullptr;
};

} // namespace illixr
