#include "resilience/degradation.hpp"

#include <algorithm>

namespace illixr {

DegradationPlugin::DegradationPlugin(Switchboard &switchboard,
                                     MetricsRegistry *metrics,
                                     DegradationPolicy policy)
    : Plugin("resilience_governor"), policy_(policy), metrics_(metrics),
      commands_(
          switchboard.writer<DegradationCommandEvent>(topics::kDegradation))
{
    if (metrics_) {
        levelGauge_ = &metrics_->gauge("resilience.degradation_level");
        pressureGauge_ = &metrics_->gauge("resilience.pressure");
        shedCounter_ = &metrics_->counter("resilience.shed_steps");
        recoverCounter_ = &metrics_->counter("resilience.recover_steps");
        for (const std::string &task : policy_.watched) {
            Window w;
            w.invocations =
                &metrics_->counter("task." + task + ".invocations");
            w.skips = &metrics_->counter("task." + task + ".skips");
            windows_[task] = w;
        }
    }
}

DegradationCommandEvent
DegradationPlugin::commandForLevel(int level)
{
    DegradationCommandEvent cmd;
    cmd.level = level;
    // The paper's shedding order: drop camera rate first (perception
    // absorbs it through the IMU), then reprojection rate, then audio
    // batching — cheapest QoE cost first.
    cmd.camera_stride = level >= 1 ? 2 : 1;
    cmd.reprojection_stride = level >= 2 ? 2 : 1;
    cmd.audio_coalesce = level >= 3 ? 2 : 1;
    return cmd;
}

double
DegradationPlugin::samplePressure()
{
    double pressure = 0.0;
    for (auto &[task, w] : windows_) {
        const std::uint64_t inv = w.invocations->value();
        const std::uint64_t skp = w.skips->value();
        const std::uint64_t d_inv = inv - w.last_invocations;
        const std::uint64_t d_skp = skp - w.last_skips;
        w.last_invocations = inv;
        w.last_skips = skp;
        const std::uint64_t total = d_inv + d_skp;
        if (total == 0)
            continue;
        pressure = std::max(pressure, static_cast<double>(d_skp) /
                                          static_cast<double>(total));
    }
    return pressure;
}

void
DegradationPlugin::publishLevel(TimePoint now)
{
    auto cmd =
        std::make_shared<DegradationCommandEvent>(commandForLevel(level_));
    cmd->time = now;
    commands_.put(std::move(cmd));
    if (levelGauge_)
        levelGauge_->set(static_cast<double>(level_));
}

void
DegradationPlugin::iterate(TimePoint now)
{
    if (!metrics_)
        return;
    if (!published_initial_) {
        // Make the knobs' baseline explicit before any pressure is
        // observed, so consumers never run on a stale level.
        published_initial_ = true;
        publishLevel(now);
        return;
    }

    const double pressure = samplePressure();
    if (pressureGauge_)
        pressureGauge_->set(pressure);

    if (pressure >= policy_.shed_threshold) {
        ++above_;
        below_ = 0;
    } else if (pressure <= policy_.clear_threshold) {
        ++below_;
        above_ = 0;
    } else {
        above_ = 0;
        below_ = 0;
    }

    if (above_ >= policy_.rise_hold && level_ < policy_.max_level) {
        ++level_;
        max_level_reached_ = std::max(max_level_reached_, level_);
        above_ = 0;
        if (shedCounter_)
            shedCounter_->add();
        publishLevel(now);
    } else if (below_ >= policy_.recover_hold && level_ > 0) {
        --level_;
        below_ = 0;
        if (recoverCounter_)
            recoverCounter_->add();
        publishLevel(now);
    }
}

} // namespace illixr
