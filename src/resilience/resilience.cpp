#include "resilience/resilience.hpp"

namespace illixr {

ResilienceContext::ResilienceContext(const ResilienceConfig &config,
                                     Switchboard &switchboard,
                                     MetricsRegistry *metrics)
{
    if (config.fault_plan.active()) {
        injector_ =
            std::make_unique<FaultInjector>(config.fault_plan, metrics);
        switchboard.setPublishHook(injector_->makePublishHook());
    }
    if (config.supervise)
        supervisor_ = std::make_unique<Supervisor>(switchboard, metrics,
                                                   config.supervisor);
    if (config.degrade)
        degradation_ = std::make_unique<DegradationPlugin>(
            switchboard, metrics, config.degradation);
}

void
ResilienceContext::attach(ExecutorBase &executor)
{
    executor.setInterceptor(this);
    if (supervisor_)
        supervisor_->setPhonebook(executor.phonebook());
}

PreInvocationAction
ResilienceContext::before(Plugin &plugin, std::uint64_t attempt,
                          TimePoint now)
{
    if (supervisor_) {
        const PreInvocationAction held =
            supervisor_->before(plugin, attempt, now);
        if (held.suppress)
            return held;
    }
    if (injector_)
        return injector_->before(plugin, attempt, now);
    return {};
}

void
ResilienceContext::after(Plugin &plugin, TimePoint now,
                         const InvocationOutcome &outcome)
{
    if (injector_)
        injector_->after(plugin, now, outcome);
    if (supervisor_)
        supervisor_->after(plugin, now, outcome);
}

} // namespace illixr
