/**
 * @file
 * CircuitBreaker: the classic three-state breaker, used to fail the
 * offloaded VIO path over to the local IMU integrator (and back) when
 * the link browns out — the serving-stack pattern the ROADMAP's
 * robustness PR transfers.
 *
 *   Closed    -> requests flow; consecutive failures trip it Open.
 *   Open      -> requests are refused until the current hold elapses.
 *   HalfOpen  -> a limited probe: successes close it, one failure
 *                re-opens it.
 *
 * The first open holds for exactly `open_hold`. Each *consecutive*
 * re-open (a failed half-open probe) doubles the hold — capped at
 * `max_hold` — and stretches it by a deterministic jitter drawn from
 * (jitter_seed, opens): under a sustained brownout a fleet of
 * breakers would otherwise re-probe in lockstep every open_hold,
 * and the synchronized probe bursts themselves become the
 * drop-retry tail (tail_bench's attributed retry-storm source).
 * Exponential backoff spaces the probes out; per-breaker jitter
 * desynchronizes them.
 *
 * Time comes in through the caller (virtual or wall), so the breaker
 * behaves identically under the deterministic executor.
 */

#pragma once

#include "foundation/time.hpp"

#include <cstddef>
#include <cstdint>

namespace illixr {

struct CircuitBreakerPolicy
{
    std::size_t failure_threshold = 3; ///< Consecutive failures to trip.
    Duration open_hold = 500 * kMillisecond; ///< First Open hold.
    std::size_t probe_successes = 2; ///< HalfOpen successes to close.
    /** Hold growth per consecutive re-open (failed probe). */
    double backoff_factor = 2.0;
    /** Backoff ceiling. */
    Duration max_hold = 4 * kSecond;
    /** Max extra hold fraction from deterministic jitter, [0, 1). */
    double jitter = 0.1;
    /** Per-breaker jitter stream id (desynchronizes fleets). */
    std::uint64_t jitter_seed = 0;
};

class CircuitBreaker
{
  public:
    enum class State
    {
        Closed,
        Open,
        HalfOpen,
    };

    explicit CircuitBreaker(CircuitBreakerPolicy policy = {})
        : policy_(policy)
    {
    }

    /**
     * May a request be attempted at @p now? Transitions Open ->
     * HalfOpen once the hold has elapsed (the caller's attempt is the
     * probe).
     */
    bool
    allow(TimePoint now)
    {
        if (state_ == State::Open) {
            if (now - opened_at_ < hold_)
                return false;
            state_ = State::HalfOpen;
            probe_successes_ = 0;
        }
        return true;
    }

    /** The hold of the current/last Open period. */
    Duration currentHold() const { return hold_; }

    void
    recordSuccess(TimePoint now)
    {
        (void)now;
        if (state_ == State::HalfOpen) {
            if (++probe_successes_ >= policy_.probe_successes) {
                state_ = State::Closed;
                failures_ = 0;
                reopens_ = 0;
            }
            return;
        }
        failures_ = 0;
    }

    void
    recordFailure(TimePoint now)
    {
        if (state_ == State::HalfOpen) {
            ++reopens_;
            trip(now);
            return;
        }
        if (state_ == State::Closed &&
            ++failures_ >= policy_.failure_threshold) {
            reopens_ = 0;
            trip(now);
        }
    }

    State state() const { return state_; }
    std::size_t opens() const { return opens_; }

    static const char *
    stateName(State s)
    {
        switch (s) {
        case State::Closed:
            return "closed";
        case State::Open:
            return "open";
        case State::HalfOpen:
            return "half_open";
        }
        return "?";
    }

  private:
    /** splitmix64 finalizer: a deterministic [0, 1) jitter draw. */
    static double
    jitterUnit(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return static_cast<double>(x >> 11) / 9007199254740992.0;
    }

    void
    trip(TimePoint now)
    {
        state_ = State::Open;
        opened_at_ = now;
        failures_ = 0;
        ++opens_;
        double hold = static_cast<double>(policy_.open_hold);
        for (std::size_t k = 0; k < reopens_; ++k) {
            hold *= policy_.backoff_factor;
            if (hold >= static_cast<double>(policy_.max_hold))
                break;
        }
        if (hold > static_cast<double>(policy_.max_hold))
            hold = static_cast<double>(policy_.max_hold);
        if (reopens_ > 0 && policy_.jitter > 0.0)
            hold *= 1.0 + policy_.jitter *
                              jitterUnit(policy_.jitter_seed * 31 +
                                         opens_);
        hold_ = static_cast<Duration>(hold);
    }

    CircuitBreakerPolicy policy_;
    State state_ = State::Closed;
    TimePoint opened_at_ = 0;
    Duration hold_ = 0;               ///< Hold of the current Open.
    std::size_t failures_ = 0;        ///< Consecutive, Closed state.
    std::size_t probe_successes_ = 0; ///< HalfOpen progress.
    std::size_t opens_ = 0;           ///< Lifetime trip count.
    std::size_t reopens_ = 0;         ///< Consecutive re-opens.
};

} // namespace illixr
