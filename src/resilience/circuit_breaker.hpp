/**
 * @file
 * CircuitBreaker: the classic three-state breaker, used to fail the
 * offloaded VIO path over to the local IMU integrator (and back) when
 * the link browns out — the serving-stack pattern the ROADMAP's
 * robustness PR transfers.
 *
 *   Closed    -> requests flow; consecutive failures trip it Open.
 *   Open      -> requests are refused until `open_hold` elapses.
 *   HalfOpen  -> a limited probe: successes close it, one failure
 *                re-opens it.
 *
 * Time comes in through the caller (virtual or wall), so the breaker
 * behaves identically under the deterministic executor.
 */

#pragma once

#include "foundation/time.hpp"

#include <cstddef>

namespace illixr {

struct CircuitBreakerPolicy
{
    std::size_t failure_threshold = 3; ///< Consecutive failures to trip.
    Duration open_hold = 500 * kMillisecond; ///< Open -> HalfOpen delay.
    std::size_t probe_successes = 2; ///< HalfOpen successes to close.
};

class CircuitBreaker
{
  public:
    enum class State
    {
        Closed,
        Open,
        HalfOpen,
    };

    explicit CircuitBreaker(CircuitBreakerPolicy policy = {})
        : policy_(policy)
    {
    }

    /**
     * May a request be attempted at @p now? Transitions Open ->
     * HalfOpen once the hold has elapsed (the caller's attempt is the
     * probe).
     */
    bool
    allow(TimePoint now)
    {
        if (state_ == State::Open) {
            if (now - opened_at_ < policy_.open_hold)
                return false;
            state_ = State::HalfOpen;
            probe_successes_ = 0;
        }
        return true;
    }

    void
    recordSuccess(TimePoint now)
    {
        (void)now;
        if (state_ == State::HalfOpen) {
            if (++probe_successes_ >= policy_.probe_successes) {
                state_ = State::Closed;
                failures_ = 0;
            }
            return;
        }
        failures_ = 0;
    }

    void
    recordFailure(TimePoint now)
    {
        if (state_ == State::HalfOpen) {
            trip(now);
            return;
        }
        if (state_ == State::Closed &&
            ++failures_ >= policy_.failure_threshold)
            trip(now);
    }

    State state() const { return state_; }
    std::size_t opens() const { return opens_; }

    static const char *
    stateName(State s)
    {
        switch (s) {
        case State::Closed:
            return "closed";
        case State::Open:
            return "open";
        case State::HalfOpen:
            return "half_open";
        }
        return "?";
    }

  private:
    void
    trip(TimePoint now)
    {
        state_ = State::Open;
        opened_at_ = now;
        failures_ = 0;
        ++opens_;
    }

    CircuitBreakerPolicy policy_;
    State state_ = State::Closed;
    TimePoint opened_at_ = 0;
    std::size_t failures_ = 0;        ///< Consecutive, Closed state.
    std::size_t probe_successes_ = 0; ///< HalfOpen progress.
    std::size_t opens_ = 0;           ///< Lifetime trip count.
};

} // namespace illixr
