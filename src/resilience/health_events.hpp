/**
 * @file
 * Typed health and degradation events of the resilience subsystem.
 *
 * Everything the Supervisor, the circuit breaker, and the
 * DegradationManager decide is announced on the switchboard like any
 * other data in the system, so experiments can subscribe to the
 * system's own view of its health, and traces show *why* a knob
 * moved next to the frames it affected.
 */

#pragma once

#include "runtime/switchboard.hpp"

#include <string>

namespace illixr {

namespace topics {

/** HealthEvent stream: faults, restarts, circuit transitions. */
inline const std::string kHealth = "resilience.health";

/** DegradationCommandEvent stream: the current shedding knobs. */
inline const std::string kDegradation = "resilience.degradation";

} // namespace topics

/** What happened to a supervised component. */
enum class HealthKind
{
    Exception,       ///< An invocation threw (contained).
    FaultInjected,   ///< The FaultInjector fired on this task/topic.
    DeadlineMiss,    ///< Sustained overrun skips observed.
    Restart,         ///< Supervisor restarted the plugin.
    CircuitOpen,     ///< Breaker tripped: remote path abandoned.
    CircuitHalfOpen, ///< Breaker probing the remote path again.
    CircuitClosed,   ///< Breaker recovered: remote path restored.
};

const char *healthKindName(HealthKind kind);

/** One health observation about one task (or link). */
struct HealthEvent : Event
{
    HealthKind kind = HealthKind::Exception;
    std::string task;   ///< Plugin/task name (or link name).
    std::string detail; ///< Human-readable context (what(), counts).
};

/**
 * The DegradationManager's current load-shedding command. Knob
 * consumers (camera, reprojection, audio encoder) read the latest
 * value and apply it; level 0 means no shedding (all knobs 1/0/1).
 */
struct DegradationCommandEvent : Event
{
    int level = 0; ///< 0 (none) .. 3 (max shedding).

    /** Publish every Nth camera frame (1 = full rate). */
    int camera_stride = 1;

    /** Reproject on every Nth invocation (1 = every vsync). */
    int reprojection_stride = 1;

    /** Encode N audio blocks per (decimated) invocation (1 = off). */
    int audio_coalesce = 1;
};

} // namespace illixr
