#include "resilience/health_events.hpp"

namespace illixr {

const char *
healthKindName(HealthKind kind)
{
    switch (kind) {
    case HealthKind::Exception:
        return "exception";
    case HealthKind::FaultInjected:
        return "fault_injected";
    case HealthKind::DeadlineMiss:
        return "deadline_miss";
    case HealthKind::Restart:
        return "restart";
    case HealthKind::CircuitOpen:
        return "circuit_open";
    case HealthKind::CircuitHalfOpen:
        return "circuit_half_open";
    case HealthKind::CircuitClosed:
        return "circuit_closed";
    }
    return "unknown";
}

} // namespace illixr
