#include "resilience/fault_injector.hpp"

namespace illixr {

namespace {

/** Boundary-kind salts of faultDraw(): distinct streams per fault. */
enum FaultKind : std::uint32_t
{
    kKindCrash = 1,
    kKindStall = 2,
    kKindSpike = 3,
    kKindDrop = 4,
    kKindCorrupt = 5,
    kKindCorruptSeed = 6,
};

} // namespace

FaultInjector::FaultInjector(FaultPlan plan, MetricsRegistry *metrics)
    : plan_(std::move(plan))
{
    if (metrics) {
        crashCounter_ = &metrics->counter("resilience.injected.crash");
        stallCounter_ = &metrics->counter("resilience.injected.stall");
        spikeCounter_ = &metrics->counter("resilience.injected.spike");
        dropCounter_ = &metrics->counter("resilience.injected.drop");
        corruptCounter_ =
            &metrics->counter("resilience.injected.corrupt");
    }
}

PreInvocationAction
FaultInjector::before(Plugin &plugin, std::uint64_t attempt,
                      TimePoint now)
{
    (void)now;
    PreInvocationAction pre;
    if (!plan_.appliesToTask(plugin.name()))
        return pre;
    const std::string &name = plugin.name();
    if (plan_.crash_rate > 0.0 &&
        faultDraw(plan_.seed, kKindCrash, name, attempt) <
            plan_.crash_rate) {
        pre.crash = true;
        crashes_.fetch_add(1, std::memory_order_relaxed);
        if (crashCounter_)
            crashCounter_->add();
    }
    if (plan_.stall_rate > 0.0 &&
        faultDraw(plan_.seed, kKindStall, name, attempt) <
            plan_.stall_rate) {
        pre.stall = plan_.stall;
        stalls_.fetch_add(1, std::memory_order_relaxed);
        if (stallCounter_)
            stallCounter_->add();
    }
    if (plan_.spike_rate > 0.0 &&
        faultDraw(plan_.seed, kKindSpike, name, attempt) <
            plan_.spike_rate) {
        pre.duration_scale = plan_.spike_scale;
        spikes_.fetch_add(1, std::memory_order_relaxed);
        if (spikeCounter_)
            spikeCounter_->add();
    }
    return pre;
}

void
FaultInjector::after(Plugin &plugin, TimePoint now,
                     const InvocationOutcome &outcome)
{
    (void)plugin;
    (void)now;
    (void)outcome;
}

PublishHookHandle
FaultInjector::makePublishHook()
{
    return std::make_shared<PublishHook>(
        [this](const std::string &topic, std::uint64_t attempt,
               Event &event) {
            return onPublish(topic, attempt, event);
        });
}

void
FaultInjector::setCorrupter(const std::string &topic, EventCorrupter fn)
{
    std::lock_guard<std::mutex> lock(mutex_);
    corrupters_[topic] = std::move(fn);
}

bool
FaultInjector::onPublish(const std::string &topic, std::uint64_t attempt,
                         Event &event)
{
    if (!plan_.appliesToTopic(topic))
        return true;
    if (plan_.drop_rate > 0.0 &&
        faultDraw(plan_.seed, kKindDrop, topic, attempt) <
            plan_.drop_rate) {
        drops_.fetch_add(1, std::memory_order_relaxed);
        if (dropCounter_)
            dropCounter_->add();
        return false;
    }
    if (plan_.corrupt_rate > 0.0 &&
        faultDraw(plan_.seed, kKindCorrupt, topic, attempt) <
            plan_.corrupt_rate) {
        EventCorrupter corrupter;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = corrupters_.find(topic);
            if (it != corrupters_.end())
                corrupter = it->second;
        }
        if (corrupter) {
            // Seed the corrupter's draws from the same coordinate
            // system as the decision itself: replayable corruption.
            Rng rng(plan_.seed ^
                    static_cast<std::uint64_t>(faultDraw(
                        plan_.seed, kKindCorruptSeed, topic, attempt) *
                        9007199254740992.0));
            corrupter(event, rng);
            corruptions_.fetch_add(1, std::memory_order_relaxed);
            if (corruptCounter_)
                corruptCounter_->add();
        }
    }
    return true;
}

} // namespace illixr
