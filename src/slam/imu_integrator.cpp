#include "slam/imu_integrator.hpp"

#include <cassert>

namespace illixr {

namespace {

/** Time derivative of (q, v, p) under body rates (w, a). */
struct Derivative
{
    Quat qdot;
    Vec3 vdot;
    Vec3 pdot;
};

Derivative
kinematics(const Quat &q, const Vec3 &v, const Vec3 &w, const Vec3 &a)
{
    Derivative d;
    // qdot = 0.5 * q ⊗ (0, w)
    const Quat omega(0.0, w.x, w.y, w.z);
    const Quat qd = q * omega;
    d.qdot = Quat(0.5 * qd.w, 0.5 * qd.x, 0.5 * qd.y, 0.5 * qd.z);
    d.vdot = q.rotate(a) + gravityWorld();
    d.pdot = v;
    return d;
}

Quat
addScaled(const Quat &q, const Quat &dq, double s)
{
    return Quat(q.w + s * dq.w, q.x + s * dq.x, q.y + s * dq.y,
                q.z + s * dq.z);
}

} // namespace

ImuState
integrateRk4(const ImuState &state, const Vec3 &w0, const Vec3 &a0,
             const Vec3 &w1, const Vec3 &a1, double dt)
{
    // Bias-corrected measurements at the endpoints and midpoint.
    const Vec3 wb0 = w0 - state.gyro_bias;
    const Vec3 wb1 = w1 - state.gyro_bias;
    const Vec3 ab0 = a0 - state.accel_bias;
    const Vec3 ab1 = a1 - state.accel_bias;
    const Vec3 wm = (wb0 + wb1) * 0.5;
    const Vec3 am = (ab0 + ab1) * 0.5;

    const Quat &q = state.orientation;
    const Vec3 &v = state.velocity;

    // k1 at t0.
    const Derivative k1 = kinematics(q, v, wb0, ab0);
    // k2 at midpoint.
    const Quat q2 = addScaled(q, k1.qdot, dt / 2.0).normalized();
    const Vec3 v2 = v + k1.vdot * (dt / 2.0);
    const Derivative k2 = kinematics(q2, v2, wm, am);
    // k3 at midpoint.
    const Quat q3 = addScaled(q, k2.qdot, dt / 2.0).normalized();
    const Vec3 v3 = v + k2.vdot * (dt / 2.0);
    const Derivative k3 = kinematics(q3, v3, wm, am);
    // k4 at t1.
    const Quat q4 = addScaled(q, k3.qdot, dt).normalized();
    const Vec3 v4 = v + k3.vdot * dt;
    const Derivative k4 = kinematics(q4, v4, wb1, ab1);

    ImuState out = state;
    out.time = state.time + fromSeconds(dt);
    Quat qn = q;
    qn = addScaled(qn, k1.qdot, dt / 6.0);
    qn = addScaled(qn, k2.qdot, dt / 3.0);
    qn = addScaled(qn, k3.qdot, dt / 3.0);
    qn = addScaled(qn, k4.qdot, dt / 6.0);
    out.orientation = qn.normalized();
    out.velocity =
        v + (k1.vdot + k2.vdot * 2.0 + k3.vdot * 2.0 + k4.vdot) * (dt / 6.0);
    out.position = state.position +
                   (k1.pdot + k2.pdot * 2.0 + k3.pdot * 2.0 + k4.pdot) *
                       (dt / 6.0);
    return out;
}

void
ImuIntegrator::propagateTo(const ImuSample &sample)
{
    if (!hasSample_) {
        lastSample_ = sample;
        hasSample_ = true;
        if (!initialized_) {
            state_.time = sample.time;
            initialized_ = true;
        }
        return;
    }
    const double dt = toSeconds(sample.time - lastSample_.time);
    if (dt > 0.0) {
        state_ = integrateRk4(state_, lastSample_.angular_velocity,
                              lastSample_.linear_acceleration,
                              sample.angular_velocity,
                              sample.linear_acceleration, dt);
    }
    lastSample_ = sample;
}

void
ImuIntegrator::addSample(const ImuSample &sample)
{
    buffer_.push_back(sample);
    propagateTo(sample);
}

void
ImuIntegrator::correct(const ImuState &state)
{
    state_ = state;
    initialized_ = true;
    hasSample_ = false;
    // Drop stale samples, replay the rest on top of the new state.
    while (!buffer_.empty() && buffer_.front().time <= state.time)
        buffer_.pop_front();
    for (const ImuSample &s : buffer_)
        propagateTo(s);
    // Keep the buffer bounded: anything older than the corrected
    // state can never be replayed again.
    constexpr std::size_t kMaxBuffer = 4096;
    while (buffer_.size() > kMaxBuffer)
        buffer_.pop_front();
}

} // namespace illixr
