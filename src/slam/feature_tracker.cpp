#include "slam/feature_tracker.hpp"

namespace illixr {

FeatureTracker::FeatureTracker(const TrackerParams &params)
    : params_(params)
{
}

std::vector<FeatureObservation>
FeatureTracker::processFrame(const ImageF &image)
{
    return processFrame(std::make_shared<const ImageF>(image));
}

std::vector<FeatureObservation>
FeatureTracker::processFrame(std::shared_ptr<const ImageF> image_ptr)
{
    const ImageF &image = *image_ptr;
    auto pyramid = std::make_shared<const ImagePyramid>(
        std::move(image_ptr), params_.pyramid_levels);
    lost_.clear();

    // --- Feature matching: track existing features with KLT. ---
    if (hasPrev_ && !tracks_.empty()) {
        ScopedTask timer(profile_, "feature_matching");
        std::vector<std::uint64_t> ids;
        std::vector<Vec2> points;
        ids.reserve(tracks_.size());
        points.reserve(tracks_.size());
        for (const auto &[id, pt] : tracks_) {
            ids.push_back(id);
            points.push_back(pt);
        }
        const auto results =
            trackPoints(*prevPyramid_, *pyramid, points, params_.klt);
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (results[i].ok) {
                tracks_[ids[i]] = results[i].position;
            } else {
                tracks_.erase(ids[i]);
                lost_.push_back(ids[i]);
            }
        }
    }

    // --- Feature detection: refill empty grid cells. ---
    if (tracks_.size() < static_cast<std::size_t>(params_.max_features)) {
        ScopedTask timer(profile_, "feature_detection");
        std::vector<Vec2> occupied;
        occupied.reserve(tracks_.size());
        for (const auto &[id, pt] : tracks_)
            occupied.push_back(pt);
        const auto fresh =
            detectFastGrid(image, params_.grid_x, params_.grid_y,
                           params_.max_per_cell, occupied, params_.fast);
        for (const Corner &c : fresh) {
            if (tracks_.size() >=
                static_cast<std::size_t>(params_.max_features))
                break;
            tracks_.emplace(nextId_++, c.position);
        }
    }

    std::vector<FeatureObservation> observations;
    observations.reserve(tracks_.size());
    for (const auto &[id, pt] : tracks_)
        observations.push_back({id, pt});

    prevPyramid_ = std::move(pyramid);
    hasPrev_ = true;
    ++frameIndex_;
    return observations;
}

} // namespace illixr
