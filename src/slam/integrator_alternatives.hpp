/**
 * @file
 * Alternative IMU-integrator implementations.
 *
 * Paper Table II lists two interchangeable IMU integrators (RK4 from
 * OpenVINS and GTSAM's preintegration); ILLIXR's architecture claim
 * is that such alternatives swap without touching the rest of the
 * system. This header provides the common interface plus a
 * midpoint/preintegration-style implementation alongside the RK4 one,
 * both registered in the plugin registry under distinct names.
 */

#pragma once

#include "slam/imu_integrator.hpp"

#include <deque>
#include <memory>
#include <string>

namespace illixr {

/**
 * Interface every IMU-integrator implementation satisfies.
 */
class PoseIntegrator
{
  public:
    virtual ~PoseIntegrator() = default;

    /** Append a new IMU sample (timestamps must be increasing). */
    virtual void addSample(const ImuSample &sample) = 0;

    /** Reset the propagation base to a corrected state (from VIO). */
    virtual void correct(const ImuState &state) = 0;

    /** Latest integrated state. */
    virtual const ImuState &state() const = 0;

    virtual bool initialized() const = 0;

    /** Implementation name (for telemetry / registry). */
    virtual const char *method() const = 0;
};

/** The RK4 integrator (paper Table II "RK4*") behind the interface. */
class Rk4PoseIntegrator : public PoseIntegrator
{
  public:
    void addSample(const ImuSample &sample) override
    {
        impl_.addSample(sample);
    }
    void correct(const ImuState &state) override { impl_.correct(state); }
    const ImuState &state() const override { return impl_.state(); }
    bool initialized() const override { return impl_.initialized(); }
    const char *method() const override { return "rk4"; }

  private:
    ImuIntegrator impl_;
};

/**
 * Midpoint (preintegration-style) integrator — the GTSAM-analog
 * alternative: orientation advanced by the midpoint angular rate,
 * velocity/position by trapezoidal acceleration. Cheaper and slightly
 * less accurate than RK4 at low sample rates.
 */
class MidpointPoseIntegrator : public PoseIntegrator
{
  public:
    void addSample(const ImuSample &sample) override;
    void correct(const ImuState &state) override;
    const ImuState &state() const override { return state_; }
    bool initialized() const override { return initialized_; }
    const char *method() const override { return "midpoint"; }

  private:
    void propagate(const ImuSample &sample);

    ImuState state_;
    ImuSample lastSample_;
    bool hasSample_ = false;
    bool initialized_ = false;
    std::deque<ImuSample> buffer_;
};

/** Factory: construct an integrator by method name ("rk4" or
 *  "midpoint"). @throws std::out_of_range for unknown names. */
std::unique_ptr<PoseIntegrator>
makePoseIntegrator(const std::string &method);

} // namespace illixr
