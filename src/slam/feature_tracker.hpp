/**
 * @file
 * Frame-to-frame feature track manager: combines FAST detection and
 * pyramidal KLT into persistent, id-stamped feature tracks, the
 * front end of the VIO component.
 */

#pragma once

#include "foundation/profile.hpp"
#include "foundation/time.hpp"
#include "foundation/vec.hpp"
#include "image/pyramid.hpp"
#include "slam/fast.hpp"
#include "slam/klt.hpp"

#include <cstdint>
#include <map>
#include <vector>

namespace illixr {

/** One feature observed in one frame. */
struct FeatureObservation
{
    std::uint64_t feature_id = 0;
    Vec2 pixel;
};

/** Tracker configuration. */
struct TrackerParams
{
    int grid_x = 8;
    int grid_y = 6;
    int max_per_cell = 2;
    int pyramid_levels = 3;
    int max_features = 96;   ///< Cap on live tracks (paper §V-E knob).
    FastParams fast;
    KltParams klt;
};

/**
 * Persistent KLT feature tracker.
 */
class FeatureTracker
{
  public:
    explicit FeatureTracker(const TrackerParams &params = TrackerParams());

    /**
     * Process the next camera image; returns the observations of all
     * live tracks in this frame (tracked + newly detected). Copies
     * @p image into the frame pyramid; hot paths should use the
     * shared_ptr overload.
     */
    std::vector<FeatureObservation> processFrame(const ImageF &image);

    /**
     * Zero-copy variant: the frame pyramid aliases @p image, which is
     * built exactly once per frame and shared with the previous-frame
     * state (and any other consumer via currentPyramid()).
     */
    std::vector<FeatureObservation>
    processFrame(std::shared_ptr<const ImageF> image);

    /** Pyramid of the most recent frame (null before any frame). */
    const std::shared_ptr<const ImagePyramid> &currentPyramid() const
    {
        return prevPyramid_;
    }

    /** Ids of tracks that were lost on the most recent frame. */
    const std::vector<std::uint64_t> &lostTracks() const { return lost_; }

    /** Number of currently live tracks. */
    std::size_t liveTrackCount() const { return tracks_.size(); }

    /** Frame index of the most recent processFrame call (0-based). */
    std::size_t frameIndex() const { return frameIndex_; }

    /** Task-level time profile (detection vs matching). */
    const TaskProfile &profile() const { return profile_; }
    TaskProfile &profile() { return profile_; }

    const TrackerParams &params() const { return params_; }

  private:
    TrackerParams params_;
    std::shared_ptr<const ImagePyramid> prevPyramid_;
    std::map<std::uint64_t, Vec2> tracks_; ///< Live tracks (id -> pixel).
    std::vector<std::uint64_t> lost_;
    std::uint64_t nextId_ = 1;
    std::size_t frameIndex_ = 0;
    bool hasPrev_ = false;
    TaskProfile profile_;
};

} // namespace illixr
