/**
 * @file
 * MSCKF-style visual-inertial odometry — the head-tracking (VIO)
 * component of the perception pipeline, reimplementing the structure
 * of OpenVINS (paper Table II) from scratch:
 *
 *  - IMU error-state EKF with a sliding window of stochastic pose
 *    clones (the MSCKF),
 *  - feature tracks triangulated by Gauss–Newton and applied as
 *    measurements after left-nullspace projection of the feature
 *    Jacobian (Table VI: "SVD; Gauss-Newton; Jacobian; nullspace
 *    projection; GEMM"),
 *  - chi-squared gating, QR measurement compression, Cholesky-based
 *    EKF update (Table VI: "Cholesky; QR; chi2 check"),
 *  - a small set of persistent SLAM features kept in the state
 *    (Table VI: "SLAM update"),
 *  - clone/feature marginalization.
 *
 * Each of these phases is timed into a TaskProfile with the same task
 * names as paper Table VI, so the table can be regenerated.
 */

#pragma once

#include "foundation/pose.hpp"
#include "foundation/profile.hpp"
#include "linalg/matrix.hpp"
#include "sensors/camera.hpp"
#include "sensors/imu.hpp"
#include "slam/feature_tracker.hpp"
#include "slam/imu_integrator.hpp"

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

namespace illixr {

/** Filter configuration. */
struct MsckfParams
{
    std::size_t max_clones = 8;       ///< Sliding-window length.
    std::size_t max_slam_features = 8;
    std::size_t min_obs_for_update = 4;
    std::size_t min_obs_for_slam = 8;
    double pixel_noise = 1.0;         ///< Measurement sigma, pixels.
    double chi2_multiplier = 1.0;     ///< Gate inflation.
    double max_triangulation_cond = 2000.0;
    double min_depth = 0.2;           ///< Reject degenerate features.
    double max_depth = 40.0;
    // Initial uncertainties.
    double init_attitude_sigma = 0.02;
    double init_velocity_sigma = 0.05;
    double init_position_sigma = 0.01;
    double init_bias_gyro_sigma = 0.01;
    double init_bias_accel_sigma = 0.05;
    double slam_feature_init_sigma = 1.0;  ///< Meters.
    ImuNoiseModel imu_noise;
};

/**
 * The MSCKF filter. Feed IMU samples continuously and feature
 * observations once per camera frame.
 */
class MsckfFilter
{
  public:
    MsckfFilter(const MsckfParams &params, const CameraRig &rig);

    /** Initialize the nominal state (e.g., from dataset ground truth
     *  as in standard VIO benchmarking practice). */
    void initialize(const ImuState &state);

    bool initialized() const { return initialized_; }

    /** Buffer one IMU sample (strictly increasing timestamps). */
    void addImu(const ImuSample &sample);

    /**
     * Process one camera frame's feature observations, producing an
     * updated state estimate. @p lost lists the ids of tracks that
     * ended this frame (their windows are consumed as MSCKF updates).
     */
    void processFeatures(TimePoint frame_time,
                         const std::vector<FeatureObservation> &obs,
                         const std::vector<std::uint64_t> &lost);

    /** Current best IMU-state estimate. */
    const ImuState &state() const { return state_; }

    /** Marginal standard deviation of the position estimate. */
    Vec3 positionSigma() const;

    /** Number of pose clones currently in the window. */
    std::size_t cloneCount() const { return clones_.size(); }

    /** Number of SLAM features currently in the state. */
    std::size_t slamFeatureCount() const { return slamFeatures_.size(); }

    /** Task-level timing (Table VI rows). */
    const TaskProfile &profile() const { return profile_; }
    TaskProfile &profile() { return profile_; }

    /** Total EKF updates applied (MSCKF + SLAM), for tests. */
    std::size_t updateCount() const { return updateCount_; }

    /** Full error-state covariance (15 + 6·clones + 3·slam square);
     *  exposed for the invariant tests (symmetry, PSD). */
    const MatX &covariance() const { return cov_; }

  private:
    struct Clone
    {
        TimePoint time = 0;
        Quat orientation;
        Vec3 position;
    };

    struct TrackedFeature
    {
        std::vector<std::size_t> clone_indices; ///< Into clones_ at add time.
        std::vector<TimePoint> clone_times;
        std::vector<Vec2> pixels;
    };

    struct SlamFeature
    {
        std::uint64_t id = 0;
        Vec3 position;         ///< World frame.
        int missed_frames = 0;
    };

    // State layout helpers.
    std::size_t imuDim() const { return 15; }
    std::size_t cloneOffset(std::size_t i) const { return 15 + 6 * i; }
    std::size_t slamOffset(std::size_t i) const
    {
        return 15 + 6 * clones_.size() + 3 * i;
    }
    std::size_t stateDim() const
    {
        return 15 + 6 * clones_.size() + 3 * slamFeatures_.size();
    }

    void propagateTo(TimePoint t);
    void propagateCovariance(const Vec3 &w_hat, const Vec3 &a_hat,
                             double dt);
    void augmentClone(TimePoint t);
    void marginalizeOldestClone();
    void pruneSlamFeatures();

    /** Gauss–Newton triangulation from the clone window.
     *  @return world-space point, or nullopt when badly conditioned. */
    std::optional<Vec3>
    triangulateFeature(const TrackedFeature &feature) const;

    /** Camera pose (world->camera) of clone @p i from current estimates. */
    Pose cloneWorldToCamera(std::size_t i) const;

    /**
     * Build the stacked measurement for one feature: residual and
     * Jacobian w.r.t. the full error state (after nullspace
     * projection of the feature-position Jacobian).
     * @return false if the feature fails triangulation or gating.
     */
    bool buildMsckfMeasurement(const TrackedFeature &feature, MatX &h_out,
                               VecX &r_out);

    /** Apply a (possibly compressed) EKF update. */
    void applyUpdate(const MatX &h, const VecX &r, double sigma);

    /** Inject an error-state correction into the nominal state. */
    void injectCorrection(const VecX &dx);

    /** chi-squared 95% critical value (Wilson–Hilferty). */
    static double chi2Threshold(std::size_t dof);

    MsckfParams params_;
    CameraRig rig_;
    ImuState state_;
    MatX cov_;
    bool initialized_ = false;

    std::deque<ImuSample> imuBuffer_;
    ImuSample lastImu_;
    bool hasLastImu_ = false;

    std::vector<Clone> clones_;
    std::vector<SlamFeature> slamFeatures_;
    std::map<std::uint64_t, TrackedFeature> pendingTracks_;

    TaskProfile profile_;
    std::size_t updateCount_ = 0;
};

/**
 * Complete VIO component: feature front end + MSCKF back end, the
 * unit the paper characterizes as "VIO".
 */
class VioSystem
{
  public:
    VioSystem(const MsckfParams &filter_params,
              const TrackerParams &tracker_params, const CameraRig &rig);

    void initialize(const ImuState &state) { filter_.initialize(state); }

    void addImu(const ImuSample &sample) { filter_.addImu(sample); }

    /** Process one camera frame; returns the updated state. */
    const ImuState &processFrame(TimePoint time, const ImageF &image);

    /** Zero-copy variant: the tracker pyramid aliases @p image. */
    const ImuState &processFrame(TimePoint time,
                                 std::shared_ptr<const ImageF> image);

    const ImuState &state() const { return filter_.state(); }
    const MsckfFilter &filter() const { return filter_; }
    const FeatureTracker &tracker() const { return tracker_; }

    /** Merged task profile across front end and filter. */
    TaskProfile combinedProfile() const;

  private:
    FeatureTracker tracker_;
    MsckfFilter filter_;
};

} // namespace illixr
