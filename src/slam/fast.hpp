/**
 * @file
 * FAST-9 corner detector — the feature-detection task of the VIO
 * component (paper Table VI: "KLT; FAST").
 *
 * A pixel is a corner when at least 9 contiguous pixels on the
 * 16-pixel Bresenham circle of radius 3 are all brighter than
 * center + threshold or all darker than center - threshold. Corners
 * are scored by the sum of absolute differences on the arc and
 * filtered by 3x3 non-maximum suppression.
 */

#pragma once

#include "foundation/vec.hpp"
#include "image/image.hpp"

#include <vector>

namespace illixr {

/** A detected corner. */
struct Corner
{
    Vec2 position;  ///< Pixel coordinates.
    float score = 0.0f;
};

/** FAST detector parameters. */
struct FastParams
{
    float threshold = 0.06f;  ///< Intensity delta (images are [0,1]).
    int min_contiguous = 9;   ///< Arc length (FAST-9).
    int border = 4;           ///< Ignore margin at the image edge.
};

/** Detect FAST corners with non-maximum suppression. */
std::vector<Corner> detectFast(const ImageF &image,
                               const FastParams &params = FastParams());

/**
 * Grid-bucketed detection: keep at most @p max_per_cell best corners
 * in each cell of a grid_x x grid_y grid, skipping cells that already
 * contain one of @p occupied (existing tracked features). This is the
 * OpenVINS-style strategy that keeps features well distributed.
 */
std::vector<Corner> detectFastGrid(const ImageF &image, int grid_x,
                                   int grid_y, int max_per_cell,
                                   const std::vector<Vec2> &occupied,
                                   const FastParams &params = FastParams());

} // namespace illixr
