#include "slam/klt.hpp"

#include "runtime/parallel.hpp"

#include <cmath>

namespace illixr {

namespace {

/** Central-difference gradient at a continuous location. */
inline void
sampleGradient(const ImageF &img, double x, double y, double &gx,
               double &gy)
{
    gx = 0.5 * (img.sampleBilinear(x + 1.0, y) -
                img.sampleBilinear(x - 1.0, y));
    gy = 0.5 * (img.sampleBilinear(x, y + 1.0) -
                img.sampleBilinear(x, y - 1.0));
}

/**
 * Single-level LK refinement of the displacement @p d for @p point.
 * @return false when the structure tensor is degenerate or the
 *         window leaves the image.
 */
bool
trackLevel(const ImageF &prev, const ImageF &next, const Vec2 &point,
           Vec2 &d, double &residual_out, const KltParams &p)
{
    const int r = p.window_radius;
    const int n = (2 * r + 1) * (2 * r + 1);

    // The spatial gradient matrix is evaluated once in the previous
    // image (standard inverse-compositional-style optimization). The
    // window buffers are per-feature scratch: arena, not heap.
    ArenaFrame scratch;
    double *gx = scratch.alloc<double>(n);
    double *gy = scratch.alloc<double>(n);
    double *tmpl = scratch.alloc<double>(n);
    double gxx = 0.0, gxy = 0.0, gyy = 0.0;
    int idx = 0;
    for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx, ++idx) {
            const double px = point.x + dx;
            const double py = point.y + dy;
            tmpl[idx] = prev.sampleBilinear(px, py);
            sampleGradient(prev, px, py, gx[idx], gy[idx]);
            gxx += gx[idx] * gx[idx];
            gxy += gx[idx] * gy[idx];
            gyy += gy[idx] * gy[idx];
        }
    }
    // Minimum eigenvalue of the 2x2 structure tensor.
    const double tr = gxx + gyy;
    const double det = gxx * gyy - gxy * gxy;
    const double disc = std::sqrt(std::max(0.0, tr * tr / 4.0 - det));
    const double min_eig = (tr / 2.0 - disc) / n;
    if (min_eig < p.min_eigenvalue)
        return false;

    const double inv_det = 1.0 / (gxx * gyy - gxy * gxy);

    for (int iter = 0; iter < p.max_iterations; ++iter) {
        // Photometric error over the window at the current estimate.
        double bx = 0.0, by = 0.0, res = 0.0;
        idx = 0;
        for (int dy = -r; dy <= r; ++dy) {
            for (int dx = -r; dx <= r; ++dx, ++idx) {
                const double nx = point.x + d.x + dx;
                const double ny = point.y + d.y + dy;
                const double diff =
                    next.sampleBilinear(nx, ny) - tmpl[idx];
                bx += diff * gx[idx];
                by += diff * gy[idx];
                res += std::fabs(diff);
            }
        }
        residual_out = res / n;
        // Solve the 2x2 normal equations.
        const double ux = -(gyy * bx - gxy * by) * inv_det;
        const double uy = -(-gxy * bx + gxx * by) * inv_det;
        d.x += ux;
        d.y += uy;
        if (std::sqrt(ux * ux + uy * uy) < p.epsilon)
            break;
        // Window out of bounds: fail the track.
        if (point.x + d.x < r + 1 || point.y + d.y < r + 1 ||
            point.x + d.x >= next.width() - r - 1 ||
            point.y + d.y >= next.height() - r - 1)
            return false;
    }
    return true;
}

} // namespace

KltResult
trackPointPyramidal(const ImagePyramid &prev, const ImagePyramid &next,
                    const Vec2 &point, const KltParams &params)
{
    KltResult result;
    const int levels = std::min(prev.levels(), next.levels());

    // Displacement propagated coarse to fine.
    Vec2 d(0.0, 0.0);
    double residual = 1e9;
    for (int level = levels - 1; level >= 0; --level) {
        const double scale = std::pow(2.0, level);
        const Vec2 pt(point.x / scale, point.y / scale);
        if (!trackLevel(prev.level(level), next.level(level), pt, d,
                        residual, params)) {
            return result; // ok = false
        }
        if (level > 0) {
            d.x *= 2.0;
            d.y *= 2.0;
        }
    }

    result.position = point + d;
    result.residual = residual;
    const int r = params.window_radius;
    const bool in_bounds = result.position.x >= r + 1 &&
                           result.position.y >= r + 1 &&
                           result.position.x < next.level(0).width() - r - 1 &&
                           result.position.y < next.level(0).height() - r - 1;
    result.ok = in_bounds && residual <= params.max_residual;
    return result;
}

std::vector<KltResult>
trackPoints(const ImagePyramid &prev, const ImagePyramid &next,
            const std::vector<Vec2> &points, const KltParams &params)
{
    std::vector<KltResult> results(points.size());
    // Features are fully independent; each tile writes its own result
    // slots, so output order (and bits) match the serial loop.
    // Per-frame feature batches are tiny (tens of points, ~10 us
    // each): below 256 the launch handoff costs more than the work,
    // so the whole batch becomes one tile and parallelFor runs it
    // inline (the fig3 width-4 inversion). The grain is a pure
    // function of the range, so tiling stays width-independent.
    const std::size_t grain = points.size() < 256
                                  ? std::max<std::size_t>(points.size(), 1)
                                  : 2;
    parallelFor("klt_track", 0, points.size(), grain,
                [&](std::size_t b, std::size_t e) {
                    for (std::size_t i = b; i < e; ++i)
                        results[i] = trackPointPyramidal(
                            prev, next, points[i], params);
                });
    return results;
}

} // namespace illixr
