#include "slam/fast.hpp"

#include "foundation/simd.hpp"
#include "runtime/parallel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace illixr {

namespace {

/** Bresenham circle of radius 3 (the 16 FAST offsets, clockwise). */
constexpr int kCircle[16][2] = {
    {0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0},  {3, 1},  {2, 2},  {1, 3},
    {0, 3},  {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2}, {-1, -3}};

/**
 * Classify pixel (x, y); returns the corner score (> 0) when it is a
 * corner, else 0.
 */
float
cornerScore(const ImageF &img, int x, int y, const FastParams &p)
{
    const float center = img.at(x, y);
    const float hi = center + p.threshold;
    const float lo = center - p.threshold;

    // States per arc pixel: +1 brighter, -1 darker, 0 similar.
    int state[16];
    int n_bright = 0, n_dark = 0;
    for (int i = 0; i < 16; ++i) {
        const float v = img.at(x + kCircle[i][0], y + kCircle[i][1]);
        if (v > hi) {
            state[i] = 1;
            ++n_bright;
        } else if (v < lo) {
            state[i] = -1;
            ++n_dark;
        } else {
            state[i] = 0;
        }
    }
    // Quick reject: need at least min_contiguous of one polarity.
    if (n_bright < p.min_contiguous && n_dark < p.min_contiguous)
        return 0.0f;

    // Longest contiguous run (wrapping) of each polarity.
    auto longest_run = [&state](int polarity) {
        int best = 0, run = 0;
        for (int i = 0; i < 32; ++i) { // Doubled for wraparound.
            if (state[i & 15] == polarity) {
                ++run;
                best = std::max(best, run);
                if (best >= 16)
                    break;
            } else {
                run = 0;
            }
        }
        return std::min(best, 16);
    };

    const bool is_corner = longest_run(1) >= p.min_contiguous ||
                           longest_run(-1) >= p.min_contiguous;
    if (!is_corner)
        return 0.0f;

    // Score: total absolute contrast beyond the threshold on the arc.
    float score = 0.0f;
    for (int i = 0; i < 16; ++i) {
        const float v = img.at(x + kCircle[i][0], y + kCircle[i][1]);
        const float d = std::fabs(v - center);
        if (d > p.threshold)
            score += d - p.threshold;
    }
    return score;
}

} // namespace

std::vector<Corner>
detectFast(const ImageF &image, const FastParams &params)
{
    const int w = image.width();
    const int h = image.height();
    const int border = std::max(params.border, 3);

    if (h - border <= border || w - border <= border)
        return {};

    // Score map for non-maximum suppression (arena scratch: this is a
    // per-frame w*h buffer on the camera hot path).
    ArenaFrame scratch;
    float *scores = scratch.alloc<float>(static_cast<std::size_t>(w) * h);
    std::memset(scores, 0, static_cast<std::size_t>(w) * h *
                               sizeof(float));
    auto score_at = [&](int x, int y) -> float & {
        return scores[static_cast<std::size_t>(y) * w + x];
    };

    // Row-vectorized scoring (DESIGN.md "SIMD & data layout"): the
    // quick-reject test (count arc pixels beyond center +- threshold,
    // compare against min_contiguous) runs 8 candidate centers at a
    // time; only surviving lanes pay for the full scalar cornerScore,
    // whose result — and therefore the whole corner list — is
    // bit-identical to the pre-SIMD detector. Full 8-wide blocks read
    // at most x + 10 < w in-row (xb <= w - border - 8 and the circle
    // radius is 3); the x tail stays scalar.
    // Camera-sized frames (< 64k px) go single-tile: the per-row work
    // is far below the launch handoff cost (fig3 width-4 inversion).
    // Grain is a pure function of the range — tiling stays
    // width-independent, and per-tile results are tile-boundary
    // independent anyway (disjoint writes, ascending concatenation).
    const std::size_t row_grain =
        static_cast<std::size_t>(w) * h < 64 * 1024
            ? static_cast<std::size_t>(h)
            : 8;
    const float *img_data = image.data();
    parallelFor("fast_score", border, static_cast<std::size_t>(h - border),
                row_grain, [&](std::size_t yb, std::size_t ye) {
        using simd::VecF8;
        const VecF8 thr = VecF8::broadcast(params.threshold);
        const VecF8 min_run = VecF8::broadcast(
            static_cast<float>(params.min_contiguous));
        const VecF8 one = VecF8::broadcast(1.0f);
        for (std::size_t yy = yb; yy < ye; ++yy) {
            const int y = static_cast<int>(yy);
            const float *row = img_data + static_cast<std::size_t>(y) * w;
            int x = border;
            for (; x + 8 <= w - border; x += 8) {
                const VecF8 center = VecF8::load(row + x);
                const VecF8 hi = center + thr;
                const VecF8 lo = center - thr;
                VecF8 n_bright = VecF8::zero();
                VecF8 n_dark = VecF8::zero();
                for (const auto &off : kCircle) {
                    const VecF8 v = VecF8::load(
                        img_data +
                        static_cast<std::size_t>(y + off[1]) * w + x +
                        off[0]);
                    n_bright = n_bright +
                               simd::bitAnd(simd::cmpGT(v, hi), one);
                    n_dark = n_dark +
                             simd::bitAnd(simd::cmpLT(v, lo), one);
                }
                const VecF8 candidate =
                    simd::bitOr(simd::cmpGE(n_bright, min_run),
                                simd::cmpGE(n_dark, min_run));
                int bits = simd::maskBits(candidate);
                while (bits) {
                    const int l = std::countr_zero(
                        static_cast<unsigned>(bits));
                    bits &= bits - 1;
                    score_at(x + l, y) =
                        cornerScore(image, x + l, y, params);
                }
            }
            for (; x < w - border; ++x)
                score_at(x, y) = cornerScore(image, x, y, params);
        }
                });

    // NMS: rows only read the (fully materialized) score map; each
    // tile collects its corners locally and the tile lists concatenate
    // in ascending tile order, reproducing the serial y-major scan
    // order exactly.
    auto nms_rows = [&](std::size_t yb, std::size_t ye) {
        std::vector<Corner> local;
        for (std::size_t y = yb; y < ye; ++y) {
            for (int x = border; x < w - border; ++x) {
                const float s = score_at(x, static_cast<int>(y));
                if (s <= 0.0f)
                    continue;
                bool is_max = true;
                for (int dy = -1; dy <= 1 && is_max; ++dy)
                    for (int dx = -1; dx <= 1; ++dx) {
                        const int nx = std::clamp(x + dx, 0, w - 1);
                        const int ny = std::clamp(
                            static_cast<int>(y) + dy, 0, h - 1);
                        if ((dx || dy) && score_at(nx, ny) > s) {
                            is_max = false;
                            break;
                        }
                    }
                if (is_max)
                    local.push_back(
                        {Vec2(x, static_cast<int>(y)), s});
            }
        }
        return local;
    };
    return parallelReduce(
        "fast_nms", border, static_cast<std::size_t>(h - border),
        row_grain, std::vector<Corner>(), nms_rows,
        [](std::vector<Corner> acc, std::vector<Corner> part) {
            acc.insert(acc.end(), part.begin(), part.end());
            return acc;
        });
}

std::vector<Corner>
detectFastGrid(const ImageF &image, int grid_x, int grid_y,
               int max_per_cell, const std::vector<Vec2> &occupied,
               const FastParams &params)
{
    const auto all = detectFast(image, params);
    const double cell_w =
        static_cast<double>(image.width()) / static_cast<double>(grid_x);
    const double cell_h =
        static_cast<double>(image.height()) / static_cast<double>(grid_y);

    auto cell_of = [&](const Vec2 &p) {
        const int cx = std::clamp(static_cast<int>(p.x / cell_w), 0,
                                  grid_x - 1);
        const int cy = std::clamp(static_cast<int>(p.y / cell_h), 0,
                                  grid_y - 1);
        return cy * grid_x + cx;
    };

    std::vector<int> occupancy(static_cast<std::size_t>(grid_x) * grid_y,
                               0);
    for (const Vec2 &p : occupied)
        ++occupancy[cell_of(p)];

    // Best corners first.
    std::vector<Corner> sorted = all;
    std::sort(sorted.begin(), sorted.end(),
              [](const Corner &a, const Corner &b) {
                  return a.score > b.score;
              });

    std::vector<Corner> selected;
    for (const Corner &c : sorted) {
        int &count = occupancy[cell_of(c.position)];
        if (count >= max_per_cell)
            continue;
        ++count;
        selected.push_back(c);
    }
    return selected;
}

} // namespace illixr
