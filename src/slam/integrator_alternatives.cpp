#include "slam/integrator_alternatives.hpp"

#include <stdexcept>

namespace illixr {

void
MidpointPoseIntegrator::propagate(const ImuSample &sample)
{
    if (!hasSample_) {
        lastSample_ = sample;
        hasSample_ = true;
        if (state_.time == 0)
            state_.time = sample.time;
        initialized_ = true;
        return;
    }
    const double dt = toSeconds(sample.time - lastSample_.time);
    if (dt > 0.0) {
        // Midpoint angular rate advances the orientation.
        const Vec3 w_mid = (lastSample_.angular_velocity +
                            sample.angular_velocity) *
                               0.5 -
                           state_.gyro_bias;
        const Quat q0 = state_.orientation;
        const Quat q1 = (q0 * Quat::exp(w_mid * dt)).normalized();

        // Trapezoidal specific force in the world frame.
        const Vec3 a0 =
            q0.rotate(lastSample_.linear_acceleration -
                      state_.accel_bias) +
            gravityWorld();
        const Vec3 a1 =
            q1.rotate(sample.linear_acceleration - state_.accel_bias) +
            gravityWorld();
        const Vec3 a_mid = (a0 + a1) * 0.5;

        state_.position += state_.velocity * dt + a_mid * (0.5 * dt * dt);
        state_.velocity += a_mid * dt;
        state_.orientation = q1;
        state_.time = sample.time;
    }
    lastSample_ = sample;
}

void
MidpointPoseIntegrator::addSample(const ImuSample &sample)
{
    buffer_.push_back(sample);
    propagate(sample);
}

void
MidpointPoseIntegrator::correct(const ImuState &state)
{
    state_ = state;
    initialized_ = true;
    hasSample_ = false;
    while (!buffer_.empty() && buffer_.front().time <= state.time)
        buffer_.pop_front();
    for (const ImuSample &s : buffer_)
        propagate(s);
    constexpr std::size_t kMaxBuffer = 4096;
    while (buffer_.size() > kMaxBuffer)
        buffer_.pop_front();
}

std::unique_ptr<PoseIntegrator>
makePoseIntegrator(const std::string &method)
{
    if (method == "rk4")
        return std::make_unique<Rk4PoseIntegrator>();
    if (method == "midpoint")
        return std::make_unique<MidpointPoseIntegrator>();
    throw std::out_of_range("unknown integrator method: " + method);
}

} // namespace illixr
