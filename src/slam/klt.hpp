/**
 * @file
 * Pyramidal Lucas–Kanade optical-flow tracker — the feature-matching
 * task of the VIO component (paper Table VI: "KLT; GEMM; linear
 * algebra").
 */

#pragma once

#include "foundation/vec.hpp"
#include "image/pyramid.hpp"

#include <vector>

namespace illixr {

/** LK tracker parameters. */
struct KltParams
{
    int window_radius = 4;     ///< (2r+1)^2 window.
    int max_iterations = 12;   ///< Gauss–Newton iterations per level.
    double epsilon = 0.01;     ///< Convergence threshold (pixels).
    double max_residual = 0.08; ///< Mean abs photometric residual gate.
    double min_eigenvalue = 1e-4; ///< Gate on the structure tensor.
};

/** Result of tracking one point. */
struct KltResult
{
    Vec2 position;       ///< Location in the new image.
    bool ok = false;     ///< Track succeeded and passed gates.
    double residual = 0.0; ///< Mean absolute photometric residual.
};

/**
 * Track @p point from @p prev to @p next (coarse-to-fine across the
 * pyramids, which must have equal level counts).
 */
KltResult trackPointPyramidal(const ImagePyramid &prev,
                              const ImagePyramid &next, const Vec2 &point,
                              const KltParams &params = KltParams());

/** Track a batch of points; results align with the input order. */
std::vector<KltResult> trackPoints(const ImagePyramid &prev,
                                   const ImagePyramid &next,
                                   const std::vector<Vec2> &points,
                                   const KltParams &params = KltParams());

} // namespace illixr
