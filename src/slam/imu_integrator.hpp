/**
 * @file
 * RK4 IMU state integration — the "IMU Integrator" component of the
 * perception pipeline (paper Table II: RK4 from OpenVINS). Also used
 * internally by the MSCKF filter for state mean propagation.
 *
 * The integrator produces high-rate (e.g., 500 Hz) pose estimates by
 * propagating the most recent VIO state forward through raw IMU
 * samples; the visual pipeline reads these for reprojection.
 */

#pragma once

#include "foundation/pose.hpp"
#include "foundation/time.hpp"
#include "sensors/imu.hpp"

#include <deque>

namespace illixr {

/** Full kinematic IMU state. */
struct ImuState
{
    TimePoint time = 0;
    Quat orientation;   ///< Body to world.
    Vec3 position;      ///< World frame, meters.
    Vec3 velocity;      ///< World frame, m/s.
    Vec3 gyro_bias;
    Vec3 accel_bias;

    Pose pose() const { return Pose(orientation, position); }
};

/**
 * One RK4 step: propagate @p state by @p dt seconds assuming the
 * angular velocity / acceleration measurements vary linearly from
 * (w0, a0) to (w1, a1) over the interval. Biases are subtracted,
 * gravity is added back in the world frame.
 */
ImuState integrateRk4(const ImuState &state, const Vec3 &w0,
                      const Vec3 &a0, const Vec3 &w1, const Vec3 &a1,
                      double dt);

/**
 * Streaming integrator component: buffers IMU samples, accepts
 * (low-rate) state corrections from the VIO, and serves the latest
 * integrated "fast pose".
 */
class ImuIntegrator
{
  public:
    /** Append a new IMU sample (timestamps must be increasing). */
    void addSample(const ImuSample &sample);

    /**
     * Reset the propagation base to a corrected state (from VIO).
     * Samples older than the state are dropped; newer buffered
     * samples are immediately re-integrated on top.
     */
    void correct(const ImuState &state);

    /** Latest integrated state (after all buffered samples). */
    const ImuState &state() const { return state_; }

    /** True once at least one correction or sample has been seen. */
    bool initialized() const { return initialized_; }

  private:
    void propagateTo(const ImuSample &sample);

    ImuState state_;
    ImuSample lastSample_;
    bool hasSample_ = false;
    bool initialized_ = false;
    std::deque<ImuSample> buffer_; ///< Samples newer than state_.
};

} // namespace illixr
