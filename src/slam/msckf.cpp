#include "slam/msckf.hpp"

#include "linalg/decomp.hpp"
#include "runtime/parallel.hpp"

#include <algorithm>
#include <cmath>

namespace illixr {

namespace {

/** Copy a Mat3 into a MatX block. */
void
setBlock3(MatX &m, std::size_t r, std::size_t c, const Mat3 &b)
{
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            m(r + i, c + j) = b(i, j);
}

Mat3
identity3Scaled(double s)
{
    Mat3 m = Mat3::identity();
    return m * s;
}

} // namespace

MsckfFilter::MsckfFilter(const MsckfParams &params, const CameraRig &rig)
    : params_(params), rig_(rig)
{
}

void
MsckfFilter::initialize(const ImuState &state)
{
    state_ = state;
    clones_.clear();
    slamFeatures_.clear();
    pendingTracks_.clear();
    cov_ = MatX::zero(imuDim(), imuDim());
    auto sq = [](double v) { return v * v; };
    for (int i = 0; i < 3; ++i) {
        cov_(0 + i, 0 + i) = sq(params_.init_attitude_sigma);
        cov_(3 + i, 3 + i) = sq(params_.init_bias_gyro_sigma);
        cov_(6 + i, 6 + i) = sq(params_.init_velocity_sigma);
        cov_(9 + i, 9 + i) = sq(params_.init_bias_accel_sigma);
        cov_(12 + i, 12 + i) = sq(params_.init_position_sigma);
    }
    initialized_ = true;
    hasLastImu_ = false;
    imuBuffer_.clear();
}

void
MsckfFilter::addImu(const ImuSample &sample)
{
    imuBuffer_.push_back(sample);
}

void
MsckfFilter::propagateCovariance(const Vec3 &w_hat, const Vec3 &a_hat,
                                 double dt)
{
    const Mat3 r_wb = state_.orientation.toMatrix();

    // First-order discrete transition for the 15-dim IMU error block.
    MatX phi = MatX::identity(15);
    const Mat3 neg_wx = Mat3::skew(w_hat) * -1.0;
    const Mat3 neg_r_ax = (r_wb * Mat3::skew(a_hat)) * -1.0;
    const Mat3 neg_r = r_wb * -1.0;
    // d(theta)/d(theta) = I - [w]x dt ; d(theta)/d(bg) = -I dt
    setBlock3(phi, 0, 0, Mat3::identity() + neg_wx * dt);
    setBlock3(phi, 0, 3, identity3Scaled(-dt));
    // d(v)/d(theta), d(v)/d(ba)
    setBlock3(phi, 6, 0, neg_r_ax * dt);
    setBlock3(phi, 6, 9, neg_r * dt);
    // d(p)/d(v)
    setBlock3(phi, 12, 6, identity3Scaled(dt));

    // Discrete process noise.
    auto sq = [](double v) { return v * v; };
    const double qg = sq(params_.imu_noise.gyro_noise_density);
    const double qwg = sq(params_.imu_noise.gyro_bias_walk);
    const double qa = sq(params_.imu_noise.accel_noise_density);
    const double qwa = sq(params_.imu_noise.accel_bias_walk);
    MatX qd = MatX::zero(15, 15);
    setBlock3(qd, 0, 0, identity3Scaled(qg * dt));
    setBlock3(qd, 3, 3, identity3Scaled(qwg * dt));
    // v noise enters through R na: R I R^T = I.
    setBlock3(qd, 6, 6, identity3Scaled(qa * dt));
    setBlock3(qd, 9, 9, identity3Scaled(qwa * dt));

    const std::size_t n = stateDim();
    // P_II = Phi P_II Phi^T + Qd
    const MatX p_ii = cov_.block(0, 0, 15, 15);
    cov_.setBlock(0, 0, phi * p_ii * phi.transpose() + qd);
    if (n > 15) {
        // P_IC = Phi P_IC ; P_CI = P_IC^T
        const MatX p_ic = cov_.block(0, 15, 15, n - 15);
        const MatX new_ic = phi * p_ic;
        cov_.setBlock(0, 15, new_ic);
        cov_.setBlock(15, 0, new_ic.transpose());
    }
    cov_.symmetrize();
}

void
MsckfFilter::propagateTo(TimePoint t)
{
    while (!imuBuffer_.empty() && imuBuffer_.front().time <= t) {
        const ImuSample s = imuBuffer_.front();
        imuBuffer_.pop_front();
        if (!hasLastImu_) {
            lastImu_ = s;
            hasLastImu_ = true;
            if (state_.time == 0)
                state_.time = s.time;
            continue;
        }
        const double dt = toSeconds(s.time - lastImu_.time);
        if (dt > 0.0) {
            const Vec3 w_hat =
                (lastImu_.angular_velocity + s.angular_velocity) * 0.5 -
                state_.gyro_bias;
            const Vec3 a_hat =
                (lastImu_.linear_acceleration + s.linear_acceleration) *
                    0.5 -
                state_.accel_bias;
            state_ = integrateRk4(state_, lastImu_.angular_velocity,
                                  lastImu_.linear_acceleration,
                                  s.angular_velocity,
                                  s.linear_acceleration, dt);
            propagateCovariance(w_hat, a_hat, dt);
        }
        lastImu_ = s;
    }
    state_.time = t;
}

void
MsckfFilter::augmentClone(TimePoint t)
{
    Clone c;
    c.time = t;
    c.orientation = state_.orientation;
    c.position = state_.position;

    const std::size_t n = stateDim();
    const std::size_t n_clones = clones_.size();
    const std::size_t insert_at = cloneOffset(n_clones); // Before SLAM.

    // J maps current errors to the new clone's errors.
    MatX j = MatX::zero(6, n);
    setBlock3(j, 0, 0, Mat3::identity());   // delta-theta.
    setBlock3(j, 3, 12, Mat3::identity());  // delta-p.

    const MatX jp = j * cov_;               // 6 x n
    const MatX corner = jp.timesTranspose(j); // 6 x 6

    // Grow covariance, inserting the 6 new rows/cols at insert_at so
    // the [imu | clones | slam] layout is preserved.
    MatX grown = MatX::zero(n + 6, n + 6);
    auto map_index = [&](std::size_t old_i) {
        return old_i < insert_at ? old_i : old_i + 6;
    };
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < n; ++k)
            grown(map_index(i), map_index(k)) = cov_(i, k);
    for (std::size_t i = 0; i < 6; ++i) {
        for (std::size_t k = 0; k < n; ++k) {
            grown(insert_at + i, map_index(k)) = jp(i, k);
            grown(map_index(k), insert_at + i) = jp(i, k);
        }
        for (std::size_t k = 0; k < 6; ++k)
            grown(insert_at + i, insert_at + k) = corner(i, k);
    }
    cov_ = std::move(grown);
    clones_.push_back(c);
}

void
MsckfFilter::marginalizeOldestClone()
{
    if (clones_.empty())
        return;
    const TimePoint dead_time = clones_.front().time;
    const std::size_t off = cloneOffset(0);
    const std::size_t n = stateDim();

    MatX shrunk = MatX::zero(n - 6, n - 6);
    auto map_index = [&](std::size_t old_i) {
        return old_i < off ? old_i : old_i - 6;
    };
    for (std::size_t i = 0; i < n; ++i) {
        if (i >= off && i < off + 6)
            continue;
        for (std::size_t k = 0; k < n; ++k) {
            if (k >= off && k < off + 6)
                continue;
            shrunk(map_index(i), map_index(k)) = cov_(i, k);
        }
    }
    cov_ = std::move(shrunk);
    clones_.erase(clones_.begin());

    // Drop observations anchored to the marginalized clone.
    for (auto &[id, track] : pendingTracks_) {
        for (std::size_t i = 0; i < track.clone_times.size();) {
            if (track.clone_times[i] == dead_time) {
                track.clone_times.erase(track.clone_times.begin() + i);
                track.pixels.erase(track.pixels.begin() + i);
            } else {
                ++i;
            }
        }
    }
}

Pose
MsckfFilter::cloneWorldToCamera(std::size_t i) const
{
    const Clone &c = clones_[i];
    const Pose body_to_world(c.orientation, c.position);
    return rig_.body_to_camera * body_to_world.inverse();
}

std::optional<Vec3>
MsckfFilter::triangulateFeature(const TrackedFeature &feature) const
{
    // Collect the world->camera poses of the observing clones.
    std::vector<Pose> w2c;
    std::vector<Vec2> pixels;
    for (std::size_t i = 0; i < feature.clone_times.size(); ++i) {
        for (std::size_t ci = 0; ci < clones_.size(); ++ci) {
            if (clones_[ci].time == feature.clone_times[i]) {
                w2c.push_back(cloneWorldToCamera(ci));
                pixels.push_back(feature.pixels[i]);
                break;
            }
        }
    }
    if (w2c.size() < 2)
        return std::nullopt;

    // Initial guess: a point along the first observation ray at
    // mid-range depth.
    const Pose c2w = w2c.front().inverse();
    const Vec3 ray =
        c2w.orientation.rotate(rig_.intrinsics.unproject(pixels.front()));
    Vec3 f = c2w.position + ray * 4.0;

    // Gauss-Newton on the world-space point.
    const double fx = rig_.intrinsics.fx;
    const double fy = rig_.intrinsics.fy;
    for (int iter = 0; iter < 10; ++iter) {
        MatX jtj(3, 3);
        VecX jtr(3);
        double total_err = 0.0;
        for (std::size_t k = 0; k < w2c.size(); ++k) {
            const Vec3 pc = w2c[k].transform(f);
            if (pc.z < params_.min_depth)
                return std::nullopt;
            const Vec2 z_hat = rig_.intrinsics.project(pc);
            const Vec2 r = pixels[k] - z_hat;
            total_err += r.squaredNorm();
            // d z / d pc.
            const double iz = 1.0 / pc.z;
            double hproj[2][3] = {
                {fx * iz, 0.0, -fx * pc.x * iz * iz},
                {0.0, fy * iz, -fy * pc.y * iz * iz}};
            // d pc / d f = R_cw.
            const Mat3 r_cw = w2c[k].orientation.toMatrix();
            double jrow[2][3];
            for (int a = 0; a < 2; ++a)
                for (int b = 0; b < 3; ++b)
                    jrow[a][b] = hproj[a][0] * r_cw(0, b) +
                                 hproj[a][1] * r_cw(1, b) +
                                 hproj[a][2] * r_cw(2, b);
            const double rv[2] = {r.x, r.y};
            for (int a = 0; a < 2; ++a) {
                for (int b = 0; b < 3; ++b) {
                    jtr[b] += jrow[a][b] * rv[a];
                    for (int c = 0; c < 3; ++c)
                        jtj(b, c) += jrow[a][b] * jrow[a][c];
                }
            }
        }
        // Levenberg damping keeps poorly conditioned solves bounded.
        for (int d = 0; d < 3; ++d)
            jtj(d, d) += 1e-6;
        Cholesky chol(jtj);
        if (!chol.ok())
            return std::nullopt;
        const VecX delta = chol.solve(jtr);
        f += Vec3(delta[0], delta[1], delta[2]);
        if (delta.norm() < 1e-7)
            break;
        (void)total_err;
    }

    // Acceptance gates: depth bounds in every view and conditioning.
    double min_z = 1e18, max_reproj = 0.0;
    for (std::size_t k = 0; k < w2c.size(); ++k) {
        const Vec3 pc = w2c[k].transform(f);
        min_z = std::min(min_z, pc.z);
        if (pc.z < params_.min_depth || pc.z > params_.max_depth)
            return std::nullopt;
        const Vec2 err = pixels[k] - rig_.intrinsics.project(pc);
        max_reproj = std::max(max_reproj, err.norm());
    }
    if (max_reproj > 8.0 * params_.pixel_noise)
        return std::nullopt;
    return f;
}

double
MsckfFilter::chi2Threshold(std::size_t dof)
{
    // Wilson-Hilferty approximation of the 95th percentile.
    const double k = static_cast<double>(dof);
    const double z = 1.6449; // Phi^-1(0.95)
    const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
    return k * t * t * t;
}

bool
MsckfFilter::buildMsckfMeasurement(const TrackedFeature &feature,
                                   MatX &h_out, VecX &r_out)
{
    // Triangulation, Jacobian construction, and the left-nullspace
    // projection form the feature-initialization task (Table VI:
    // "SVD; Gauss-Newton; Jacobian; nullspace projection; GEMM").
    ScopedTask init_timer(profile_, "feature_initialization");
    const auto f_opt = triangulateFeature(feature);
    if (!f_opt)
        return false;
    const Vec3 f = *f_opt;

    // Map observation times to live clone indices.
    std::vector<std::size_t> clone_idx;
    std::vector<Vec2> pixels;
    for (std::size_t i = 0; i < feature.clone_times.size(); ++i) {
        for (std::size_t ci = 0; ci < clones_.size(); ++ci) {
            if (clones_[ci].time == feature.clone_times[i]) {
                clone_idx.push_back(ci);
                pixels.push_back(feature.pixels[i]);
                break;
            }
        }
    }
    const std::size_t m = clone_idx.size();
    if (m < 2)
        return false;

    const std::size_t n = stateDim();
    MatX hx = MatX::zero(2 * m, n);
    MatX hf = MatX::zero(2 * m, 3);
    VecX r(2 * m);

    const double fx = rig_.intrinsics.fx;
    const double fy = rig_.intrinsics.fy;
    const Mat3 r_cb = rig_.body_to_camera.orientation.toMatrix();

    for (std::size_t k = 0; k < m; ++k) {
        const std::size_t ci = clone_idx[k];
        const Clone &c = clones_[ci];
        const Mat3 r_wb = c.orientation.toMatrix();
        const Mat3 r_bw = r_wb.transpose();
        const Vec3 p_body = r_bw * (f - c.position);
        const Vec3 p_cam = r_cb * p_body + rig_.body_to_camera.position;
        if (p_cam.z < params_.min_depth)
            return false;
        const Vec2 z_hat = rig_.intrinsics.project(p_cam);
        const Vec2 res = pixels[k] - z_hat;
        r[2 * k] = res.x;
        r[2 * k + 1] = res.y;

        const double iz = 1.0 / p_cam.z;
        const double hproj[2][3] = {
            {fx * iz, 0.0, -fx * p_cam.x * iz * iz},
            {0.0, fy * iz, -fy * p_cam.y * iz * iz}};

        // d p_cam/d dtheta = R_cb [p_body]x ; d p_cam/d dp = -R_cb R_bw
        // d p_cam/d f = R_cb R_bw.
        const Mat3 d_theta = r_cb * Mat3::skew(p_body);
        const Mat3 d_p = (r_cb * r_bw) * -1.0;
        const Mat3 d_f = r_cb * r_bw;

        const std::size_t off = cloneOffset(ci);
        for (int a = 0; a < 2; ++a) {
            for (int b = 0; b < 3; ++b) {
                double acc_t = 0.0, acc_p = 0.0, acc_f = 0.0;
                for (int c2 = 0; c2 < 3; ++c2) {
                    acc_t += hproj[a][c2] * d_theta(c2, b);
                    acc_p += hproj[a][c2] * d_p(c2, b);
                    acc_f += hproj[a][c2] * d_f(c2, b);
                }
                hx(2 * k + a, off + b) = acc_t;
                hx(2 * k + a, off + 3 + b) = acc_p;
                hf(2 * k + a, b) = acc_f;
            }
        }
    }

    // Left-nullspace projection removes the feature error.
    if (2 * m <= 3)
        return false;
    const MatX nt = leftNullspaceTranspose(hf);
    MatX h = nt * hx;
    VecX rp = nt * r;
    init_timer.finish();

    // Chi-squared gate (part of the MSCKF update task).
    ScopedTask gate_timer(profile_, "msckf_update");
    const MatX hp = h * cov_;
    MatX s = hp.timesTranspose(h);
    const double sigma2 = params_.pixel_noise * params_.pixel_noise;
    for (std::size_t i = 0; i < s.rows(); ++i)
        s(i, i) += sigma2;
    Cholesky chol(s);
    if (!chol.ok())
        return false;
    const VecX sinv_r = chol.solve(rp);
    const double gamma = rp.dot(sinv_r);
    if (gamma >
        params_.chi2_multiplier * chi2Threshold(h.rows()))
        return false;

    h_out = std::move(h);
    r_out = std::move(rp);
    return true;
}

void
MsckfFilter::applyUpdate(const MatX &h, const VecX &r, double sigma)
{
    MatX h_used = h;
    VecX r_used = r;
    const std::size_t n = stateDim();

    // QR measurement compression when over-determined.
    if (h.rows() > n) {
        HouseholderQR qr(h);
        const MatX full_r = qr.matrixR(); // n x n upper triangular.
        const VecX qtr = qr.applyQT(r);
        h_used = full_r.block(0, 0, n, n);
        r_used = qtr.segment(0, n);
    }

    const MatX pht = cov_.timesTranspose(h_used); // n x m
    MatX s = h_used * pht;                        // m x m
    const double sigma2 = sigma * sigma;
    for (std::size_t i = 0; i < s.rows(); ++i)
        s(i, i) += sigma2;
    Cholesky chol(s);
    if (!chol.ok())
        return;

    // K = P H^T S^-1  (solve S K^T = (P H^T)^T column-wise).
    const MatX kt = chol.solve(pht.transpose()); // m x n
    const MatX k = kt.transpose();               // n x m

    const VecX dx = k * r_used;
    injectCorrection(dx);

    // P <- P - K S K^T == P - K (P H^T)^T.
    cov_ -= k * pht.transpose();
    cov_.symmetrize();
    // Floor tiny negative diagonals arising from roundoff.
    for (std::size_t i = 0; i < cov_.rows(); ++i)
        cov_(i, i) = std::max(cov_(i, i), 1e-14);
    ++updateCount_;
}

void
MsckfFilter::injectCorrection(const VecX &dx)
{
    state_.orientation =
        (state_.orientation * Quat::exp(Vec3(dx[0], dx[1], dx[2])))
            .normalized();
    state_.gyro_bias += Vec3(dx[3], dx[4], dx[5]);
    state_.velocity += Vec3(dx[6], dx[7], dx[8]);
    state_.accel_bias += Vec3(dx[9], dx[10], dx[11]);
    state_.position += Vec3(dx[12], dx[13], dx[14]);

    for (std::size_t i = 0; i < clones_.size(); ++i) {
        const std::size_t off = cloneOffset(i);
        clones_[i].orientation =
            (clones_[i].orientation *
             Quat::exp(Vec3(dx[off], dx[off + 1], dx[off + 2])))
                .normalized();
        clones_[i].position +=
            Vec3(dx[off + 3], dx[off + 4], dx[off + 5]);
    }
    for (std::size_t i = 0; i < slamFeatures_.size(); ++i) {
        const std::size_t off = slamOffset(i);
        slamFeatures_[i].position +=
            Vec3(dx[off], dx[off + 1], dx[off + 2]);
    }
}

void
MsckfFilter::pruneSlamFeatures()
{
    for (std::size_t i = 0; i < slamFeatures_.size();) {
        if (slamFeatures_[i].missed_frames > 3) {
            const std::size_t off = slamOffset(i);
            const std::size_t n = stateDim();
            MatX shrunk = MatX::zero(n - 3, n - 3);
            auto map_index = [&](std::size_t old_i) {
                return old_i < off ? old_i : old_i - 3;
            };
            for (std::size_t a = 0; a < n; ++a) {
                if (a >= off && a < off + 3)
                    continue;
                for (std::size_t b = 0; b < n; ++b) {
                    if (b >= off && b < off + 3)
                        continue;
                    shrunk(map_index(a), map_index(b)) = cov_(a, b);
                }
            }
            cov_ = std::move(shrunk);
            slamFeatures_.erase(slamFeatures_.begin() + i);
        } else {
            ++i;
        }
    }
}

void
MsckfFilter::processFeatures(TimePoint frame_time,
                             const std::vector<FeatureObservation> &obs,
                             const std::vector<std::uint64_t> &lost)
{
    if (!initialized_)
        return;

    // --- Propagation (attributed to "other" like OpenVINS's misc). ---
    {
        ScopedTask timer(profile_, "other");
        propagateTo(frame_time);
        augmentClone(frame_time);
    }

    // Index SLAM features by id.
    std::map<std::uint64_t, std::size_t> slam_by_id;
    for (std::size_t i = 0; i < slamFeatures_.size(); ++i)
        slam_by_id[slamFeatures_[i].id] = i;

    // --- SLAM update: persistent features observed this frame. ---
    {
        ScopedTask timer(profile_, "slam_update");
        std::vector<std::pair<std::size_t, Vec2>> slam_obs;
        std::vector<bool> seen(slamFeatures_.size(), false);
        for (const auto &o : obs) {
            auto it = slam_by_id.find(o.feature_id);
            if (it != slam_by_id.end()) {
                slam_obs.emplace_back(it->second, o.pixel);
                seen[it->second] = true;
            }
        }
        for (std::size_t i = 0; i < slamFeatures_.size(); ++i) {
            if (!seen[i])
                ++slamFeatures_[i].missed_frames;
            else
                slamFeatures_[i].missed_frames = 0;
        }

        if (!slam_obs.empty() && !clones_.empty()) {
            const std::size_t ci = clones_.size() - 1; // Newest clone.
            const Clone &c = clones_[ci];
            const Mat3 r_wb = c.orientation.toMatrix();
            const Mat3 r_bw = r_wb.transpose();
            const Mat3 r_cb = rig_.body_to_camera.orientation.toMatrix();
            const double fx = rig_.intrinsics.fx;
            const double fy = rig_.intrinsics.fy;

            const std::size_t n = stateDim();
            std::vector<double> h_rows;
            std::vector<double> r_vals;
            std::size_t rows = 0;
            // One reusable Jacobian-row buffer from the arena instead
            // of a fresh vector per measurement row.
            ArenaFrame scratch;
            double *row = scratch.alloc<double>(n);

            for (const auto &[fi, pixel] : slam_obs) {
                const Vec3 f = slamFeatures_[fi].position;
                const Vec3 p_body = r_bw * (f - c.position);
                const Vec3 p_cam =
                    r_cb * p_body + rig_.body_to_camera.position;
                if (p_cam.z < params_.min_depth)
                    continue;
                const Vec2 z_hat = rig_.intrinsics.project(p_cam);
                const Vec2 res = pixel - z_hat;
                // Cheap outlier gate before the full chi2 machinery.
                if (res.norm() > 12.0 * params_.pixel_noise)
                    continue;

                const double iz = 1.0 / p_cam.z;
                const double hproj[2][3] = {
                    {fx * iz, 0.0, -fx * p_cam.x * iz * iz},
                    {0.0, fy * iz, -fy * p_cam.y * iz * iz}};
                const Mat3 d_theta = r_cb * Mat3::skew(p_body);
                const Mat3 d_p = (r_cb * r_bw) * -1.0;
                const Mat3 d_f = r_cb * r_bw;
                const std::size_t coff = cloneOffset(ci);
                const std::size_t foff = slamOffset(fi);
                for (int a = 0; a < 2; ++a) {
                    std::fill(row, row + n, 0.0);
                    for (int b = 0; b < 3; ++b) {
                        double acc_t = 0.0, acc_p = 0.0, acc_f = 0.0;
                        for (int c2 = 0; c2 < 3; ++c2) {
                            acc_t += hproj[a][c2] * d_theta(c2, b);
                            acc_p += hproj[a][c2] * d_p(c2, b);
                            acc_f += hproj[a][c2] * d_f(c2, b);
                        }
                        row[coff + b] = acc_t;
                        row[coff + 3 + b] = acc_p;
                        row[foff + b] = acc_f;
                    }
                    h_rows.insert(h_rows.end(), row, row + n);
                    r_vals.push_back(a == 0 ? res.x : res.y);
                    ++rows;
                }
            }

            if (rows > 0) {
                MatX h(rows, n);
                VecX r(rows);
                for (std::size_t i = 0; i < rows; ++i) {
                    r[i] = r_vals[i];
                    for (std::size_t j = 0; j < n; ++j)
                        h(i, j) = h_rows[i * n + j];
                }
                applyUpdate(h, r, 2.0 * params_.pixel_noise);
            }
        }
    }

    // --- Track bookkeeping for non-SLAM features. ---
    for (const auto &o : obs) {
        if (slam_by_id.count(o.feature_id))
            continue;
        TrackedFeature &track = pendingTracks_[o.feature_id];
        track.clone_times.push_back(frame_time);
        track.pixels.push_back(o.pixel);
    }

    // --- MSCKF update: consume features whose tracks just ended. ---
    {
        std::vector<MatX> h_list;
        std::vector<VecX> r_list;
        std::size_t total_rows = 0;
        for (std::uint64_t id : lost) {
            auto it = pendingTracks_.find(id);
            if (it == pendingTracks_.end())
                continue;
            if (it->second.clone_times.size() >=
                params_.min_obs_for_update) {
                MatX h;
                VecX r;
                if (buildMsckfMeasurement(it->second, h, r)) {
                    total_rows += h.rows();
                    h_list.push_back(std::move(h));
                    r_list.push_back(std::move(r));
                }
            }
            pendingTracks_.erase(it);
        }
        if (total_rows > 0) {
            ScopedTask timer(profile_, "msckf_update");
            const std::size_t n = stateDim();
            MatX h(total_rows, n);
            VecX r(total_rows);
            std::size_t row = 0;
            for (std::size_t i = 0; i < h_list.size(); ++i) {
                h.setBlock(row, 0, h_list[i]);
                for (std::size_t k = 0; k < r_list[i].size(); ++k)
                    r[row + k] = r_list[i][k];
                row += h_list[i].rows();
            }
            applyUpdate(h, r, params_.pixel_noise);
        }
    }

    // --- Feature initialization: promote long tracks to SLAM. ---
    {
        ScopedTask timer(profile_, "feature_initialization");
        if (slamFeatures_.size() < params_.max_slam_features) {
            std::vector<std::uint64_t> promoted;
            for (auto &[id, track] : pendingTracks_) {
                if (slamFeatures_.size() >= params_.max_slam_features)
                    break;
                if (track.clone_times.size() < params_.min_obs_for_slam)
                    continue;
                const auto f = triangulateFeature(track);
                if (!f)
                    continue;
                SlamFeature sf;
                sf.id = id;
                sf.position = *f;
                slamFeatures_.push_back(sf);
                // Grow covariance with an (uncorrelated, inflated)
                // prior — a documented simplification of OpenVINS's
                // delayed initialization.
                const std::size_t n = stateDim(); // Includes new feature.
                MatX grown = MatX::zero(n, n);
                grown.setBlock(0, 0, cov_);
                const double s2 = params_.slam_feature_init_sigma *
                                  params_.slam_feature_init_sigma;
                for (int d = 0; d < 3; ++d)
                    grown(n - 3 + d, n - 3 + d) = s2;
                cov_ = std::move(grown);
                promoted.push_back(id);
            }
            for (std::uint64_t id : promoted)
                pendingTracks_.erase(id);
        }
    }

    // --- Marginalization: bound the window and the SLAM map. ---
    {
        ScopedTask timer(profile_, "marginalization");
        pruneSlamFeatures();
        while (clones_.size() > params_.max_clones)
            marginalizeOldestClone();
    }
}

Vec3
MsckfFilter::positionSigma() const
{
    if (cov_.rows() < 15)
        return Vec3(0, 0, 0);
    return {std::sqrt(cov_(12, 12)), std::sqrt(cov_(13, 13)),
            std::sqrt(cov_(14, 14))};
}

VioSystem::VioSystem(const MsckfParams &filter_params,
                     const TrackerParams &tracker_params,
                     const CameraRig &rig)
    : tracker_(tracker_params), filter_(filter_params, rig)
{
}

const ImuState &
VioSystem::processFrame(TimePoint time, const ImageF &image)
{
    const auto obs = tracker_.processFrame(image);
    filter_.processFeatures(time, obs, tracker_.lostTracks());
    return filter_.state();
}

const ImuState &
VioSystem::processFrame(TimePoint time,
                        std::shared_ptr<const ImageF> image)
{
    const auto obs = tracker_.processFrame(std::move(image));
    filter_.processFeatures(time, obs, tracker_.lostTracks());
    return filter_.state();
}

TaskProfile
VioSystem::combinedProfile() const
{
    TaskProfile combined;
    for (const auto &name : tracker_.profile().taskNames())
        combined.add(name, tracker_.profile().taskSeconds(name));
    for (const auto &name : filter_.profile().taskNames())
        combined.add(name, filter_.profile().taskSeconds(name));
    return combined;
}

} // namespace illixr
