#include "metrics/qoe.hpp"

#include "foundation/stats.hpp"
#include "image/flip.hpp"
#include "image/ssim.hpp"

#include <algorithm>

namespace illixr {

Pose
interpolatePoseSeries(const std::vector<StampedPose> &series, TimePoint t)
{
    if (series.empty())
        return Pose::identity();
    if (t <= series.front().time)
        return series.front().pose;
    if (t >= series.back().time)
        return series.back().pose;
    auto cmp = [](const StampedPose &p, TimePoint value) {
        return p.time < value;
    };
    const auto hi = std::lower_bound(series.begin(), series.end(), t, cmp);
    const auto lo = hi - 1;
    const double span = static_cast<double>(hi->time - lo->time);
    const double f =
        span > 0.0 ? static_cast<double>(t - lo->time) / span : 0.0;
    return lo->pose.interpolate(hi->pose, f);
}

QoeResult
evaluateImageQoe(AppId app_id, const SyntheticDataset &dataset,
                 const QoeInputs &inputs, int eval_count, int eye_size)
{
    QoeResult result;
    if (inputs.estimated_poses.empty() || eval_count <= 0)
        return result;

    AppConfig app_cfg;
    app_cfg.eye_width = eye_size;
    app_cfg.eye_height = eye_size;
    XrApplication actual_app(app_id, app_cfg);
    XrApplication ideal_app(app_id, app_cfg);

    TimewarpParams tw;
    tw.fov_y_rad = app_cfg.fov_y_rad;
    Timewarp warp_actual(tw), warp_ideal(tw);

    const TimePoint t0 = inputs.estimated_poses.front().time;
    const TimePoint t1 = inputs.estimated_poses.back().time;
    const TimePoint span = std::max<TimePoint>(1, t1 - t0);

    RunningStat ssim_stat, flip_stat;
    for (int k = 0; k < eval_count; ++k) {
        // Spread evaluation times over the middle of the run.
        const TimePoint t =
            t0 + span * (k + 1) / (eval_count + 1);

        // --- Actual system ---
        // The application rendered its last frame at the achieved
        // rate, with the pose the system estimated back then.
        const TimePoint app_time =
            t - (t % inputs.app_frame_interval == 0
                     ? 0
                     : t % inputs.app_frame_interval);
        const Pose render_pose =
            interpolatePoseSeries(inputs.estimated_poses, app_time);
        // The display pose is the system's estimate, aged by the
        // measured pose latency.
        const Pose display_pose = interpolatePoseSeries(
            inputs.estimated_poses, t - inputs.display_pose_age);

        const StereoFrame actual_frame =
            actual_app.renderFrame(render_pose, toSeconds(app_time));
        const RgbImage actual = warp_actual.reproject(
            actual_frame.left, render_pose, display_pose);

        // --- Idealized system: ground truth, full rate (fresh
        //     scene-simulation time), fresh pose.
        const Pose gt_pose = dataset.groundTruthPose(t);
        const StereoFrame ideal_frame =
            ideal_app.renderFrame(gt_pose, toSeconds(t));
        const RgbImage ideal =
            warp_ideal.reproject(ideal_frame.left, gt_pose, gt_pose);

        ssim_stat.add(ssim(actual, ideal));
        flip_stat.add(1.0 - flip(actual, ideal));
    }

    result.ssim_mean = ssim_stat.mean();
    result.ssim_std = ssim_stat.stddev();
    result.one_minus_flip_mean = flip_stat.mean();
    result.one_minus_flip_std = flip_stat.stddev();
    result.frames = ssim_stat.count();
    return result;
}

} // namespace illixr
