/**
 * @file
 * Motion-to-photon (MTP) latency, computed exactly as §III-E:
 *
 *     latency = t_imu_age + t_reprojection + t_swap
 *
 * where t_imu_age is the age of the IMU-derived pose the reprojection
 * used, t_reprojection is the reprojection's own execution time, and
 * t_swap is the wait until the frame buffer is accepted for display
 * (the next vsync at or after completion). t_display is excluded,
 * as in the paper.
 */

#pragma once

#include "foundation/stats.hpp"
#include "runtime/sim_scheduler.hpp"

#include <vector>

namespace illixr {

/** MTP series for a run. */
struct MtpSeries
{
    SampleSeries latency_ms;
    SampleSeries imu_age_ms;
    SampleSeries reprojection_ms;
    SampleSeries swap_ms;
    std::size_t missed_vsync = 0; ///< Frames completing after target.
};

/**
 * Combine the scheduler's reprojection invocation records with the
 * per-invocation IMU-age samples published by the reprojection
 * plugin (index-aligned).
 *
 * @param reproj       TaskStats of the vsync-aligned reprojection.
 * @param imu_age_ms   IMU age logged by the plugin per invocation.
 * @param vsync        Display refresh period.
 */
MtpSeries computeMtp(const TaskStats &reproj,
                     const std::vector<double> &imu_age_ms,
                     Duration vsync);

} // namespace illixr
