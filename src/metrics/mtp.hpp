/**
 * @file
 * Motion-to-photon (MTP) latency, computed exactly as §III-E:
 *
 *     latency = t_imu_age + t_reprojection + t_swap
 *
 * where t_imu_age is the age of the IMU-derived pose the reprojection
 * used, t_reprojection is the reprojection's own execution time, and
 * t_swap is the wait until the frame buffer is accepted for display
 * (the next vsync at or after completion). t_display is excluded,
 * as in the paper.
 */

#pragma once

#include "foundation/stats.hpp"
#include "runtime/executor.hpp"
#include "trace/trace.hpp"

#include <map>
#include <string>
#include <vector>

namespace illixr {

/** MTP series for a run. */
struct MtpSeries
{
    SampleSeries latency_ms;
    SampleSeries imu_age_ms;
    SampleSeries reprojection_ms;
    SampleSeries swap_ms;
    std::size_t missed_vsync = 0; ///< Frames completing after target.
};

/**
 * Combine the scheduler's reprojection invocation records with the
 * per-invocation IMU-age samples published by the reprojection
 * plugin (index-aligned).
 *
 * @param reproj       TaskStats of the vsync-aligned reprojection.
 * @param imu_age_ms   IMU age logged by the plugin per invocation.
 * @param vsync        Display refresh period.
 */
MtpSeries computeMtp(const TaskStats &reproj,
                     const std::vector<double> &imu_age_ms,
                     Duration vsync);

/**
 * MTP derived from the causal trace instead of index-aligned plugin
 * logs: every displayed frame is resolved through its parent links to
 * the pose/IMU/camera events it was actually computed from.
 */
struct LineageMtp
{
    /** Same decomposition as computeMtp, but per traced frame. */
    MtpSeries mtp;

    /**
     * Stage-to-photon latency per upstream topic: time from the
     * frame's latest ancestor on that topic to the frame's display
     * vsync (ms). Keys are the stage topic names.
     */
    std::map<std::string, SampleSeries> stage_to_photon_ms;

    std::size_t frames = 0;   ///< Displayed frames traced.
    std::size_t resolved = 0; ///< Frames with camera + IMU lineage.
};

/**
 * Walk the trace: for each event on @p frame_topic, find the warp
 * span that produced it, its display vsync, and its latest ancestor
 * on each of @p stage_topics.
 */
LineageMtp computeLineageMtp(const TraceSink &sink, Duration vsync,
                             const std::string &frame_topic,
                             const std::vector<std::string> &stage_topics);

} // namespace illixr
