/**
 * @file
 * Offline image-quality evaluation (paper §III-E, Table V).
 *
 * The actual system's displayed image is reconstructed offline: the
 * application frame is re-rendered at the pose the system *believed*
 * it had (its VIO estimate, sampled at the achieved application
 * rate), then reprojected with the system's display-time pose
 * estimate. The idealized reference renders from ground-truth poses
 * at full rate and reprojects with the ground-truth display pose.
 * SSIM and 1-FLIP between the two quantify end-to-end visual QoE,
 * exactly mirroring the paper's methodology of collecting renderer
 * images + poses and applying reprojection offline.
 */

#pragma once

#include "foundation/pose.hpp"
#include "render/app.hpp"
#include "sensors/dataset.hpp"
#include "visual/timewarp.hpp"

#include <vector>

namespace illixr {

/** Inputs describing how the system under test behaved. */
struct QoeInputs
{
    /** VIO pose estimates (time-stamped), from the integrated run. */
    std::vector<StampedPose> estimated_poses;
    /** Achieved application frame interval (ns). */
    Duration app_frame_interval = 8'333'333;
    /** Pose age at reprojection time (ns), e.g. mean MTP. */
    Duration display_pose_age = 2 * kMillisecond;
};

/** Table V outputs. */
struct QoeResult
{
    double ssim_mean = 0.0;
    double ssim_std = 0.0;
    double one_minus_flip_mean = 0.0;
    double one_minus_flip_std = 0.0;
    std::size_t frames = 0;
};

/**
 * Evaluate image QoE of a system run against the idealized system.
 *
 * @param app_id     Application to render (Table V uses Sponza).
 * @param dataset    Ground-truth dataset the system ran on.
 * @param inputs     Behaviour of the system under test.
 * @param eval_count Number of evaluation timestamps.
 * @param eye_size   Render resolution for the offline evaluation.
 */
QoeResult evaluateImageQoe(AppId app_id, const SyntheticDataset &dataset,
                           const QoeInputs &inputs, int eval_count = 8,
                           int eye_size = 96);

/** Interpolate a stamped-pose series at time @p t (clamped). */
Pose interpolatePoseSeries(const std::vector<StampedPose> &series,
                           TimePoint t);

} // namespace illixr
