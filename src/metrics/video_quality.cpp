#include "metrics/video_quality.hpp"

#include "foundation/stats.hpp"

#include <cmath>

namespace illixr {

namespace {

/** Mean absolute luminance difference between two frames. */
double
meanAbsDiff(const ImageF &a, const ImageF &b)
{
    double acc = 0.0;
    for (int y = 0; y < a.height(); ++y)
        for (int x = 0; x < a.width(); ++x)
            acc += std::fabs(a.at(x, y) - b.at(x, y));
    return acc / static_cast<double>(a.pixelCount());
}

} // namespace

TemporalQualityResult
analyzeTemporalQuality(const std::vector<ImageF> &frames,
                       double repeat_threshold)
{
    TemporalQualityResult result;
    if (frames.size() < 3)
        return result;

    RunningStat change;
    std::size_t repeats = 0;
    for (std::size_t i = 1; i < frames.size(); ++i) {
        const double d = meanAbsDiff(frames[i - 1], frames[i]);
        change.add(d);
        if (d < repeat_threshold)
            ++repeats;
    }

    result.frames = frames.size();
    result.mean_change = change.mean();
    result.change_jitter = change.stddev();
    result.repeat_fraction =
        static_cast<double>(repeats) /
        static_cast<double>(frames.size() - 1);
    // Smoothness: penalize both relative jitter of the change series
    // and outright frame repeats.
    const double cv = change.mean() > 1e-12
                          ? change.stddev() / change.mean()
                          : 0.0;
    result.smoothness = std::max(
        0.0, 1.0 - 0.5 * cv - result.repeat_fraction);
    return result;
}

} // namespace illixr
