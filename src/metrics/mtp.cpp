#include "metrics/mtp.hpp"

#include <algorithm>

namespace illixr {

MtpSeries
computeMtp(const TaskStats &reproj, const std::vector<double> &imu_age_ms,
           Duration vsync)
{
    MtpSeries out;
    const std::size_t n =
        std::min(reproj.records.size(), imu_age_ms.size());
    for (std::size_t i = 0; i < n; ++i) {
        const InvocationRecord &rec = reproj.records[i];
        // Display happens at the first vsync boundary at or after the
        // reprojection completes.
        const TimePoint display =
            ((rec.completion + vsync - 1) / vsync) * vsync;
        if (rec.target_vsync != 0 && display > rec.target_vsync)
            ++out.missed_vsync;
        const double swap_ms = toMilliseconds(display - rec.completion);
        const double reproj_ms = toMilliseconds(rec.virtual_duration);
        const double latency = imu_age_ms[i] + reproj_ms + swap_ms;
        out.latency_ms.add(latency);
        out.imu_age_ms.add(imu_age_ms[i]);
        out.reprojection_ms.add(reproj_ms);
        out.swap_ms.add(swap_ms);
    }
    return out;
}

LineageMtp
computeLineageMtp(const TraceSink &sink, Duration vsync,
                  const std::string &frame_topic,
                  const std::vector<std::string> &stage_topics)
{
    LineageMtp out;
    for (const EventRecord *frame : sink.eventsOnTopic(frame_topic)) {
        ++out.frames;

        // The producing (reprojection) span pins the frame on the
        // timeline; fall back to the publish time when untraced.
        const Span *span = sink.producingSpan(frame->id);
        const TimePoint completion =
            span ? span->completion : frame->publish_time;
        const TimePoint display =
            vsync > 0 ? ((completion + vsync - 1) / vsync) * vsync
                      : completion;

        bool complete = true;
        const EventRecord *imu = nullptr;
        for (const std::string &topic : stage_topics) {
            const EventRecord *anc =
                sink.latestAncestorOn(frame->id, topic);
            if (!anc) {
                complete = false;
                continue;
            }
            out.stage_to_photon_ms[topic].add(toMilliseconds(
                std::max<Duration>(0, display - anc->event_time)));
            if (topic == "imu")
                imu = anc;
        }
        if (complete)
            ++out.resolved;

        // §III-E decomposition, lineage edition: the IMU age is how
        // stale the newest IMU sample in the frame's ancestry was at
        // warp time.
        const double imu_age =
            imu ? toMilliseconds(std::max<Duration>(
                      0, frame->publish_time - imu->event_time))
                : 0.0;
        const double reproj =
            span ? toMilliseconds(span->completion - span->start) : 0.0;
        const double swap = toMilliseconds(display - completion);
        out.mtp.imu_age_ms.add(imu_age);
        out.mtp.reprojection_ms.add(reproj);
        out.mtp.swap_ms.add(swap);
        out.mtp.latency_ms.add(imu_age + reproj + swap);
    }
    return out;
}

} // namespace illixr
