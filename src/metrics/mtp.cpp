#include "metrics/mtp.hpp"

#include <algorithm>

namespace illixr {

MtpSeries
computeMtp(const TaskStats &reproj, const std::vector<double> &imu_age_ms,
           Duration vsync)
{
    MtpSeries out;
    const std::size_t n =
        std::min(reproj.records.size(), imu_age_ms.size());
    for (std::size_t i = 0; i < n; ++i) {
        const InvocationRecord &rec = reproj.records[i];
        // Display happens at the first vsync boundary at or after the
        // reprojection completes.
        const TimePoint display =
            ((rec.completion + vsync - 1) / vsync) * vsync;
        if (rec.target_vsync != 0 && display > rec.target_vsync)
            ++out.missed_vsync;
        const double swap_ms = toMilliseconds(display - rec.completion);
        const double reproj_ms = toMilliseconds(rec.virtual_duration);
        const double latency = imu_age_ms[i] + reproj_ms + swap_ms;
        out.latency_ms.add(latency);
        out.imu_age_ms.add(imu_age_ms[i]);
        out.reprojection_ms.add(reproj_ms);
        out.swap_ms.add(swap_ms);
    }
    return out;
}

} // namespace illixr
