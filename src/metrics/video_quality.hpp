/**
 * @file
 * Temporal video-quality metrics.
 *
 * The paper (§II-C) notes that SSIM and FLIP are *image* metrics
 * while the visual pipeline's output is a *video*, "requiring
 * consideration of aspects such as temporal coherence and smoothness
 * (jitter) as well", citing VMAF and Video ATLAS as directions. This
 * module provides those planned measurements: frame-to-frame change
 * statistics that expose judder (repeated frames followed by jumps)
 * and flicker, which the per-image metrics cannot see.
 */

#pragma once

#include "image/image.hpp"

#include <vector>

namespace illixr {

/** Temporal statistics of a displayed frame sequence. */
struct TemporalQualityResult
{
    /** Mean frame-to-frame absolute luminance change. */
    double mean_change = 0.0;
    /** Std dev of the change series — the judder/jitter measure:
     *  smooth motion has near-constant change; frame repeats followed
     *  by catch-up jumps inflate it. */
    double change_jitter = 0.0;
    /** Fraction of consecutive pairs that are (near-)identical —
     *  repeated frames, i.e. missed display updates. */
    double repeat_fraction = 0.0;
    /** Smoothness score in [0, 1]: 1 = perfectly even motion. */
    double smoothness = 0.0;
    std::size_t frames = 0;
};

/**
 * Analyze a sequence of displayed frames (>= 3 required; fewer
 * returns all-zero).
 *
 * @param repeat_threshold Mean-abs-difference below which two
 *        consecutive frames count as a repeat.
 */
TemporalQualityResult analyzeTemporalQuality(
    const std::vector<ImageF> &frames, double repeat_threshold = 1e-4);

} // namespace illixr
