#include "metrics/audio_quality.hpp"

#include "signal/fft.hpp"

#include <algorithm>
#include <cmath>

namespace illixr {

namespace {

/** Log-magnitude spectrum of one windowed block. */
std::vector<double>
logSpectrum(const std::vector<double> &signal, std::size_t offset,
            std::size_t window, const std::vector<double> &hann)
{
    std::vector<Complex> buf(window);
    for (std::size_t i = 0; i < window; ++i)
        buf[i] = Complex(signal[offset + i] * hann[i], 0.0);
    fft(buf, false);
    std::vector<double> mag(window / 2);
    for (std::size_t k = 0; k < window / 2; ++k)
        mag[k] = std::log10(std::abs(buf[k]) + 1e-9);
    return mag;
}

/** Similarity of two log-spectra via normalized correlation-style
 *  distance, mapped to [0, 1]. */
double
spectralSimilarity(const std::vector<double> &a,
                   const std::vector<double> &b)
{
    double diff = 0.0, scale = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
        diff += (a[k] - b[k]) * (a[k] - b[k]);
        scale += 1.0;
    }
    const double rms = std::sqrt(diff / std::max(1.0, scale));
    // 1 at identity; ~0 once spectra differ by >= ~2 decades RMS.
    return std::max(0.0, 1.0 - rms / 2.0);
}

/** Interaural cues of one block: level difference (dB) and a
 *  cross-correlation-based time-difference estimate (samples). */
void
interauralCues(const std::vector<double> &left,
               const std::vector<double> &right, std::size_t offset,
               std::size_t window, double &ild_db, double &itd_samples)
{
    double el = 1e-12, er = 1e-12;
    for (std::size_t i = 0; i < window; ++i) {
        el += left[offset + i] * left[offset + i];
        er += right[offset + i] * right[offset + i];
    }
    ild_db = 10.0 * std::log10(el / er);

    // Cross-correlation over ±1 ms.
    const int max_lag = 48;
    double best = -1e300;
    int best_lag = 0;
    for (int lag = -max_lag; lag <= max_lag; ++lag) {
        double acc = 0.0;
        for (std::size_t i = max_lag;
             i < window - static_cast<std::size_t>(max_lag); ++i)
            acc += left[offset + i] * right[offset + i + lag];
        if (acc > best) {
            best = acc;
            best_lag = lag;
        }
    }
    itd_samples = static_cast<double>(best_lag);
}

} // namespace

AudioQualityResult
compareBinaural(const std::vector<double> &test_left,
                const std::vector<double> &test_right,
                const std::vector<double> &ref_left,
                const std::vector<double> &ref_right,
                const AudioQualityParams &params)
{
    AudioQualityResult result;
    const std::size_t n = test_left.size();
    if (n != test_right.size() || n != ref_left.size() ||
        n != ref_right.size() || n < params.window)
        return result;

    const auto hann = hannWindow(params.window);
    double lq_sum = 0.0, loc_sum = 0.0;
    std::size_t blocks = 0;

    for (std::size_t off = 0; off + params.window <= n;
         off += params.window / 2) {
        // Listening quality from the mid (L+R) signal.
        std::vector<double> test_mid(params.window),
            ref_mid(params.window);
        for (std::size_t i = 0; i < params.window; ++i) {
            test_mid[i] =
                0.5 * (test_left[off + i] + test_right[off + i]);
            ref_mid[i] = 0.5 * (ref_left[off + i] + ref_right[off + i]);
        }
        const auto st = logSpectrum(test_mid, 0, params.window, hann);
        const auto sr = logSpectrum(ref_mid, 0, params.window, hann);
        lq_sum += spectralSimilarity(st, sr);

        // Localization accuracy from interaural cues.
        double ild_t, itd_t, ild_r, itd_r;
        interauralCues(test_left, test_right, off, params.window, ild_t,
                       itd_t);
        interauralCues(ref_left, ref_right, off, params.window, ild_r,
                       itd_r);
        const double ild_sim =
            std::max(0.0, 1.0 - std::fabs(ild_t - ild_r) / 12.0);
        const double itd_sim =
            std::max(0.0, 1.0 - std::fabs(itd_t - itd_r) / 24.0);
        loc_sum += 0.5 * (ild_sim + itd_sim);
        ++blocks;
    }

    if (blocks == 0)
        return result;
    result.blocks = blocks;
    result.listening_quality = lq_sum / static_cast<double>(blocks);
    result.localization_accuracy = loc_sum / static_cast<double>(blocks);
    result.overall = std::sqrt(result.listening_quality *
                               result.localization_accuracy);
    return result;
}

} // namespace illixr
