#include "metrics/telemetry.hpp"

#include <cstdio>
#include <sstream>

namespace illixr {

bool
writeSeriesCsv(const SampleSeries &series, const std::string &path,
               const std::string &value_name)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "index,%s\n", value_name.c_str());
    const auto &samples = series.samples();
    for (std::size_t i = 0; i < samples.size(); ++i)
        std::fprintf(f, "%zu,%.9g\n", i, samples[i]);
    std::fclose(f);
    return true;
}

bool
writePoseCsv(const std::vector<StampedPose> &trajectory,
             const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "time_ns,px,py,pz,qw,qx,qy,qz\n");
    for (const StampedPose &sp : trajectory) {
        const Pose &p = sp.pose;
        std::fprintf(f,
                     "%lld,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g\n",
                     static_cast<long long>(sp.time), p.position.x,
                     p.position.y, p.position.z, p.orientation.w,
                     p.orientation.x, p.orientation.y, p.orientation.z);
    }
    std::fclose(f);
    return true;
}

void
TextTable::setHeader(const std::vector<std::string> &header)
{
    header_ = header;
}

void
TextTable::addRow(const std::vector<std::string> &row)
{
    rows_.push_back(row);
}

std::string
TextTable::render() const
{
    // Column widths.
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&width](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i >= width.size())
                width.resize(i + 1, 0);
            width[i] = std::max(width[i], row[i].size());
        }
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < width.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : "";
            out << cell;
            if (i + 1 < width.size())
                out << std::string(width[i] - cell.size() + 2, ' ');
        }
        out << "\n";
    };
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width)
        total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
TextTable::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::meanStd(double mean, double std, int precision)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%.*f±%.*f", precision, mean,
                  precision, std);
    return buf;
}

} // namespace illixr
