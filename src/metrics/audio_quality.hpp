/**
 * @file
 * Spatial-audio quality metric.
 *
 * The paper notes (§II-C) "We do not yet compute a quality metric for
 * audio beyond bitrate, but plan to add the recently developed
 * AMBIQUAL". This module provides that planned capability: an
 * AMBIQUAL-inspired full-reference metric for binaural renders,
 * combining a *listening quality* term (log-spectral similarity of
 * the mid signal) with a *localization accuracy* term (similarity of
 * the interaural level/time cues), each in [0, 1].
 */

#pragma once

#include <cstddef>
#include <vector>

namespace illixr {

/** Metric output. */
struct AudioQualityResult
{
    double listening_quality = 0.0;    ///< Spectral fidelity, [0, 1].
    double localization_accuracy = 0.0; ///< Interaural-cue fidelity.
    double overall = 0.0;              ///< Geometric mean of the two.
    std::size_t blocks = 0;            ///< Analysis windows compared.
};

/** Metric parameters. */
struct AudioQualityParams
{
    std::size_t window = 1024;  ///< Analysis window (power of two).
    double sample_rate_hz = 48000.0;
};

/**
 * Compare a degraded binaural render against a reference.
 * Sequences must be equal-length stereo; returns all-zero for
 * mismatched or too-short input.
 */
AudioQualityResult compareBinaural(
    const std::vector<double> &test_left,
    const std::vector<double> &test_right,
    const std::vector<double> &ref_left,
    const std::vector<double> &ref_right,
    const AudioQualityParams &params = AudioQualityParams());

} // namespace illixr
