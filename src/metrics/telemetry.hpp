/**
 * @file
 * Telemetry: CSV logging of series and aligned-column table printing
 * for the benchmark harnesses (the analog of the paper's logging
 * framework + analysis scripts).
 */

#pragma once

#include "foundation/pose.hpp"
#include "foundation/stats.hpp"

#include <string>
#include <vector>

namespace illixr {

/** Write one series as CSV (index,value). @return success. */
bool writeSeriesCsv(const SampleSeries &series, const std::string &path,
                    const std::string &value_name = "value");

/**
 * Write a stamped trajectory as CSV
 * (`time_ns,px,py,pz,qw,qx,qy,qz`), with fixed 17-significant-digit
 * formatting so equal poses always serialize to equal bytes (the
 * deterministic-replay golden tests diff these files directly).
 * @return success.
 */
bool writePoseCsv(const std::vector<StampedPose> &trajectory,
                  const std::string &path);

/**
 * Fixed-width text table (printed by every bench binary).
 */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(const std::vector<std::string> &header);

    /** Append a data row. */
    void addRow(const std::vector<std::string> &row);

    /** Render with aligned columns. */
    std::string render() const;

    /** Helper: fixed-precision number formatting. */
    static std::string num(double value, int precision = 2);

    /** Helper: "mean±std" cell. */
    static std::string meanStd(double mean, double std, int precision = 1);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace illixr
