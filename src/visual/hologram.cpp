#include "visual/hologram.hpp"

#include "foundation/rng.hpp"
#include "foundation/simd.hpp"
#include "image/filter.hpp"
#include "runtime/parallel.hpp"

#include <cmath>

namespace illixr {

HologramGenerator::HologramGenerator(const HologramParams &params)
    : params_(params)
{
}

double
HologramGenerator::lensPhaseAt(int x, int y, int d) const
{
    const int n = params_.resolution;
    const double focus =
        params_.min_focus +
        (params_.max_focus - params_.min_focus) *
            (params_.depth_planes > 1
                 ? static_cast<double>(d) / (params_.depth_planes - 1)
                 : 0.5);
    const double nx = (2.0 * x / n) - 1.0;
    const double ny = (2.0 * y / n) - 1.0;
    return M_PI * focus * (nx * nx + ny * ny) * n / 8.0;
}

void
HologramGenerator::ensurePhaseTables() const
{
    const int n = params_.resolution;
    const int planes = params_.depth_planes;
    const std::size_t count = static_cast<std::size_t>(n) * n;
    if (phase_fwd_.size() == static_cast<std::size_t>(planes) &&
        (planes == 0 || phase_fwd_[0].size() == 2 * count))
        return;
    phase_fwd_.assign(planes, {});
    phase_bwd_.assign(planes, {});
    const double scale = n; // Undo the forward 1/n normalization.
    for (int d = 0; d < planes; ++d) {
        phase_fwd_[d].resize(2 * count);
        phase_bwd_[d].resize(2 * count);
        for (int y = 0; y < n; ++y) {
            for (int x = 0; x < n; ++x) {
                const std::size_t i = static_cast<std::size_t>(y) * n + x;
                const double phi = lensPhaseAt(x, y, d);
                phase_fwd_[d][2 * i] = std::cos(phi);
                phase_fwd_[d][2 * i + 1] = std::sin(phi);
                // Exactly the pre-SIMD Complex(cos(-phi), sin(-phi))
                // * scale operand.
                phase_bwd_[d][2 * i] = std::cos(-phi) * scale;
                phase_bwd_[d][2 * i + 1] = std::sin(-phi) * scale;
            }
        }
    }
}

std::vector<Complex>
HologramGenerator::propagateToPlane(const std::vector<Complex> &hologram,
                                    int d) const
{
    const int n = params_.resolution;
    std::vector<Complex> field(hologram.size());
    ensurePhaseTables();
    const double *tab = phase_fwd_[d].data();
    const double *src = reinterpret_cast<const double *>(hologram.data());
    double *dst = reinterpret_cast<double *>(field.data());
    // Rows write disjoint slices of the field; the cached lens-phase
    // factor is applied two pixels per Vec<double, 4> via complexMul
    // (bit-identical to the former per-pixel std::complex multiply).
    parallelFor("hologram_phase", 0, static_cast<std::size_t>(n), 8,
                [&](std::size_t yb, std::size_t ye) {
                    using simd::VecD4;
                    const std::size_t end = ye * n * 2;
                    std::size_t j = yb * n * 2;
                    for (; j + 4 <= end; j += 4)
                        simd::complexMul(VecD4::load(src + j),
                                         VecD4::load(tab + j))
                            .store(dst + j);
                    for (; j < end; j += 2) {
                        const Complex f(src[j], src[j + 1]);
                        const Complex w(tab[j], tab[j + 1]);
                        const Complex r = f * w;
                        dst[j] = r.real();
                        dst[j + 1] = r.imag();
                    }
                });
    fft2d(field, n, n, false);
    // Normalize so amplitudes are resolution-independent.
    {
        using simd::VecD4;
        const VecD4 scale = VecD4::broadcast(1.0 / n);
        const std::size_t end = 2 * field.size();
        std::size_t j = 0;
        for (; j + 4 <= end; j += 4)
            (VecD4::load(dst + j) * scale).store(dst + j);
        for (; j < end; ++j)
            dst[j] *= 1.0 / n;
    }
    return field;
}

std::vector<Complex>
HologramGenerator::propagateFromPlane(
    const std::vector<Complex> &plane_field, int d) const
{
    const int n = params_.resolution;
    std::vector<Complex> field = plane_field;
    fft2d(field, n, n, true);
    ensurePhaseTables();
    const double *tab = phase_bwd_[d].data();
    double *dst = reinterpret_cast<double *>(field.data());
    parallelFor("hologram_phase", 0, static_cast<std::size_t>(n), 8,
                [&](std::size_t yb, std::size_t ye) {
                    using simd::VecD4;
                    const std::size_t end = ye * n * 2;
                    std::size_t j = yb * n * 2;
                    for (; j + 4 <= end; j += 4)
                        simd::complexMul(VecD4::load(dst + j),
                                         VecD4::load(tab + j))
                            .store(dst + j);
                    for (; j < end; j += 2) {
                        const Complex f(dst[j], dst[j + 1]);
                        const Complex w(tab[j], tab[j + 1]);
                        const Complex r = f * w;
                        dst[j] = r.real();
                        dst[j + 1] = r.imag();
                    }
                });
    return field;
}

HologramResult
HologramGenerator::compute(const RgbImage &frame, const ImageF *depth)
{
    const int n = params_.resolution;
    const int planes = params_.depth_planes;
    const std::size_t count = static_cast<std::size_t>(n) * n;

    // Build per-plane target amplitudes from the frame luminance.
    std::vector<std::vector<double>> targets(planes);
    {
        ScopedTask timer(profile_, "sum");
        const ImageF lum = resizeBilinear(frame.luminance(), n, n);
        ImageF depth_r;
        if (depth)
            depth_r = resizeBilinear(*depth, n, n);
        for (int d = 0; d < planes; ++d) {
            targets[d].assign(count, 0.0);
            const double band_lo =
                static_cast<double>(d) / planes;
            const double band_hi =
                static_cast<double>(d + 1) / planes;
            double energy = 0.0;
            for (int y = 0; y < n; ++y) {
                for (int x = 0; x < n; ++x) {
                    double a = std::sqrt(
                        std::max(0.0f, lum.at(x, y)) + 1e-6);
                    if (depth) {
                        // Assign pixels to their depth band.
                        const double zn =
                            (depth_r.at(x, y) + 1.0) / 2.0;
                        if (zn < band_lo || zn >= band_hi)
                            a = 0.0;
                    }
                    targets[d][static_cast<std::size_t>(y) * n + x] = a;
                    energy += a * a;
                }
            }
            // Normalize plane energy to n^2 / planes: a phase-only
            // hologram carries unit amplitude per pixel, so its
            // propagated field energy is n^2 split across planes.
            if (energy > 0.0) {
                const double s = static_cast<double>(n) /
                                 std::sqrt(energy * planes);
                for (double &a : targets[d])
                    a *= s;
            }
        }
    }

    // Initialize with a deterministic pseudo-random phase (random
    // initial phase is standard for GS). The Rng(2718) field is a pure
    // function of `count`, so it is built once and reused across
    // compute() calls.
    {
        ScopedTask timer(profile_, "sum");
        if (init_phase_.size() != count) {
            init_phase_.resize(count);
            Rng rng(2718);
            for (Complex &c : init_phase_) {
                const double phi = rng.uniform(0.0, 2.0 * M_PI);
                c = Complex(std::cos(phi), std::sin(phi));
            }
        }
    }
    std::vector<Complex> hologram = init_phase_;

    HologramResult result;
    result.plane_weights.assign(planes, 1.0);

    for (int iter = 0; iter < params_.iterations; ++iter) {
        std::vector<std::vector<Complex>> plane_fields(planes);
        std::vector<double> plane_err(planes, 0.0);

        // --- Hologram-to-depth: propagate to every plane. ---
        {
            ScopedTask timer(profile_, "hologram_to_depth");
            for (int d = 0; d < planes; ++d)
                plane_fields[d] = propagateToPlane(hologram, d);
        }

        // --- Sum: per-plane amplitude errors and weight update. ---
        double total_err = 0.0;
        {
            ScopedTask timer(profile_, "sum");
            for (int d = 0; d < planes; ++d) {
                double err = 0.0, norm = 0.0;
                // Amplitude via sqrt(re^2 + im^2) rather than the
                // former std::abs/hypot (pinned: identical across
                // backends and widths, not vs the pre-SIMD code; the
                // GS error is tolerance-tested only).
                const double *f = reinterpret_cast<const double *>(
                    plane_fields[d].data());
                for (std::size_t i = 0; i < count; ++i) {
                    const double a = std::sqrt(f[2 * i] * f[2 * i] +
                                               f[2 * i + 1] *
                                                   f[2 * i + 1]);
                    const double t = targets[d][i];
                    err += (a - t) * (a - t);
                    norm += t * t;
                }
                plane_err[d] = norm > 0.0 ? std::sqrt(err / norm) : 0.0;
                total_err += plane_err[d];
                // Weighted GS: boost badly reproduced planes.
                result.plane_weights[d] *= (1.0 + 0.5 * plane_err[d]);
            }
            result.error_history.push_back(total_err / planes);
        }

        // --- Depth-to-hologram: constrain amplitudes, back-propagate,
        //     and combine. ---
        {
            ScopedTask timer(profile_, "depth_to_hologram");
            std::vector<Complex> combined(count, Complex(0.0, 0.0));
            double weight_sum = 0.0;
            for (int d = 0; d < planes; ++d) {
                std::vector<Complex> constrained(count);
                parallelFor(
                    "hologram_constraint", 0, count, 4096,
                    [&](std::size_t ib, std::size_t ie) {
                        const double *f = reinterpret_cast<const double *>(
                            plane_fields[d].data());
                        for (std::size_t i = ib; i < ie; ++i) {
                            const double re = f[2 * i];
                            const double im = f[2 * i + 1];
                            const double mag =
                                std::sqrt(re * re + im * im);
                            // Keep the phase, impose the target
                            // amplitude (mag pinned as above).
                            const double t = targets[d][i];
                            constrained[i] =
                                (mag > 1e-12)
                                    ? Complex(re * (t / mag),
                                              im * (t / mag))
                                    : Complex(t, 0.0);
                        }
                    });
                const auto back = propagateFromPlane(constrained, d);
                const double w = result.plane_weights[d];
                {
                    using simd::VecD4;
                    const VecD4 wv = VecD4::broadcast(w);
                    double *cb =
                        reinterpret_cast<double *>(combined.data());
                    const double *bk =
                        reinterpret_cast<const double *>(back.data());
                    std::size_t j = 0;
                    for (; j + 4 <= 2 * count; j += 4)
                        simd::madd(VecD4::load(cb + j),
                                   VecD4::load(bk + j), wv)
                            .store(cb + j);
                    for (; j < 2 * count; ++j)
                        cb[j] += bk[j] * w;
                }
                weight_sum += w;
            }
            // Phase-only constraint at the SLM (mag pinned as above).
            const double *cb =
                reinterpret_cast<const double *>(combined.data());
            for (std::size_t i = 0; i < count; ++i) {
                const double re = cb[2 * i];
                const double im = cb[2 * i + 1];
                const double mag = std::sqrt(re * re + im * im);
                hologram[i] = (mag > 1e-12)
                                  ? Complex(re * (1.0 / mag),
                                            im * (1.0 / mag))
                                  : Complex(1.0, 0.0);
            }
            (void)weight_sum;
        }
    }

    result.rms_error = result.error_history.empty()
                           ? 0.0
                           : result.error_history.back();
    result.phase = ImageF(n, n);
    for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
            const Complex &c =
                hologram[static_cast<std::size_t>(y) * n + x];
            result.phase.at(x, y) =
                static_cast<float>(std::atan2(c.imag(), c.real()));
        }
    }
    return result;
}

} // namespace illixr
