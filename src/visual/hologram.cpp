#include "visual/hologram.hpp"

#include "foundation/rng.hpp"
#include "image/filter.hpp"
#include "runtime/parallel.hpp"

#include <cmath>

namespace illixr {

HologramGenerator::HologramGenerator(const HologramParams &params)
    : params_(params)
{
}

double
HologramGenerator::lensPhaseAt(int x, int y, int d) const
{
    const int n = params_.resolution;
    const double focus =
        params_.min_focus +
        (params_.max_focus - params_.min_focus) *
            (params_.depth_planes > 1
                 ? static_cast<double>(d) / (params_.depth_planes - 1)
                 : 0.5);
    const double nx = (2.0 * x / n) - 1.0;
    const double ny = (2.0 * y / n) - 1.0;
    return M_PI * focus * (nx * nx + ny * ny) * n / 8.0;
}

std::vector<Complex>
HologramGenerator::propagateToPlane(const std::vector<Complex> &hologram,
                                    int d) const
{
    const int n = params_.resolution;
    std::vector<Complex> field(hologram.size());
    // Rows write disjoint slices of the field.
    parallelFor("hologram_phase", 0, static_cast<std::size_t>(n), 8,
                [&](std::size_t yb, std::size_t ye) {
                    for (int y = static_cast<int>(yb);
                         y < static_cast<int>(ye); ++y) {
                        for (int x = 0; x < n; ++x) {
                            const double phi = lensPhaseAt(x, y, d);
                            field[static_cast<std::size_t>(y) * n + x] =
                                hologram[static_cast<std::size_t>(y) * n +
                                         x] *
                                Complex(std::cos(phi), std::sin(phi));
                        }
                    }
                });
    fft2d(field, n, n, false);
    // Normalize so amplitudes are resolution-independent.
    const double scale = 1.0 / n;
    for (Complex &c : field)
        c *= scale;
    return field;
}

std::vector<Complex>
HologramGenerator::propagateFromPlane(
    const std::vector<Complex> &plane_field, int d) const
{
    const int n = params_.resolution;
    std::vector<Complex> field = plane_field;
    fft2d(field, n, n, true);
    const double scale = n; // Undo the forward normalization.
    parallelFor("hologram_phase", 0, static_cast<std::size_t>(n), 8,
                [&](std::size_t yb, std::size_t ye) {
                    for (int y = static_cast<int>(yb);
                         y < static_cast<int>(ye); ++y) {
                        for (int x = 0; x < n; ++x) {
                            const double phi = -lensPhaseAt(x, y, d);
                            field[static_cast<std::size_t>(y) * n + x] *=
                                Complex(std::cos(phi), std::sin(phi)) *
                                scale;
                        }
                    }
                });
    return field;
}

HologramResult
HologramGenerator::compute(const RgbImage &frame, const ImageF *depth)
{
    const int n = params_.resolution;
    const int planes = params_.depth_planes;
    const std::size_t count = static_cast<std::size_t>(n) * n;

    // Build per-plane target amplitudes from the frame luminance.
    std::vector<std::vector<double>> targets(planes);
    {
        ScopedTask timer(profile_, "sum");
        const ImageF lum = resizeBilinear(frame.luminance(), n, n);
        ImageF depth_r;
        if (depth)
            depth_r = resizeBilinear(*depth, n, n);
        for (int d = 0; d < planes; ++d) {
            targets[d].assign(count, 0.0);
            const double band_lo =
                static_cast<double>(d) / planes;
            const double band_hi =
                static_cast<double>(d + 1) / planes;
            double energy = 0.0;
            for (int y = 0; y < n; ++y) {
                for (int x = 0; x < n; ++x) {
                    double a = std::sqrt(
                        std::max(0.0f, lum.at(x, y)) + 1e-6);
                    if (depth) {
                        // Assign pixels to their depth band.
                        const double zn =
                            (depth_r.at(x, y) + 1.0) / 2.0;
                        if (zn < band_lo || zn >= band_hi)
                            a = 0.0;
                    }
                    targets[d][static_cast<std::size_t>(y) * n + x] = a;
                    energy += a * a;
                }
            }
            // Normalize plane energy to n^2 / planes: a phase-only
            // hologram carries unit amplitude per pixel, so its
            // propagated field energy is n^2 split across planes.
            if (energy > 0.0) {
                const double s = static_cast<double>(n) /
                                 std::sqrt(energy * planes);
                for (double &a : targets[d])
                    a *= s;
            }
        }
    }

    // Initialize with a deterministic pseudo-random phase (random
    // initial phase is standard for GS).
    std::vector<Complex> hologram(count);
    {
        ScopedTask timer(profile_, "sum");
        Rng rng(2718);
        for (Complex &c : hologram) {
            const double phi = rng.uniform(0.0, 2.0 * M_PI);
            c = Complex(std::cos(phi), std::sin(phi));
        }
    }

    HologramResult result;
    result.plane_weights.assign(planes, 1.0);

    for (int iter = 0; iter < params_.iterations; ++iter) {
        std::vector<std::vector<Complex>> plane_fields(planes);
        std::vector<double> plane_err(planes, 0.0);

        // --- Hologram-to-depth: propagate to every plane. ---
        {
            ScopedTask timer(profile_, "hologram_to_depth");
            for (int d = 0; d < planes; ++d)
                plane_fields[d] = propagateToPlane(hologram, d);
        }

        // --- Sum: per-plane amplitude errors and weight update. ---
        double total_err = 0.0;
        {
            ScopedTask timer(profile_, "sum");
            for (int d = 0; d < planes; ++d) {
                double err = 0.0, norm = 0.0;
                for (std::size_t i = 0; i < count; ++i) {
                    const double a = std::abs(plane_fields[d][i]);
                    const double t = targets[d][i];
                    err += (a - t) * (a - t);
                    norm += t * t;
                }
                plane_err[d] = norm > 0.0 ? std::sqrt(err / norm) : 0.0;
                total_err += plane_err[d];
                // Weighted GS: boost badly reproduced planes.
                result.plane_weights[d] *= (1.0 + 0.5 * plane_err[d]);
            }
            result.error_history.push_back(total_err / planes);
        }

        // --- Depth-to-hologram: constrain amplitudes, back-propagate,
        //     and combine. ---
        {
            ScopedTask timer(profile_, "depth_to_hologram");
            std::vector<Complex> combined(count, Complex(0.0, 0.0));
            double weight_sum = 0.0;
            for (int d = 0; d < planes; ++d) {
                std::vector<Complex> constrained(count);
                parallelFor(
                    "hologram_constraint", 0, count, 4096,
                    [&](std::size_t ib, std::size_t ie) {
                        for (std::size_t i = ib; i < ie; ++i) {
                            const Complex &f = plane_fields[d][i];
                            const double mag = std::abs(f);
                            // Keep the phase, impose the target
                            // amplitude.
                            constrained[i] =
                                (mag > 1e-12)
                                    ? f * (targets[d][i] / mag)
                                    : Complex(targets[d][i], 0.0);
                        }
                    });
                const auto back = propagateFromPlane(constrained, d);
                const double w = result.plane_weights[d];
                for (std::size_t i = 0; i < count; ++i)
                    combined[i] += back[i] * w;
                weight_sum += w;
            }
            // Phase-only constraint at the SLM.
            for (std::size_t i = 0; i < count; ++i) {
                const double mag = std::abs(combined[i]);
                hologram[i] = (mag > 1e-12)
                                  ? combined[i] * (1.0 / mag)
                                  : Complex(1.0, 0.0);
            }
            (void)weight_sum;
        }
    }

    result.rms_error = result.error_history.empty()
                           ? 0.0
                           : result.error_history.back();
    result.phase = ImageF(n, n);
    for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
            const Complex &c =
                hologram[static_cast<std::size_t>(y) * n + x];
            result.phase.at(x, y) =
                static_cast<float>(std::atan2(c.imag(), c.real()));
        }
    }
    return result;
}

} // namespace illixr
