#include "visual/timewarp.hpp"

#include "runtime/parallel.hpp"

#include <cmath>
#include <vector>

namespace illixr {

namespace {

/** Sentinel marking an off-frame / behind-camera mesh node. */
constexpr double kInvalidUv = -1e9;

} // namespace

Vec2
distortRadial(const Vec2 &ndc, double k1, double k2, double scale)
{
    const double r2 = ndc.squaredNorm();
    const double factor = (1.0 + k1 * r2 + k2 * r2 * r2) * scale;
    return ndc * factor;
}

Timewarp::Timewarp(const TimewarpParams &params) : params_(params)
{
}

void
Timewarp::buildMesh(const Mat3 &delta_rotation, int width, int height)
{
    const int cols = params_.mesh_cols + 1;
    const int rows = params_.mesh_rows + 1;
    const double tan_half = std::tan(params_.fov_y_rad / 2.0);
    const double aspect =
        static_cast<double>(width) / static_cast<double>(height);

    for (int c = 0; c < 3; ++c)
        meshUv_[c].assign(static_cast<std::size_t>(cols) * rows,
                          Vec2(kInvalidUv, kInvalidUv));

    const int channels = params_.chromatic_correction ? 3 : 1;
    for (int ch = 0; ch < channels; ++ch) {
        const double scale =
            params_.chromatic_correction ? params_.chroma_scale[ch] : 1.0;
        for (int r = 0; r < rows; ++r) {
            for (int col = 0; col < cols; ++col) {
                // Node position in output NDC.
                const double nx =
                    2.0 * static_cast<double>(col) / params_.mesh_cols -
                    1.0;
                const double ny =
                    1.0 -
                    2.0 * static_cast<double>(r) / params_.mesh_rows;
                Vec2 d(nx, ny);
                if (params_.lens_distortion)
                    d = distortRadial(d, params_.k1, params_.k2, scale);
                else if (params_.chromatic_correction)
                    d = d * scale;

                // View ray in the fresh eye frame (looking down -Z).
                const Vec3 ray_fresh(d.x * tan_half * aspect,
                                     d.y * tan_half, -1.0);
                // Rotate into the render eye frame.
                const Vec3 ray_render = delta_rotation * ray_fresh;
                if (ray_render.z > -1e-6)
                    continue; // Behind the render camera.
                const double sx =
                    ray_render.x / (-ray_render.z) / (tan_half * aspect);
                const double sy =
                    ray_render.y / (-ray_render.z) / tan_half;
                // Source pixel coordinates.
                const double u = (sx + 1.0) / 2.0 * width - 0.5;
                const double v = (1.0 - sy) / 2.0 * height - 0.5;
                meshUv_[ch][static_cast<std::size_t>(r) * cols + col] =
                    Vec2(u, v);
            }
        }
    }
    if (!params_.chromatic_correction) {
        meshUv_[1] = meshUv_[0];
        meshUv_[2] = meshUv_[0];
    }
}

RgbImage
Timewarp::reproject(const RgbImage &rendered, const Pose &render_pose,
                    const Pose &fresh_pose)
{
    const int w = rendered.width();
    const int h = rendered.height();
    RgbImage out;

    // --- FBO setup: allocate/clear the output target. ---
    {
        ScopedTask timer(profile_, "fbo");
        out = RgbImage(w, h, Vec3(0, 0, 0));
    }

    // --- State update: recompute the warp mesh for this pose pair
    //     (the GPU implementation's uniform/mesh upload). ---
    {
        ScopedTask timer(profile_, "state_update");
        // delta = R_render^T * R_fresh maps fresh-eye rays to
        // render-eye rays (rotational component only).
        const Mat3 delta = render_pose.orientation.toMatrix().transpose() *
                           fresh_pose.orientation.toMatrix();
        buildMesh(delta, w, h);
    }

    // --- Reprojection: per-pixel interpolation and sampling. ---
    {
        ScopedTask timer(profile_, "reprojection");
        const int cols = params_.mesh_cols + 1;
        const double cell_w =
            static_cast<double>(w) / params_.mesh_cols;
        const double cell_h =
            static_cast<double>(h) / params_.mesh_rows;

        // Scanline blocks: output rows are independent (reads only
        // touch the mesh and the rendered frame).
        parallelFor("timewarp", 0, static_cast<std::size_t>(h), 8,
                    [&](std::size_t yb, std::size_t ye) {
        for (int y = static_cast<int>(yb); y < static_cast<int>(ye);
             ++y) {
            const double gy = (y + 0.5) / cell_h;
            const int r0 = std::min(static_cast<int>(gy),
                                    params_.mesh_rows - 1);
            const double fy = gy - r0;
            for (int x = 0; x < w; ++x) {
                const double gx = (x + 0.5) / cell_w;
                const int c0 = std::min(static_cast<int>(gx),
                                        params_.mesh_cols - 1);
                const double fx = gx - c0;

                double rgb[3];
                bool ok = true;
                for (int ch = 0; ch < 3; ++ch) {
                    const Vec2 &uv00 =
                        meshUv_[ch][static_cast<std::size_t>(r0) * cols +
                                    c0];
                    const Vec2 &uv01 =
                        meshUv_[ch][static_cast<std::size_t>(r0) * cols +
                                    c0 + 1];
                    const Vec2 &uv10 =
                        meshUv_[ch][static_cast<std::size_t>(r0 + 1) *
                                        cols +
                                    c0];
                    const Vec2 &uv11 =
                        meshUv_[ch][static_cast<std::size_t>(r0 + 1) *
                                        cols +
                                    c0 + 1];
                    if (uv00.x <= kInvalidUv / 2 ||
                        uv01.x <= kInvalidUv / 2 ||
                        uv10.x <= kInvalidUv / 2 ||
                        uv11.x <= kInvalidUv / 2) {
                        ok = false;
                        break;
                    }
                    const Vec2 top = uv00 * (1.0 - fx) + uv01 * fx;
                    const Vec2 bot = uv10 * (1.0 - fx) + uv11 * fx;
                    const Vec2 uv = top * (1.0 - fy) + bot * fy;
                    if (uv.x < -0.5 || uv.y < -0.5 || uv.x > w - 0.5 ||
                        uv.y > h - 0.5) {
                        ok = false;
                        break;
                    }
                    const ImageF &plane =
                        ch == 0 ? rendered.r
                                : (ch == 1 ? rendered.g : rendered.b);
                    rgb[ch] = plane.sampleBilinear(uv.x, uv.y);
                }
                if (ok)
                    out.setPixel(x, y, Vec3(rgb[0], rgb[1], rgb[2]));
            }
        }
                    });
    }
    return out;
}

RgbImage
Timewarp::reprojectPositional(const RgbImage &rendered,
                              const ImageF &depth_ndc,
                              const Pose &render_pose,
                              const Pose &fresh_pose, double near_z,
                              double far_z)
{
    const int w = rendered.width();
    const int h = rendered.height();
    RgbImage out(w, h, Vec3(0, 0, 0));
    ScopedTask timer(profile_, "reprojection");

    const double tan_half = std::tan(params_.fov_y_rad / 2.0);
    const double aspect = static_cast<double>(w) / h;
    const Pose render_inv = render_pose.inverse();

    auto view_depth = [&](double z_ndc) {
        // Invert the perspective depth mapping; returns +depth along
        // the viewing direction.
        return 2.0 * far_z * near_z /
               (z_ndc * (near_z - far_z) + far_z + near_z);
    };
    auto unproject_render = [&](const Vec2 &uv) {
        const float zn = depth_ndc.sampleBilinear(uv.x, uv.y);
        const double d = view_depth(std::min(1.0, (double)zn));
        const double nx = (uv.x + 0.5) / w * 2.0 - 1.0;
        const double ny = 1.0 - (uv.y + 0.5) / h * 2.0;
        const Vec3 p_eye(nx * tan_half * aspect * d, ny * tan_half * d,
                         -d);
        return render_pose.transform(p_eye);
    };
    auto project_fresh = [&](const Vec3 &world) {
        const Vec3 p = fresh_pose.inverse().transform(world);
        if (p.z > -1e-6)
            return Vec2(-1e9, -1e9);
        const double nx = p.x / (-p.z) / (tan_half * aspect);
        const double ny = p.y / (-p.z) / tan_half;
        return Vec2((nx + 1.0) / 2.0 * w - 0.5,
                    (1.0 - ny) / 2.0 * h - 0.5);
    };
    (void)render_inv;

    parallelFor("timewarp_pos", 0, static_cast<std::size_t>(h), 8,
                [&](std::size_t yb, std::size_t ye) {
    for (int y = static_cast<int>(yb); y < static_cast<int>(ye); ++y) {
        for (int x = 0; x < w; ++x) {
            // Fixed-point inverse warp, seeded at the output pixel.
            Vec2 uv(static_cast<double>(x), static_cast<double>(y));
            bool ok = false;
            for (int iter = 0; iter < 3; ++iter) {
                if (uv.x < 0 || uv.y < 0 || uv.x > w - 1 ||
                    uv.y > h - 1)
                    break;
                const Vec3 world = unproject_render(uv);
                const Vec2 reproj = project_fresh(world);
                if (reproj.x < -1e8)
                    break;
                const Vec2 err = Vec2(x, y) - reproj;
                uv += err;
                if (err.squaredNorm() < 0.05) {
                    ok = true;
                    break;
                }
            }
            if (ok && uv.x >= 0 && uv.y >= 0 && uv.x <= w - 1 &&
                uv.y <= h - 1) {
                out.setPixel(x, y, rendered.sampleBilinear(uv.x, uv.y));
            }
        }
    }
                });
    return out;
}

} // namespace illixr
