/**
 * @file
 * Computational holography: weighted Gerchberg–Saxton (GS) phase
 * retrieval for multi-focal-plane displays — the adaptive-display
 * component (paper Table II: "Weighted Gerchberg–Saxton" [40]).
 *
 * The optimizer finds a single phase-only hologram whose propagation
 * to each depth plane reproduces that plane's target amplitude. The
 * per-plane propagation is a Fourier transform with a depth-dependent
 * quadratic lens phase; the weighted update boosts planes that are
 * reproduced poorly (Persson et al. 2011). Task names match the rows
 * of paper Table VII.
 */

#pragma once

#include "foundation/profile.hpp"
#include "image/image.hpp"
#include "signal/fft.hpp"

#include <vector>

namespace illixr {

/** Hologram generator configuration. */
struct HologramParams
{
    int resolution = 128;  ///< Square, power of two (SLM pixels).
    int depth_planes = 3;
    int iterations = 5;
    /** Lens-phase curvature per plane (dimensionless focal powers). */
    double min_focus = -1.0;
    double max_focus = 1.0;
};

/** Result of one hologram computation. */
struct HologramResult
{
    ImageF phase;        ///< Optimized hologram phase in [-pi, pi].
    double rms_error = 0.0;    ///< Final amplitude reproduction error.
    std::vector<double> plane_weights;
    std::vector<double> error_history; ///< RMS error per iteration.
};

/**
 * Weighted-GS hologram generator.
 */
class HologramGenerator
{
  public:
    explicit HologramGenerator(const HologramParams &params = {});

    /**
     * Compute a hologram reproducing @p frame across the configured
     * focal stack. The frame's luminance is resampled to the SLM
     * resolution; each depth plane targets a band of the depth
     * buffer when @p depth is provided, otherwise all planes target
     * the full image.
     */
    HologramResult compute(const RgbImage &frame,
                           const ImageF *depth = nullptr);

    const HologramParams &params() const { return params_; }

    /** Table VII task timings. */
    const TaskProfile &profile() const { return profile_; }
    TaskProfile &profile() { return profile_; }

  private:
    /** Propagate hologram field to plane @p d (forward). */
    std::vector<Complex> propagateToPlane(
        const std::vector<Complex> &hologram, int d) const;

    /** Propagate a plane field back to the hologram (inverse). */
    std::vector<Complex> propagateFromPlane(
        const std::vector<Complex> &plane_field, int d) const;

    /** Depth-dependent quadratic lens phase for plane @p d. */
    double lensPhaseAt(int x, int y, int d) const;

    /** Build the cached per-plane phase tables on first use. */
    void ensurePhaseTables() const;

    HologramParams params_;
    TaskProfile profile_;

    // Lazily built caches, pure functions of params_: per-plane lens
    // phase factors as interleaved (re, im) — forward cis(phi), and
    // backward cis(-phi) with the inverse-FFT renormalization baked
    // in — plus the deterministic Rng(2718) initial phase field that
    // compute() previously rebuilt identically on every call.
    mutable std::vector<std::vector<double>> phase_fwd_;
    mutable std::vector<std::vector<double>> phase_bwd_;
    mutable std::vector<Complex> init_phase_;
};

} // namespace illixr
