/**
 * @file
 * Asynchronous reprojection (TimeWarp) with mesh-based radial lens
 * distortion and chromatic aberration correction — the visual
 * pipeline of the paper (Table II: "VP-matrix reprojection with
 * pose", "Mesh-based radial distortion" [39]).
 *
 * Rotational reprojection: the application's rendered frame (drawn at
 * render_pose) is re-sampled from the perspective of the fresh pose
 * available just before vsync, hiding the application's render
 * latency. The warp, the barrel pre-distortion for the HMD optics,
 * and per-channel chromatic correction are evaluated on a coarse mesh
 * and interpolated per pixel, exactly as GPU implementations do.
 * Translational reprojection (the paper's follow-up feature) is also
 * provided, using the rendered depth as a proxy geometry.
 */

#pragma once

#include "foundation/pose.hpp"
#include "foundation/profile.hpp"
#include "image/image.hpp"

namespace illixr {

/** Reprojection configuration. */
struct TimewarpParams
{
    int mesh_cols = 16;     ///< Distortion-mesh resolution.
    int mesh_rows = 16;
    double fov_y_rad = 1.5; ///< Must match the application's FoV.
    double k1 = 0.18;       ///< Radial distortion r^2 coefficient.
    double k2 = 0.045;      ///< Radial distortion r^4 coefficient.
    /** Per-channel chromatic scale (R slightly outward, B inward). */
    double chroma_scale[3] = {1.015, 1.0, 0.985};
    bool chromatic_correction = true;
    bool lens_distortion = true;
};

/**
 * The reprojection component.
 */
class Timewarp
{
  public:
    explicit Timewarp(const TimewarpParams &params = TimewarpParams());

    /**
     * Rotational reprojection of one eye image.
     *
     * @param rendered    The application's frame for this eye.
     * @param render_pose Head pose the frame was rendered at.
     * @param fresh_pose  Latest head pose (from the IMU integrator).
     * @return The corrected, reprojected display image.
     */
    RgbImage reproject(const RgbImage &rendered, const Pose &render_pose,
                       const Pose &fresh_pose);

    /**
     * Translational (positional) reprojection using the rendered
     * depth buffer as proxy geometry (post-paper extension).
     *
     * @param depth_ndc   NDC depth buffer from the rasterizer.
     * @param near_z/far_z Projection depths used by the application.
     */
    RgbImage reprojectPositional(const RgbImage &rendered,
                                 const ImageF &depth_ndc,
                                 const Pose &render_pose,
                                 const Pose &fresh_pose, double near_z,
                                 double far_z);

    const TimewarpParams &params() const { return params_; }

    /** Table VII task timings (fbo / state update / reprojection). */
    const TaskProfile &profile() const { return profile_; }
    TaskProfile &profile() { return profile_; }

  private:
    /**
     * Compute per-channel source UVs on the warp mesh for the given
     * rotation delta; the per-pixel pass interpolates these.
     */
    void buildMesh(const Mat3 &delta_rotation, int width, int height);

    TimewarpParams params_;
    TaskProfile profile_;

    // Mesh buffers: (mesh_rows+1) x (mesh_cols+1) UVs per channel.
    std::vector<Vec2> meshUv_[3];
};

/** Barrel distortion of normalized coordinates (r in [0, ~1.5]). */
Vec2 distortRadial(const Vec2 &ndc, double k1, double k2, double scale);

} // namespace illixr
