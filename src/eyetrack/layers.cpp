#include "eyetrack/layers.hpp"

#include "foundation/simd.hpp"
#include "runtime/parallel.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

namespace illixr {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel_size)
    : inChannels_(in_channels), outChannels_(out_channels),
      kernelSize_(kernel_size),
      weights_(static_cast<std::size_t>(out_channels) * in_channels *
                   kernel_size * kernel_size,
               0.0f),
      bias_(out_channels, 0.0f)
{
    assert(kernel_size == 1 || kernel_size == 3);
}

void
Conv2d::initializeHe(Rng &rng)
{
    const double fan_in =
        static_cast<double>(inChannels_) * kernelSize_ * kernelSize_;
    const double stddev = std::sqrt(2.0 / fan_in);
    for (float &w : weights_)
        w = static_cast<float>(rng.gaussian(0.0, stddev));
    for (float &b : bias_)
        b = 0.0f;
}

float &
Conv2d::weight(int oc, int ic, int ky, int kx)
{
    return weights_[((static_cast<std::size_t>(oc) * inChannels_ + ic) *
                         kernelSize_ +
                     ky) *
                        kernelSize_ +
                    kx];
}

float
Conv2d::weight(int oc, int ic, int ky, int kx) const
{
    return weights_[((static_cast<std::size_t>(oc) * inChannels_ + ic) *
                         kernelSize_ +
                     ky) *
                        kernelSize_ +
                    kx];
}

Tensor
Conv2d::forward(const Tensor &input) const
{
    assert(input.channels() == inChannels_);
    const int h = input.height();
    const int w = input.width();
    const int k = kernelSize_;
    const int pad = k / 2;
    Tensor out(outChannels_, h, w);

    // NCHWc blocked-channel layout (DESIGN.md "SIMD & data layout"):
    // 8 output channels ride one Vec<float, 8> lane set, weights are
    // packed [ic][ky][kx][8] per block, and the input is repacked
    // once into zero-padded planes so the inner loop is a pure
    // broadcast * packed-load madd chain. Per lane the accumulation
    // is bias then ic->ky->kx serial — the exact op sequence of the
    // scalar original, so results are bit-identical to it (and
    // across backends). Leftover channels (< 8) take the original
    // scalar path.
    constexpr int kBlock = 8;
    const int blocks = outChannels_ / kBlock;
    const int ph = h + 2 * pad;
    const int pw = w + 2 * pad;

    ArenaFrame scratch;
    const float *src = input.data();
    const float *padded = src;
    if (pad > 0) {
        const std::size_t plane =
            static_cast<std::size_t>(ph) * static_cast<std::size_t>(pw);
        float *pbuf =
            scratch.alloc<float>(static_cast<std::size_t>(inChannels_) *
                                 plane);
        std::memset(pbuf, 0,
                    static_cast<std::size_t>(inChannels_) * plane *
                        sizeof(float));
        for (int ic = 0; ic < inChannels_; ++ic)
            for (int y = 0; y < h; ++y)
                std::memcpy(pbuf + ic * plane +
                                (static_cast<std::size_t>(y) + pad) * pw +
                                pad,
                            src + (static_cast<std::size_t>(ic) * h + y) *
                                      w,
                            static_cast<std::size_t>(w) * sizeof(float));
        padded = pbuf;
    }
    const int src_ph = pad > 0 ? ph : h;
    const int src_pw = pad > 0 ? pw : w;

    const std::size_t range =
        static_cast<std::size_t>(blocks) +
        (outChannels_ % kBlock != 0 ? 1u : 0u);
    parallelFor("conv2d", 0, range, 1,
                [&](std::size_t ob, std::size_t oe) {
    using simd::VecF8;
    for (std::size_t blk = ob; blk < oe; ++blk) {
        if (blk >= static_cast<std::size_t>(blocks)) {
            // Channel tail: original scalar path, untouched.
            for (int oc = blocks * kBlock; oc < outChannels_; ++oc) {
                for (int y = 0; y < h; ++y) {
                    for (int x = 0; x < w; ++x) {
                        float acc = bias_[oc];
                        for (int ic = 0; ic < inChannels_; ++ic)
                            for (int ky = 0; ky < k; ++ky)
                                for (int kx = 0; kx < k; ++kx)
                                    acc += weight(oc, ic, ky, kx) *
                                           input.atPadded(ic, y + ky - pad,
                                                          x + kx - pad);
                        out.at(oc, y, x) = acc;
                    }
                }
            }
            continue;
        }

        const int oc0 = static_cast<int>(blk) * kBlock;
        ArenaFrame tile_scratch;
        float *wp = tile_scratch.alloc<float>(
            static_cast<std::size_t>(inChannels_) * k * k * kBlock);
        for (int ic = 0; ic < inChannels_; ++ic)
            for (int ky = 0; ky < k; ++ky)
                for (int kx = 0; kx < k; ++kx)
                    for (int l = 0; l < kBlock; ++l)
                        wp[(((static_cast<std::size_t>(ic) * k + ky) * k +
                             kx) *
                            kBlock) +
                           l] = weight(oc0 + l, ic, ky, kx);
        alignas(32) float bias8[kBlock];
        for (int l = 0; l < kBlock; ++l)
            bias8[l] = bias_[oc0 + l];
        const VecF8 bias_v = VecF8::load(bias8);
        float *orow = tile_scratch.alloc<float>(
            static_cast<std::size_t>(w) * kBlock);

        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                VecF8 acc = bias_v;
                const float *wq = wp;
                for (int ic = 0; ic < inChannels_; ++ic) {
                    const float *plane =
                        padded + static_cast<std::size_t>(ic) * src_ph *
                                     src_pw;
                    for (int ky = 0; ky < k; ++ky) {
                        const float *row =
                            plane +
                            static_cast<std::size_t>(y + ky) * src_pw + x;
                        for (int kx = 0; kx < k; ++kx) {
                            acc = simd::madd(acc,
                                             VecF8::broadcast(row[kx]),
                                             VecF8::load(wq));
                            wq += kBlock;
                        }
                    }
                }
                acc.store(orow + static_cast<std::size_t>(x) * kBlock);
            }
            for (int l = 0; l < kBlock; ++l) {
                float *dst = out.data() +
                             (static_cast<std::size_t>(oc0 + l) * h + y) *
                                 w;
                for (int x = 0; x < w; ++x)
                    dst[x] = orow[static_cast<std::size_t>(x) * kBlock + l];
            }
        }
    }
                });
    return out;
}

std::size_t
Conv2d::macCount(int height, int width) const
{
    return static_cast<std::size_t>(height) * width * outChannels_ *
           inChannels_ * kernelSize_ * kernelSize_;
}

BatchNorm::BatchNorm(int channels)
    : scale_(channels, 1.0f), shift_(channels, 0.0f)
{
}

void
BatchNorm::initialize(Rng &rng)
{
    for (float &s : scale_)
        s = static_cast<float>(rng.uniform(0.8, 1.2));
    for (float &s : shift_)
        s = static_cast<float>(rng.uniform(-0.05, 0.05));
}

Tensor
BatchNorm::forward(const Tensor &input) const
{
    assert(static_cast<std::size_t>(input.channels()) == scale_.size());
    Tensor out(input.channels(), input.height(), input.width());
    using simd::VecF8;
    const std::size_t plane = static_cast<std::size_t>(input.height()) *
                              input.width();
    for (int c = 0; c < input.channels(); ++c) {
        const float *src = input.data() + c * plane;
        float *dst = out.data() + c * plane;
        const VecF8 s = VecF8::broadcast(scale_[c]);
        const VecF8 b = VecF8::broadcast(shift_[c]);
        std::size_t i = 0;
        for (; i + 8 <= plane; i += 8)
            simd::madd(b, s, VecF8::load(src + i)).store(dst + i);
        for (; i < plane; ++i)
            dst[i] = scale_[c] * src[i] + shift_[c];
    }
    return out;
}

void
relu(Tensor &t)
{
    using simd::VecF8;
    float *d = t.data();
    const std::size_t n = t.size();
    const VecF8 zero = VecF8::zero();
    std::size_t i = 0;
    // vmax(v, 0) is exactly (v > 0) ? v : 0 per lane.
    for (; i + 8 <= n; i += 8)
        simd::vmax(VecF8::load(d + i), zero).store(d + i);
    for (; i < n; ++i)
        d[i] = d[i] > 0.0f ? d[i] : 0.0f;
}

Tensor
maxPool2(const Tensor &input)
{
    const int h = input.height() / 2;
    const int w = input.width() / 2;
    Tensor out(input.channels(), h, w);
    for (int c = 0; c < input.channels(); ++c) {
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                const float a = input.at(c, 2 * y, 2 * x);
                const float b = input.at(c, 2 * y, 2 * x + 1);
                const float d = input.at(c, 2 * y + 1, 2 * x);
                const float e = input.at(c, 2 * y + 1, 2 * x + 1);
                out.at(c, y, x) = std::max(std::max(a, b), std::max(d, e));
            }
        }
    }
    return out;
}

Tensor
upsample2(const Tensor &input)
{
    Tensor out(input.channels(), input.height() * 2, input.width() * 2);
    for (int c = 0; c < input.channels(); ++c) {
        for (int y = 0; y < out.height(); ++y)
            for (int x = 0; x < out.width(); ++x)
                out.at(c, y, x) = input.at(c, y / 2, x / 2);
    }
    return out;
}

Tensor
concatChannels(const Tensor &a, const Tensor &b)
{
    assert(a.height() == b.height() && a.width() == b.width());
    Tensor out(a.channels() + b.channels(), a.height(), a.width());
    for (int c = 0; c < a.channels(); ++c)
        for (int y = 0; y < a.height(); ++y)
            for (int x = 0; x < a.width(); ++x)
                out.at(c, y, x) = a.at(c, y, x);
    for (int c = 0; c < b.channels(); ++c)
        for (int y = 0; y < a.height(); ++y)
            for (int x = 0; x < a.width(); ++x)
                out.at(a.channels() + c, y, x) = b.at(c, y, x);
    return out;
}

Tensor
softmaxChannels(const Tensor &logits)
{
    Tensor out(logits.channels(), logits.height(), logits.width());
    for (int y = 0; y < logits.height(); ++y) {
        for (int x = 0; x < logits.width(); ++x) {
            float max_logit = logits.at(0, y, x);
            for (int c = 1; c < logits.channels(); ++c)
                max_logit = std::max(max_logit, logits.at(c, y, x));
            float sum = 0.0f;
            for (int c = 0; c < logits.channels(); ++c) {
                const float e = std::exp(logits.at(c, y, x) - max_logit);
                out.at(c, y, x) = e;
                sum += e;
            }
            for (int c = 0; c < logits.channels(); ++c)
                out.at(c, y, x) /= sum;
        }
    }
    return out;
}

} // namespace illixr
