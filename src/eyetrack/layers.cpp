#include "eyetrack/layers.hpp"

#include "runtime/parallel.hpp"

#include <cassert>
#include <cmath>

namespace illixr {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel_size)
    : inChannels_(in_channels), outChannels_(out_channels),
      kernelSize_(kernel_size),
      weights_(static_cast<std::size_t>(out_channels) * in_channels *
                   kernel_size * kernel_size,
               0.0f),
      bias_(out_channels, 0.0f)
{
    assert(kernel_size == 1 || kernel_size == 3);
}

void
Conv2d::initializeHe(Rng &rng)
{
    const double fan_in =
        static_cast<double>(inChannels_) * kernelSize_ * kernelSize_;
    const double stddev = std::sqrt(2.0 / fan_in);
    for (float &w : weights_)
        w = static_cast<float>(rng.gaussian(0.0, stddev));
    for (float &b : bias_)
        b = 0.0f;
}

float &
Conv2d::weight(int oc, int ic, int ky, int kx)
{
    return weights_[((static_cast<std::size_t>(oc) * inChannels_ + ic) *
                         kernelSize_ +
                     ky) *
                        kernelSize_ +
                    kx];
}

float
Conv2d::weight(int oc, int ic, int ky, int kx) const
{
    return weights_[((static_cast<std::size_t>(oc) * inChannels_ + ic) *
                         kernelSize_ +
                     ky) *
                        kernelSize_ +
                    kx];
}

Tensor
Conv2d::forward(const Tensor &input) const
{
    assert(input.channels() == inChannels_);
    const int h = input.height();
    const int w = input.width();
    const int pad = kernelSize_ / 2;
    Tensor out(outChannels_, h, w);

    // Output channels are fully independent (each writes its own
    // plane of `out`), so they tile across the kernel pool.
    parallelFor("conv2d", 0, static_cast<std::size_t>(outChannels_), 1,
                [&](std::size_t ob, std::size_t oe) {
    for (int oc = static_cast<int>(ob); oc < static_cast<int>(oe); ++oc) {
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                float acc = bias_[oc];
                for (int ic = 0; ic < inChannels_; ++ic) {
                    for (int ky = 0; ky < kernelSize_; ++ky) {
                        for (int kx = 0; kx < kernelSize_; ++kx) {
                            acc += weight(oc, ic, ky, kx) *
                                   input.atPadded(ic, y + ky - pad,
                                                  x + kx - pad);
                        }
                    }
                }
                out.at(oc, y, x) = acc;
            }
        }
    }
                });
    return out;
}

std::size_t
Conv2d::macCount(int height, int width) const
{
    return static_cast<std::size_t>(height) * width * outChannels_ *
           inChannels_ * kernelSize_ * kernelSize_;
}

BatchNorm::BatchNorm(int channels)
    : scale_(channels, 1.0f), shift_(channels, 0.0f)
{
}

void
BatchNorm::initialize(Rng &rng)
{
    for (float &s : scale_)
        s = static_cast<float>(rng.uniform(0.8, 1.2));
    for (float &s : shift_)
        s = static_cast<float>(rng.uniform(-0.05, 0.05));
}

Tensor
BatchNorm::forward(const Tensor &input) const
{
    assert(static_cast<std::size_t>(input.channels()) == scale_.size());
    Tensor out(input.channels(), input.height(), input.width());
    for (int c = 0; c < input.channels(); ++c) {
        for (int y = 0; y < input.height(); ++y)
            for (int x = 0; x < input.width(); ++x)
                out.at(c, y, x) =
                    scale_[c] * input.at(c, y, x) + shift_[c];
    }
    return out;
}

void
relu(Tensor &t)
{
    float *d = t.data();
    for (std::size_t i = 0; i < t.size(); ++i)
        d[i] = d[i] > 0.0f ? d[i] : 0.0f;
}

Tensor
maxPool2(const Tensor &input)
{
    const int h = input.height() / 2;
    const int w = input.width() / 2;
    Tensor out(input.channels(), h, w);
    for (int c = 0; c < input.channels(); ++c) {
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                const float a = input.at(c, 2 * y, 2 * x);
                const float b = input.at(c, 2 * y, 2 * x + 1);
                const float d = input.at(c, 2 * y + 1, 2 * x);
                const float e = input.at(c, 2 * y + 1, 2 * x + 1);
                out.at(c, y, x) = std::max(std::max(a, b), std::max(d, e));
            }
        }
    }
    return out;
}

Tensor
upsample2(const Tensor &input)
{
    Tensor out(input.channels(), input.height() * 2, input.width() * 2);
    for (int c = 0; c < input.channels(); ++c) {
        for (int y = 0; y < out.height(); ++y)
            for (int x = 0; x < out.width(); ++x)
                out.at(c, y, x) = input.at(c, y / 2, x / 2);
    }
    return out;
}

Tensor
concatChannels(const Tensor &a, const Tensor &b)
{
    assert(a.height() == b.height() && a.width() == b.width());
    Tensor out(a.channels() + b.channels(), a.height(), a.width());
    for (int c = 0; c < a.channels(); ++c)
        for (int y = 0; y < a.height(); ++y)
            for (int x = 0; x < a.width(); ++x)
                out.at(c, y, x) = a.at(c, y, x);
    for (int c = 0; c < b.channels(); ++c)
        for (int y = 0; y < a.height(); ++y)
            for (int x = 0; x < a.width(); ++x)
                out.at(a.channels() + c, y, x) = b.at(c, y, x);
    return out;
}

Tensor
softmaxChannels(const Tensor &logits)
{
    Tensor out(logits.channels(), logits.height(), logits.width());
    for (int y = 0; y < logits.height(); ++y) {
        for (int x = 0; x < logits.width(); ++x) {
            float max_logit = logits.at(0, y, x);
            for (int c = 1; c < logits.channels(); ++c)
                max_logit = std::max(max_logit, logits.at(c, y, x));
            float sum = 0.0f;
            for (int c = 0; c < logits.channels(); ++c) {
                const float e = std::exp(logits.at(c, y, x) - max_logit);
                out.at(c, y, x) = e;
                sum += e;
            }
            for (int c = 0; c < logits.channels(); ++c)
                out.at(c, y, x) /= sum;
        }
    }
    return out;
}

} // namespace illixr
