/**
 * @file
 * Minimal CHW float tensor for the eye-tracking CNN.
 */

#pragma once

#include "image/image.hpp"

#include <cstddef>
#include <vector>

namespace illixr {

/** Dense 3-D tensor, channel-major (C, H, W). */
class Tensor
{
  public:
    Tensor() = default;
    Tensor(int channels, int height, int width, float fill = 0.0f);

    int channels() const { return channels_; }
    int height() const { return height_; }
    int width() const { return width_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &at(int c, int y, int x) { return data_[idx(c, y, x)]; }
    float at(int c, int y, int x) const { return data_[idx(c, y, x)]; }

    /** Zero-padded read (used by convolutions). */
    float atPadded(int c, int y, int x) const;

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Wrap a single-channel image as a 1xHxW tensor. */
    static Tensor fromImage(const ImageF &img);

    /** Extract channel @p c as an image. */
    ImageF toImage(int c) const;

  private:
    std::size_t idx(int c, int y, int x) const
    {
        return (static_cast<std::size_t>(c) * height_ + y) * width_ + x;
    }

    int channels_ = 0;
    int height_ = 0;
    int width_ = 0;
    std::vector<float> data_;
};

} // namespace illixr
