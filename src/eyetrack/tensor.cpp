#include "eyetrack/tensor.hpp"

namespace illixr {

Tensor::Tensor(int channels, int height, int width, float fill)
    : channels_(channels), height_(height), width_(width),
      data_(static_cast<std::size_t>(channels) * height * width, fill)
{
}

float
Tensor::atPadded(int c, int y, int x) const
{
    if (x < 0 || y < 0 || x >= width_ || y >= height_)
        return 0.0f;
    return at(c, y, x);
}

Tensor
Tensor::fromImage(const ImageF &img)
{
    Tensor t(1, img.height(), img.width());
    for (int y = 0; y < img.height(); ++y)
        for (int x = 0; x < img.width(); ++x)
            t.at(0, y, x) = img.at(x, y);
    return t;
}

ImageF
Tensor::toImage(int c) const
{
    ImageF img(width_, height_);
    for (int y = 0; y < height_; ++y)
        for (int x = 0; x < width_; ++x)
            img.at(x, y) = at(c, y, x);
    return img;
}

} // namespace illixr
