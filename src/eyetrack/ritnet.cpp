#include "eyetrack/ritnet.hpp"

#include <cmath>

namespace illixr {

namespace {

/** Class intensity prototypes for the analytic head (see header). */
constexpr double kPrototype[4] = {
    0.62, // Background / skin & eyelid.
    0.88, // Sclera.
    0.45, // Iris.
    0.08, // Pupil.
};
constexpr double kHeadGain = 40.0;

} // namespace

RitNet::RitNet(int width, int height, unsigned seed)
    : width_(width), height_(height),
      enc1a_(1, 8, 3), enc1b_(8, 8, 3),
      enc2a_(8, 16, 3), enc2b_(16, 16, 3),
      mid_(16, 16, 3),
      dec2_(32, 8, 3), dec1_(16, 8, 3),
      head_(9, 4, 1),
      bn1_(8), bn2_(16)
{
    Rng rng(seed);
    enc1a_.initializeHe(rng);
    enc1b_.initializeHe(rng);
    enc2a_.initializeHe(rng);
    enc2b_.initializeHe(rng);
    mid_.initializeHe(rng);
    dec2_.initializeHe(rng);
    dec1_.initializeHe(rng);
    bn1_.initialize(rng);
    bn2_.initialize(rng);

    // Analytic nearest-prototype head on the input-skip channel (8):
    // logit_k = gain * (I * m_k - m_k^2 / 2)  ==> argmax_k is the
    // class whose prototype intensity is nearest to I.
    for (int oc = 0; oc < 4; ++oc) {
        for (int ic = 0; ic < 9; ++ic)
            head_.weight(oc, ic, 0, 0) = 0.0f;
        head_.weight(oc, 8, 0, 0) =
            static_cast<float>(kHeadGain * kPrototype[oc]);
        head_.bias(oc) = static_cast<float>(
            -kHeadGain * kPrototype[oc] * kPrototype[oc] / 2.0);
    }
}

Tensor
RitNet::segment(const ImageF &eye_image)
{
    Tensor input = Tensor::fromImage(eye_image);

    Tensor skip1, skip2, x;
    {
        ScopedTask timer(profile_, "convolution");
        x = enc1a_.forward(input);
        x = bn1_.forward(x);
        relu(x);
        x = enc1b_.forward(x);
        relu(x);
        skip1 = x;
    }
    {
        ScopedTask timer(profile_, "batch_copy");
        x = maxPool2(x);
    }
    {
        ScopedTask timer(profile_, "convolution");
        x = enc2a_.forward(x);
        x = bn2_.forward(x);
        relu(x);
        x = enc2b_.forward(x);
        relu(x);
        skip2 = x;
    }
    {
        ScopedTask timer(profile_, "batch_copy");
        x = maxPool2(x);
    }
    {
        ScopedTask timer(profile_, "convolution");
        x = mid_.forward(x);
        relu(x);
    }
    {
        ScopedTask timer(profile_, "batch_copy");
        x = upsample2(x);
        x = concatChannels(x, skip2);
    }
    {
        ScopedTask timer(profile_, "convolution");
        x = dec2_.forward(x);
        relu(x);
    }
    {
        ScopedTask timer(profile_, "batch_copy");
        x = upsample2(x);
        x = concatChannels(x, skip1);
    }
    {
        ScopedTask timer(profile_, "convolution");
        x = dec1_.forward(x);
        relu(x);
    }
    {
        ScopedTask timer(profile_, "batch_copy");
        x = concatChannels(x, input);
    }
    Tensor probs;
    {
        ScopedTask timer(profile_, "convolution");
        x = head_.forward(x);
    }
    {
        ScopedTask timer(profile_, "misc");
        probs = softmaxChannels(x);
    }
    return probs;
}

GazeEstimate
RitNet::estimate(const ImageF &eye_image)
{
    const Tensor probs = segment(eye_image);
    GazeEstimate est;
    ScopedTask timer(profile_, "misc");

    // Soft centroid of the pupil-class probability.
    const int pupil = static_cast<int>(EyeClass::Pupil);
    double mass = 0.0, mx = 0.0, my = 0.0;
    for (int y = 0; y < probs.height(); ++y) {
        for (int x = 0; x < probs.width(); ++x) {
            const double p = probs.at(pupil, y, x);
            mass += p;
            mx += p * x;
            my += p * y;
        }
    }
    if (mass > 1.0) {
        est.pupil_center = Vec2(mx / mass, my / mass);
        // Inverse of the generator's gaze-to-center mapping.
        est.gaze_rad =
            Vec2((est.pupil_center.x - width_ / 2.0) / (width_ * 0.5),
                 (est.pupil_center.y - height_ / 2.0) / (height_ * 0.5));
    }
    est.confidence = mass;
    return est;
}

std::size_t
RitNet::parameterCount() const
{
    return enc1a_.parameterCount() + enc1b_.parameterCount() +
           enc2a_.parameterCount() + enc2b_.parameterCount() +
           mid_.parameterCount() + dec2_.parameterCount() +
           dec1_.parameterCount() + head_.parameterCount();
}

std::size_t
RitNet::macCount() const
{
    const int h = height_, w = width_;
    const int h2 = h / 2, w2 = w / 2;
    const int h4 = h / 4, w4 = w / 4;
    return enc1a_.macCount(h, w) + enc1b_.macCount(h, w) +
           enc2a_.macCount(h2, w2) + enc2b_.macCount(h2, w2) +
           mid_.macCount(h4, w4) + dec2_.macCount(h2, w2) +
           dec1_.macCount(h, w) + head_.macCount(h, w);
}

} // namespace illixr
