#include "eyetrack/eye_image.hpp"

#include <algorithm>
#include <cmath>

namespace illixr {

EyeImageGenerator::EyeImageGenerator(const EyeImageParams &params,
                                     unsigned seed)
    : params_(params), seed_(seed)
{
}

ImageF
EyeImageGenerator::generate(std::size_t index, EyeGroundTruth *truth)
{
    Rng rng(seed_ + 7919 * index);
    const int w = params_.width;
    const int h = params_.height;

    // Gaze follows a smooth wander over the sequence (saccade-free).
    const double t = static_cast<double>(index) * 0.12;
    const double gaze_yaw =
        params_.max_gaze_rad * std::sin(0.7 * t + 0.3);
    const double gaze_pitch =
        0.6 * params_.max_gaze_rad * std::sin(1.1 * t + 1.2);

    // Eye geometry: gaze shifts the pupil within the visible eye.
    const double cx = w / 2.0 + gaze_yaw * w * 0.5;
    const double cy = h / 2.0 + gaze_pitch * h * 0.5;
    const double iris_r = 0.28 * h + rng.uniform(-1.0, 1.0);
    const double pupil_r = 0.12 * h + rng.uniform(-0.5, 0.5);
    const double sclera_r = 0.75 * h;

    ImageF img(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const double dx = x - cx;
            const double dy = y - cy;
            const double r = std::sqrt(dx * dx + dy * dy);
            // Distance from the (fixed) eyeball center for the sclera.
            const double ex = x - w / 2.0;
            const double ey = (y - h / 2.0) * 1.6; // Squashed ellipse.
            const double re = std::sqrt(ex * ex + ey * ey);

            double v;
            if (r < pupil_r) {
                v = 0.08; // Pupil: darkest.
            } else if (r < iris_r) {
                // Iris with subtle radial texture.
                v = 0.42 + 0.06 * std::sin(14.0 * std::atan2(dy, dx)) *
                               (r - pupil_r) / (iris_r - pupil_r);
            } else if (re < sclera_r) {
                v = 0.88; // Sclera.
            } else {
                v = 0.62; // Skin / eyelid.
            }
            // Eyelid occlusion from the top.
            const double lid = 0.12 * h +
                               0.04 * h * std::sin(0.05 * x + t);
            if (y < lid)
                v = 0.58;
            v += rng.gaussian(0.0, params_.noise_sigma);
            img.at(x, y) = static_cast<float>(std::clamp(v, 0.0, 1.0));
        }
    }

    if (truth) {
        truth->pupil_center = Vec2(cx, cy);
        truth->pupil_radius = pupil_r;
        truth->iris_radius = iris_r;
        truth->gaze_rad = Vec2(gaze_yaw, gaze_pitch);
    }
    return img;
}

} // namespace illixr
