/**
 * @file
 * Synthetic eye-image generator — the OpenEDS-dataset substitute for
 * the eye-tracking component (paper §III-D).
 *
 * Produces grayscale near-eye images with skin, sclera, iris, and
 * pupil regions (the four RITnet classes) plus noise and eyelid
 * occlusion, together with ground-truth pupil center and gaze.
 */

#pragma once

#include "foundation/rng.hpp"
#include "foundation/vec.hpp"
#include "image/image.hpp"

namespace illixr {

/** Ground truth for one synthetic eye image. */
struct EyeGroundTruth
{
    Vec2 pupil_center;   ///< Pixels.
    double pupil_radius = 0.0;
    double iris_radius = 0.0;
    Vec2 gaze_rad;       ///< (yaw, pitch) of gaze direction.
};

/** Generator parameters. */
struct EyeImageParams
{
    int width = 64;   ///< OpenEDS-like aspect, scaled down.
    int height = 48;
    double noise_sigma = 0.02;
    double max_gaze_rad = 0.4; ///< Pupil wander amplitude.
};

/**
 * Deterministic synthetic eye-image stream.
 */
class EyeImageGenerator
{
  public:
    explicit EyeImageGenerator(const EyeImageParams &params = {},
                               unsigned seed = 33);

    /** Generate image @p index (deterministic per index). */
    ImageF generate(std::size_t index, EyeGroundTruth *truth = nullptr);

    const EyeImageParams &params() const { return params_; }

  private:
    EyeImageParams params_;
    unsigned seed_;
};

} // namespace illixr
