/**
 * @file
 * RITnet-mini: the eye-tracking component (paper Table II, RITnet).
 *
 * A scaled-down encoder–decoder segmentation network with the same
 * structure as RITnet (down-convolutions, bottleneck, skip-connected
 * up-convolutions, per-pixel 4-class softmax: background/sclera/
 * iris/pupil). Convolution dominates the forward pass, matching the
 * paper's observation that ~74% of eye-tracking time is convolution.
 *
 * Since no trained weights can ship with a from-scratch reproduction,
 * the feature-extraction stages use deterministic He-initialized
 * weights (exercising the exact inference workload) while the final
 * 1x1 classification head is constructed analytically from the known
 * photometric ordering of the four classes (pupil darkest < iris <
 * skin < sclera) applied to a skip connection of the input. This
 * yields a functional pupil segmenter whose compute profile matches
 * real inference. See DESIGN.md.
 */

#pragma once

#include "eyetrack/eye_image.hpp"
#include "eyetrack/layers.hpp"
#include "foundation/profile.hpp"
#include "foundation/vec.hpp"

#include <memory>

namespace illixr {

/** Segmentation class ids. */
enum class EyeClass { Background = 0, Sclera = 1, Iris = 2, Pupil = 3 };

/** Eye-tracking output for one frame. */
struct GazeEstimate
{
    Vec2 pupil_center;   ///< Pixels.
    Vec2 gaze_rad;       ///< (yaw, pitch) estimate.
    double confidence = 0.0; ///< Total pupil probability mass.
};

/**
 * The eye-tracking network + gaze extraction.
 */
class RitNet
{
  public:
    /** Build the network for a fixed input size. */
    RitNet(int width, int height, unsigned seed = 41);

    /** Full forward pass producing per-pixel class probabilities. */
    Tensor segment(const ImageF &eye_image);

    /** Segment and reduce to a gaze estimate (one eye). */
    GazeEstimate estimate(const ImageF &eye_image);

    /** Learnable-parameter count (for the memory analysis). */
    std::size_t parameterCount() const;

    /** Multiply-accumulate count of one forward pass. */
    std::size_t macCount() const;

    /** Task timing: convolution vs batch-copy vs misc (Fig 8 talk). */
    const TaskProfile &profile() const { return profile_; }
    TaskProfile &profile() { return profile_; }

  private:
    int width_;
    int height_;

    // Encoder.
    Conv2d enc1a_, enc1b_;
    Conv2d enc2a_, enc2b_;
    // Bottleneck.
    Conv2d mid_;
    // Decoder.
    Conv2d dec2_, dec1_;
    // Classification head (1x1) over [decoder features, input skip].
    Conv2d head_;
    BatchNorm bn1_, bn2_;

    TaskProfile profile_;
};

} // namespace illixr
