/**
 * @file
 * CNN inference layers for the eye-tracking network: 2-D convolution,
 * batch normalization (folded scale/shift), ReLU, max pooling,
 * nearest-neighbor upsampling, and channel concatenation.
 *
 * Only the forward pass is implemented — the testbed characterizes
 * inference, matching the paper's use of a pre-trained RITnet.
 */

#pragma once

#include "eyetrack/tensor.hpp"
#include "foundation/rng.hpp"

#include <vector>

namespace illixr {

/**
 * 2-D convolution with 3x3 or 1x1 kernels, stride 1, zero padding
 * that preserves spatial size.
 */
class Conv2d
{
  public:
    /**
     * @param in_channels  Input channel count.
     * @param out_channels Output channel count.
     * @param kernel_size  3 or 1.
     */
    Conv2d(int in_channels, int out_channels, int kernel_size);

    /** He-normal random initialization (deterministic from @p rng). */
    void initializeHe(Rng &rng);

    Tensor forward(const Tensor &input) const;

    /** Weight accessor: (out, in, ky, kx). */
    float &weight(int oc, int ic, int ky, int kx);
    float weight(int oc, int ic, int ky, int kx) const;

    float &bias(int oc) { return bias_[oc]; }
    float bias(int oc) const { return bias_[oc]; }

    int inChannels() const { return inChannels_; }
    int outChannels() const { return outChannels_; }
    int kernelSize() const { return kernelSize_; }

    /** Number of learnable parameters. */
    std::size_t parameterCount() const
    {
        return weights_.size() + bias_.size();
    }

    /** Multiply-accumulate operations for an HxW input. */
    std::size_t macCount(int height, int width) const;

  private:
    int inChannels_;
    int outChannels_;
    int kernelSize_;
    std::vector<float> weights_;
    std::vector<float> bias_;
};

/** Folded batch normalization: y = scale * x + shift per channel. */
class BatchNorm
{
  public:
    explicit BatchNorm(int channels);

    /** Randomized (but benign) parameters for untrained stages. */
    void initialize(Rng &rng);

    Tensor forward(const Tensor &input) const;

    float &scale(int c) { return scale_[c]; }
    float &shift(int c) { return shift_[c]; }

  private:
    std::vector<float> scale_;
    std::vector<float> shift_;
};

/** In-place ReLU. */
void relu(Tensor &t);

/** 2x2 max pooling, stride 2. */
Tensor maxPool2(const Tensor &input);

/** 2x nearest-neighbor upsampling. */
Tensor upsample2(const Tensor &input);

/** Concatenate along the channel dimension (equal H, W). */
Tensor concatChannels(const Tensor &a, const Tensor &b);

/** Per-pixel softmax across channels. */
Tensor softmaxChannels(const Tensor &logits);

} // namespace illixr
