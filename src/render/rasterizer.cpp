#include "render/rasterizer.hpp"

#include "runtime/parallel.hpp"

#include <algorithm>
#include <cmath>

namespace illixr {

namespace {

/** Post-transform vertex. */
struct ShadedVertex
{
    Vec3 ndc;        ///< Normalized device coordinates.
    double inv_w = 0.0;
    Vec3 color;      ///< Gouraud-lit color (pre-divided by w).
    Vec3 normal;     ///< World normal / w (for per-pixel shading).
    Vec3 world;      ///< World position / w.
};

double
edgeFunction(double ax, double ay, double bx, double by, double cx,
             double cy)
{
    return (cx - ax) * (by - ay) - (cy - ay) * (bx - ax);
}

/** Screen-space triangle after setup/culling, ready to rasterize. */
struct SetupTriangle
{
    const ShadedVertex *a = nullptr;
    const ShadedVertex *b = nullptr;
    const ShadedVertex *c = nullptr;
    double ax, ay, bx, by, cx, cy;
    double inv_area;
    int x0, x1, y0, y1; ///< Clamped bounding box.
};

/** Rows of the framebuffer covered by one rasterizer tile band. */
constexpr int kBandRows = 16;

} // namespace

Rasterizer::Rasterizer(int width, int height)
    : color_(width, height), depth_(width, height, 1e30f)
{
}

void
Rasterizer::clear(const Vec3 &color)
{
    for (int y = 0; y < height(); ++y)
        for (int x = 0; x < width(); ++x)
            color_.setPixel(x, y, color);
    depth_.fill(1e30f);
}

void
Rasterizer::draw(const Mesh &mesh, const Mat4 &model, const Mat4 &view,
                 const Mat4 &proj, const DirectionalLight &light,
                 ShadingModel shading)
{
    ++stats_.draw_calls;
    stats_.triangles_submitted += mesh.triangleCount();

    const Mat4 mv = view * model;
    const Mat4 mvp = proj * mv;
    const Vec3 light_dir = light.direction.normalized();
    // Camera position in world space (for specular).
    const Mat4 view_inv = view.inverse();
    const Vec3 eye(view_inv(0, 3), view_inv(1, 3), view_inv(2, 3));

    // Transform all vertices once. (`char`, not `vector<bool>`: tiles
    // write disjoint plain bytes, never shared packed words.)
    std::vector<ShadedVertex> tv(mesh.vertices.size());
    std::vector<char> valid(mesh.vertices.size(), 1);
    parallelFor("raster_xform", 0, mesh.vertices.size(), 64,
                [&](std::size_t vb, std::size_t ve) {
    for (std::size_t i = vb; i < ve; ++i) {
        const Vertex &v = mesh.vertices[i];
        const Vec3 world = model.transformPoint(v.position);
        const Vec4 clip = mvp * Vec4(v.position, 1.0);
        if (clip.w <= 1e-6) {
            valid[i] = 0; // Behind the near plane.
            continue;
        }
        ShadedVertex &out = tv[i];
        out.inv_w = 1.0 / clip.w;
        out.ndc = Vec3(clip.x, clip.y, clip.z) * out.inv_w;
        const Vec3 n = model.transformDirection(v.normal).normalized();
        if (shading == ShadingModel::Gouraud) {
            const double diffuse =
                std::max(0.0, n.dot(light_dir)) * light.intensity;
            out.color = v.color * (light.ambient + diffuse);
        } else {
            out.color = v.color;
        }
        out.normal = n;
        out.world = world;
    }
                });

    const int w = width();
    const int h = height();
    const double half_w = w / 2.0;
    const double half_h = h / 2.0;

    // --- Triangle setup (serial): cull, clamp, and record screen
    // geometry in submission order. ---
    std::vector<SetupTriangle> tris;
    tris.reserve(mesh.indices.size() / 3);
    for (std::size_t t = 0; t + 2 < mesh.indices.size(); t += 3) {
        const std::uint32_t ia = mesh.indices[t];
        const std::uint32_t ib = mesh.indices[t + 1];
        const std::uint32_t ic = mesh.indices[t + 2];
        if (!valid[ia] || !valid[ib] || !valid[ic])
            continue;
        const ShadedVertex &a = tv[ia];
        const ShadedVertex &b = tv[ib];
        const ShadedVertex &c = tv[ic];

        // Screen-space coordinates (y down).
        const double ax = (a.ndc.x + 1.0) * half_w;
        const double ay = (1.0 - a.ndc.y) * half_h;
        const double bx = (b.ndc.x + 1.0) * half_w;
        const double by = (1.0 - b.ndc.y) * half_h;
        const double cx = (c.ndc.x + 1.0) * half_w;
        const double cy = (1.0 - c.ndc.y) * half_h;

        const double area = edgeFunction(ax, ay, bx, by, cx, cy);
        if (area <= 0.0)
            continue; // Backface (front faces are CCW, positive area).

        // Bounding box clamp.
        const int x0 = std::max(
            0, static_cast<int>(std::floor(std::min({ax, bx, cx}))));
        const int x1 = std::min(
            w - 1, static_cast<int>(std::ceil(std::max({ax, bx, cx}))));
        const int y0 = std::max(
            0, static_cast<int>(std::floor(std::min({ay, by, cy}))));
        const int y1 = std::min(
            h - 1, static_cast<int>(std::ceil(std::max({ay, by, cy}))));
        if (x0 > x1 || y0 > y1)
            continue;
        ++stats_.triangles_rasterized;
        tris.push_back({&a, &b, &c, ax, ay, bx, by, cx, cy, 1.0 / area,
                        x0, x1, y0, y1});
    }

    // --- Bin triangles into horizontal tile bands (serial, so each
    // band sees its triangles in submission order). ---
    const std::size_t bands =
        (static_cast<std::size_t>(h) + kBandRows - 1) / kBandRows;
    std::vector<std::vector<std::size_t>> bins(bands);
    for (std::size_t i = 0; i < tris.size(); ++i) {
        for (int band = tris[i].y0 / kBandRows;
             band <= tris[i].y1 / kBandRows; ++band)
            bins[static_cast<std::size_t>(band)].push_back(i);
    }

    // --- Rasterize bands in parallel. Every pixel belongs to exactly
    // one band and each band replays its triangles in submission
    // order, so the depth-test sequence per pixel is identical to the
    // serial rasterizer. Fragment counts combine in band order. ---
    std::vector<std::size_t> band_frags(bands, 0);
    parallelFor("raster_tiles", 0, bands, 1,
                [&](std::size_t bb, std::size_t be) {
    for (std::size_t band = bb; band < be; ++band) {
        const int band_y0 = static_cast<int>(band) * kBandRows;
        const int band_y1 = std::min(h - 1, band_y0 + kBandRows - 1);
        std::size_t frags = 0;
        for (const std::size_t ti : bins[band]) {
            const SetupTriangle &s = tris[ti];
            const ShadedVertex &a = *s.a;
            const ShadedVertex &b = *s.b;
            const ShadedVertex &c = *s.c;
            const double ax = s.ax, ay = s.ay, bx = s.bx, by = s.by,
                         cx = s.cx, cy = s.cy;
            const double inv_area = s.inv_area;
        for (int py = std::max(s.y0, band_y0);
             py <= std::min(s.y1, band_y1); ++py) {
            for (int px = s.x0; px <= s.x1; ++px) {
                const double sx = px + 0.5;
                const double sy = py + 0.5;
                double w0 = edgeFunction(bx, by, cx, cy, sx, sy);
                double w1 = edgeFunction(cx, cy, ax, ay, sx, sy);
                double w2 = edgeFunction(ax, ay, bx, by, sx, sy);
                if (w0 < 0.0 || w1 < 0.0 || w2 < 0.0)
                    continue; // Outside (all-positive inside).
                w0 *= inv_area;
                w1 *= inv_area;
                w2 *= inv_area;

                const double z =
                    w0 * a.ndc.z + w1 * b.ndc.z + w2 * c.ndc.z;
                if (z < -1.0 || z > 1.0)
                    continue;
                if (z >= depth_.at(px, py))
                    continue;

                // Perspective-correct interpolation weights.
                const double iw =
                    w0 * a.inv_w + w1 * b.inv_w + w2 * c.inv_w;
                const double pa = w0 * a.inv_w / iw;
                const double pb = w1 * b.inv_w / iw;
                const double pc = w2 * c.inv_w / iw;

                Vec3 rgb;
                if (shading == ShadingModel::Gouraud) {
                    rgb = a.color * pa + b.color * pb + c.color * pc;
                } else {
                    const Vec3 base =
                        a.color * pa + b.color * pb + c.color * pc;
                    const Vec3 n = (a.normal * pa + b.normal * pb +
                                    c.normal * pc)
                                       .normalized();
                    const Vec3 world = a.world * pa + b.world * pb +
                                       c.world * pc;
                    const double diffuse =
                        std::max(0.0, n.dot(light_dir)) *
                        light.intensity;
                    const Vec3 view_dir = (eye - world).normalized();
                    const Vec3 half_vec =
                        (view_dir + light_dir).normalized();
                    const double spec =
                        0.6 * std::pow(std::max(0.0, n.dot(half_vec)),
                                       24.0);
                    rgb = base * (light.ambient + diffuse) +
                          Vec3(spec, spec, spec);
                }
                depth_.at(px, py) = static_cast<float>(z);
                color_.setPixel(
                    px, py,
                    Vec3(std::clamp(rgb.x, 0.0, 1.0),
                         std::clamp(rgb.y, 0.0, 1.0),
                         std::clamp(rgb.z, 0.0, 1.0)));
                ++frags;
            }
        }
        }
        band_frags[band] = frags;
    }
                });
    for (std::size_t band = 0; band < bands; ++band)
        stats_.fragments_shaded += band_frags[band];
}

} // namespace illixr
