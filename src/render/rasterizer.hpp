/**
 * @file
 * Software rasterizer: the GPU-graphics substitute that renders the
 * application scenes (and whose modeled cost drives the "application"
 * component of the integrated system).
 *
 * Z-buffered triangle rasterization with per-vertex (Gouraud)
 * lighting, optional per-pixel (Phong-style) shading for the
 * Materials app, and backface culling.
 */

#pragma once

#include "foundation/mat.hpp"
#include "image/image.hpp"
#include "render/mesh.hpp"

#include <cstdint>

namespace illixr {

/** Shading model selector. */
enum class ShadingModel
{
    Gouraud,  ///< Per-vertex diffuse (cheap).
    PerPixel, ///< Per-pixel diffuse+specular (Materials-style PBR-lite).
};

/** Simple directional light. */
struct DirectionalLight
{
    Vec3 direction{0.4, 1.0, 0.3}; ///< Toward the light (world).
    double intensity = 0.9;
    double ambient = 0.25;
};

/** Render statistics for the work model. */
struct RasterStats
{
    std::size_t triangles_submitted = 0;
    std::size_t triangles_rasterized = 0; ///< After culling/clip reject.
    std::size_t fragments_shaded = 0;
    std::size_t draw_calls = 0;

    void reset() { *this = RasterStats(); }
};

/**
 * Color + depth framebuffer with draw calls.
 */
class Rasterizer
{
  public:
    Rasterizer(int width, int height);

    /** Clear color and depth. */
    void clear(const Vec3 &color);

    /**
     * Draw a mesh.
     *
     * @param mesh    Geometry (world or model space).
     * @param model   Model-to-world transform.
     * @param view    World-to-view transform.
     * @param proj    Perspective projection.
     * @param light   Scene light.
     * @param shading Shading model.
     */
    void draw(const Mesh &mesh, const Mat4 &model, const Mat4 &view,
              const Mat4 &proj, const DirectionalLight &light,
              ShadingModel shading = ShadingModel::Gouraud);

    const RgbImage &color() const { return color_; }
    const ImageF &depth() const { return depth_; }
    RasterStats &stats() { return stats_; }
    const RasterStats &stats() const { return stats_; }

    int width() const { return color_.width(); }
    int height() const { return color_.height(); }

  private:
    RgbImage color_;
    ImageF depth_; ///< NDC depth in [-1, 1]; init +inf-like.
    RasterStats stats_;
};

} // namespace illixr
