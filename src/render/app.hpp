/**
 * @file
 * XR application driver: renders stereo frames of a Scene from a
 * head pose — the "application" component of the integrated system
 * (scene simulation + physics + rendering; paper §II).
 */

#pragma once

#include "foundation/pose.hpp"
#include "foundation/profile.hpp"
#include "render/scenes.hpp"

namespace illixr {

/** Stereo frame: what the application submits to the runtime. */
struct StereoFrame
{
    RgbImage left;
    RgbImage right;
    Pose render_pose;     ///< Head pose the frame was rendered with.
    TimePoint render_time = 0;
    double app_time_s = 0.0; ///< Scene-simulation time of the frame.
};

/** Application configuration. */
struct AppConfig
{
    int eye_width = 128;     ///< Per-eye resolution (scaled 2K; see
    int eye_height = 128;    ///< DESIGN.md on scaling).
    double fov_y_rad = 1.5;  ///< ~86 degrees.
    double ipd_m = 0.064;    ///< Inter-pupillary distance.
    double near_z = 0.1;
    double far_z = 60.0;
};

/**
 * Renders an application scene for a tracked head.
 */
class XrApplication
{
  public:
    XrApplication(AppId app, const AppConfig &config = AppConfig());

    /**
     * Simulate and render one stereo frame at @p head_pose. The
     * simulation state advances to @p t_seconds.
     */
    StereoFrame renderFrame(const Pose &head_pose, double t_seconds);

    AppId appId() const { return scene_.app(); }
    const Scene &scene() const { return scene_; }
    const AppConfig &config() const { return config_; }

    /**
     * Change the per-eye render resolution at run time (the
     * approximate-computing knob of paper §V-D/§V-E: trade image
     * fidelity for frame rate under QoE feedback). Clamped to
     * [16, 4096].
     */
    void setEyeResolution(int pixels);

    /** Aggregate rasterizer statistics across all frames. */
    const RasterStats &stats() const { return stats_; }

    /** Task timings: simulation vs rendering. */
    const TaskProfile &profile() const { return profile_; }
    TaskProfile &profile() { return profile_; }

  private:
    /** Render one eye into @p target. */
    void renderEye(RgbImage &target, const Pose &eye_pose);

    Scene scene_;
    AppConfig config_;
    RasterStats stats_;
    TaskProfile profile_;
    double physicsState_ = 0.0; ///< Accumulator for the sim workload.
};

/** View matrix of an eye given its world pose (graphics convention:
 *  body/eye looks along its local -Z). */
Mat4 viewMatrixFromPose(const Pose &eye_pose);

/** World pose of the left/right eye given the head pose and IPD. */
Pose eyePose(const Pose &head_pose, double ipd_m, bool left);

} // namespace illixr
