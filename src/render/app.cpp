#include "render/app.hpp"

#include <algorithm>
#include <cmath>

namespace illixr {

void
XrApplication::setEyeResolution(int pixels)
{
    pixels = std::clamp(pixels, 16, 4096);
    config_.eye_width = pixels;
    config_.eye_height = pixels;
}

Mat4
viewMatrixFromPose(const Pose &eye_pose)
{
    // View = inverse of the eye's rigid transform.
    return eye_pose.inverse().toMatrix();
}

Pose
eyePose(const Pose &head_pose, double ipd_m, bool left)
{
    const double offset = (left ? -0.5 : 0.5) * ipd_m;
    return head_pose *
           Pose(Quat::identity(), Vec3(offset, 0.0, 0.0));
}

XrApplication::XrApplication(AppId app, const AppConfig &config)
    : scene_(app), config_(config)
{
}

void
XrApplication::renderEye(RgbImage &target, const Pose &eye)
{
    Rasterizer raster(config_.eye_width, config_.eye_height);
    raster.clear(scene_.backgroundColor());
    const Mat4 view = viewMatrixFromPose(eye);
    const Mat4 proj = Mat4::perspective(
        config_.fov_y_rad,
        static_cast<double>(config_.eye_width) / config_.eye_height,
        config_.near_z, config_.far_z);
    const DirectionalLight light;
    for (std::size_t i = 0; i < scene_.objects().size(); ++i) {
        raster.draw(scene_.objects()[i].mesh, scene_.objectTransform(i),
                    view, proj, light, scene_.objects()[i].shading);
    }
    stats_.triangles_submitted += raster.stats().triangles_submitted;
    stats_.triangles_rasterized += raster.stats().triangles_rasterized;
    stats_.fragments_shaded += raster.stats().fragments_shaded;
    stats_.draw_calls += raster.stats().draw_calls;
    target = raster.color();
}

StereoFrame
XrApplication::renderFrame(const Pose &head_pose, double t_seconds)
{
    StereoFrame frame;
    frame.render_pose = head_pose;
    frame.render_time = fromSeconds(t_seconds);
    frame.app_time_s = t_seconds;

    // --- Scene simulation / "physics". ---
    {
        ScopedTask timer(profile_, "simulation");
        scene_.update(t_seconds);
        // Iterative collision-style workload: pairwise object
        // distance relaxations (cost scales with simulationIterations
        // and object count, dominating in Platformer).
        const auto &objs = scene_.objects();
        for (int iter = 0; iter < scene_.simulationIterations(); ++iter) {
            double acc = 0.0;
            for (std::size_t i = 0; i < objs.size(); ++i) {
                const Mat4 ti = scene_.objectTransform(i);
                const Vec3 pi(ti(0, 3), ti(1, 3), ti(2, 3));
                for (std::size_t j = i + 1; j < objs.size(); ++j) {
                    const Mat4 tj = scene_.objectTransform(j);
                    const Vec3 pj(tj(0, 3), tj(1, 3), tj(2, 3));
                    acc += 1.0 / (1.0 + (pi - pj).squaredNorm());
                }
            }
            physicsState_ += acc * 1e-9;
        }
    }

    // --- Rendering (both eyes). ---
    {
        ScopedTask timer(profile_, "rendering");
        renderEye(frame.left, eyePose(head_pose, config_.ipd_m, true));
        renderEye(frame.right, eyePose(head_pose, config_.ipd_m, false));
    }
    return frame;
}

} // namespace illixr
