#include "render/mesh.hpp"

#include <cmath>

namespace illixr {

void
Mesh::append(const Mesh &other)
{
    const auto base = static_cast<std::uint32_t>(vertices.size());
    vertices.insert(vertices.end(), other.vertices.begin(),
                    other.vertices.end());
    indices.reserve(indices.size() + other.indices.size());
    for (std::uint32_t i : other.indices)
        indices.push_back(base + i);
}

void
Mesh::transform(const Mat4 &m)
{
    for (Vertex &v : vertices) {
        v.position = m.transformPoint(v.position);
        v.normal = m.transformDirection(v.normal).normalized();
    }
}

void
Mesh::setColor(const Vec3 &color)
{
    for (Vertex &v : vertices)
        v.color = color;
}

void
Mesh::bounds(Vec3 &lo, Vec3 &hi) const
{
    lo = Vec3(1e30, 1e30, 1e30);
    hi = Vec3(-1e30, -1e30, -1e30);
    for (const Vertex &v : vertices) {
        lo.x = std::min(lo.x, v.position.x);
        lo.y = std::min(lo.y, v.position.y);
        lo.z = std::min(lo.z, v.position.z);
        hi.x = std::max(hi.x, v.position.x);
        hi.y = std::max(hi.y, v.position.y);
        hi.z = std::max(hi.z, v.position.z);
    }
}

Mesh
makeBox(const Vec3 &he, const Vec3 &color)
{
    Mesh m;
    const Vec3 normals[6] = {{1, 0, 0},  {-1, 0, 0}, {0, 1, 0},
                             {0, -1, 0}, {0, 0, 1},  {0, 0, -1}};
    for (int f = 0; f < 6; ++f) {
        const Vec3 n = normals[f];
        // Build a tangent basis for the face.
        const Vec3 u = (std::fabs(n.x) > 0.5) ? Vec3(0, 1, 0)
                                              : Vec3(1, 0, 0);
        const Vec3 t = n.cross(u).normalized();
        const Vec3 b = n.cross(t);
        const Vec3 center = n.cwiseProduct(he);
        const Vec3 te = t.cwiseProduct(he);
        const Vec3 be = b.cwiseProduct(he);
        const auto base = static_cast<std::uint32_t>(m.vertices.size());
        m.vertices.push_back({center - te - be, n, color});
        m.vertices.push_back({center + te - be, n, color});
        m.vertices.push_back({center + te + be, n, color});
        m.vertices.push_back({center - te + be, n, color});
        // Winding: counter-clockwise seen from outside.
        m.indices.insert(m.indices.end(),
                         {base, base + 1, base + 2, base, base + 2,
                          base + 3});
    }
    return m;
}

Mesh
makeSphere(double radius, int rings, int sectors, const Vec3 &color)
{
    Mesh m;
    for (int r = 0; r <= rings; ++r) {
        const double phi = M_PI * static_cast<double>(r) / rings;
        for (int s = 0; s <= sectors; ++s) {
            const double theta = 2.0 * M_PI * static_cast<double>(s) /
                                 sectors;
            const Vec3 n(std::sin(phi) * std::cos(theta), std::cos(phi),
                         std::sin(phi) * std::sin(theta));
            m.vertices.push_back({n * radius, n, color});
        }
    }
    const int stride = sectors + 1;
    for (int r = 0; r < rings; ++r) {
        for (int s = 0; s < sectors; ++s) {
            const auto i0 = static_cast<std::uint32_t>(r * stride + s);
            const auto i1 = i0 + 1;
            const auto i2 = i0 + stride;
            const auto i3 = i2 + 1;
            m.indices.insert(m.indices.end(), {i0, i2, i1, i1, i2, i3});
        }
    }
    return m;
}

Mesh
makePlane(double size_x, double size_z, int cells, const Vec3 &color_a,
          const Vec3 &color_b)
{
    Mesh m;
    const double dx = size_x / cells;
    const double dz = size_z / cells;
    for (int cz = 0; cz < cells; ++cz) {
        for (int cx = 0; cx < cells; ++cx) {
            const Vec3 color = ((cx + cz) & 1) ? color_a : color_b;
            const double x0 = -size_x / 2.0 + cx * dx;
            const double z0 = -size_z / 2.0 + cz * dz;
            const Vec3 n(0, 1, 0);
            const auto base =
                static_cast<std::uint32_t>(m.vertices.size());
            m.vertices.push_back({Vec3(x0, 0, z0), n, color});
            m.vertices.push_back({Vec3(x0 + dx, 0, z0), n, color});
            m.vertices.push_back({Vec3(x0 + dx, 0, z0 + dz), n, color});
            m.vertices.push_back({Vec3(x0, 0, z0 + dz), n, color});
            m.indices.insert(m.indices.end(), {base, base + 2, base + 1,
                                               base, base + 3, base + 2});
        }
    }
    return m;
}

Mesh
makeCylinder(double radius, double height, int sectors, const Vec3 &color)
{
    Mesh m;
    const double h2 = height / 2.0;
    // Side wall.
    for (int s = 0; s <= sectors; ++s) {
        const double theta = 2.0 * M_PI * static_cast<double>(s) / sectors;
        const Vec3 n(std::cos(theta), 0.0, std::sin(theta));
        m.vertices.push_back({Vec3(n.x * radius, -h2, n.z * radius), n,
                              color});
        m.vertices.push_back({Vec3(n.x * radius, h2, n.z * radius), n,
                              color});
    }
    for (int s = 0; s < sectors; ++s) {
        const auto i0 = static_cast<std::uint32_t>(2 * s);
        m.indices.insert(m.indices.end(), {i0, i0 + 1, i0 + 2, i0 + 2,
                                           i0 + 1, i0 + 3});
    }
    // Caps.
    for (int cap = 0; cap < 2; ++cap) {
        const double y = cap ? h2 : -h2;
        const Vec3 n(0.0, cap ? 1.0 : -1.0, 0.0);
        const auto center = static_cast<std::uint32_t>(m.vertices.size());
        m.vertices.push_back({Vec3(0, y, 0), n, color});
        for (int s = 0; s <= sectors; ++s) {
            const double theta =
                2.0 * M_PI * static_cast<double>(s) / sectors;
            m.vertices.push_back(
                {Vec3(std::cos(theta) * radius, y,
                      std::sin(theta) * radius),
                 n, color});
        }
        for (int s = 0; s < sectors; ++s) {
            const auto a = center + 1 + s;
            const auto b = center + 2 + s;
            if (cap)
                m.indices.insert(m.indices.end(), {center, b, a});
            else
                m.indices.insert(m.indices.end(), {center, a, b});
        }
    }
    return m;
}

Mesh
makeTorus(double major_radius, double minor_radius, int major_segments,
          int minor_segments, const Vec3 &color)
{
    Mesh m;
    for (int i = 0; i <= major_segments; ++i) {
        const double u = 2.0 * M_PI * static_cast<double>(i) /
                         major_segments;
        const Vec3 ring_center(major_radius * std::cos(u), 0.0,
                               major_radius * std::sin(u));
        const Vec3 ring_dir = ring_center.normalized();
        for (int j = 0; j <= minor_segments; ++j) {
            const double v = 2.0 * M_PI * static_cast<double>(j) /
                             minor_segments;
            const Vec3 n =
                ring_dir * std::cos(v) + Vec3(0, 1, 0) * std::sin(v);
            m.vertices.push_back(
                {ring_center + n * minor_radius, n, color});
        }
    }
    const int stride = minor_segments + 1;
    for (int i = 0; i < major_segments; ++i) {
        for (int j = 0; j < minor_segments; ++j) {
            const auto i0 =
                static_cast<std::uint32_t>(i * stride + j);
            const auto i1 = i0 + 1;
            const auto i2 = i0 + stride;
            const auto i3 = i2 + 1;
            m.indices.insert(m.indices.end(), {i0, i1, i2, i1, i3, i2});
        }
    }
    return m;
}

} // namespace illixr
