/**
 * @file
 * Triangle meshes and procedural generators for the application
 * scenes (the Godot-app substitute; see DESIGN.md).
 */

#pragma once

#include "foundation/mat.hpp"
#include "foundation/vec.hpp"

#include <cstdint>
#include <vector>

namespace illixr {

/** One mesh vertex. */
struct Vertex
{
    Vec3 position;
    Vec3 normal;
    Vec3 color{0.8, 0.8, 0.8};
};

/** Indexed triangle mesh. */
struct Mesh
{
    std::vector<Vertex> vertices;
    std::vector<std::uint32_t> indices; ///< Triangle list (3 per tri).

    std::size_t triangleCount() const { return indices.size() / 3; }

    /** Append another mesh (indices are re-based). */
    void append(const Mesh &other);

    /** Transform all vertices (positions by @p m, normals by its
     *  rotation part; assumes rigid + uniform scale). */
    void transform(const Mat4 &m);

    /** Set every vertex color. */
    void setColor(const Vec3 &color);

    /** Axis-aligned bounds (min, max). */
    void bounds(Vec3 &lo, Vec3 &hi) const;
};

/** Axis-aligned box centered at the origin. */
Mesh makeBox(const Vec3 &half_extents, const Vec3 &color);

/** Lat-long sphere. */
Mesh makeSphere(double radius, int rings, int sectors, const Vec3 &color);

/** Flat grid in the XZ plane (y = 0), size x by z, n x n cells,
 *  alternating checker colors. */
Mesh makePlane(double size_x, double size_z, int cells, const Vec3 &color_a,
               const Vec3 &color_b);

/** Closed cylinder along +Y. */
Mesh makeCylinder(double radius, double height, int sectors,
                  const Vec3 &color);

/** Torus in the XZ plane. */
Mesh makeTorus(double major_radius, double minor_radius, int major_segments,
               int minor_segments, const Vec3 &color);

} // namespace illixr
