#include "render/scenes.hpp"

#include "foundation/quat.hpp"
#include "foundation/rng.hpp"

#include <cmath>

namespace illixr {

const char *
appName(AppId app)
{
    switch (app) {
      case AppId::Sponza: return "Sponza";
      case AppId::Materials: return "Materials";
      case AppId::Platformer: return "Platformer";
      case AppId::ArDemo: return "AR Demo";
    }
    return "?";
}

const char *
appShortName(AppId app)
{
    switch (app) {
      case AppId::Sponza: return "S";
      case AppId::Materials: return "M";
      case AppId::Platformer: return "P";
      case AppId::ArDemo: return "AR";
    }
    return "?";
}

namespace {

/** Sponza-like atrium: colonnade, arches, floor — high poly count. */
std::vector<SceneObject>
buildSponza()
{
    std::vector<SceneObject> objects;
    Rng rng(101);

    // Floor and walls.
    SceneObject floor;
    floor.mesh = makePlane(16.0, 10.0, 24, Vec3(0.55, 0.45, 0.35),
                           Vec3(0.4, 0.33, 0.27));
    objects.push_back(std::move(floor));

    // Two colonnades of fluted columns (high tessellation).
    for (int side = -1; side <= 1; side += 2) {
        for (int i = 0; i < 8; ++i) {
            SceneObject column;
            column.mesh =
                makeCylinder(0.35, 3.2, 48, Vec3(0.75, 0.7, 0.6));
            column.base_transform = Mat4::translation(
                Vec3(-6.0 + 1.7 * i, 1.6, side * 3.2));
            objects.push_back(std::move(column));

            // Capital on top of each column.
            SceneObject capital;
            capital.mesh =
                makeBox(Vec3(0.45, 0.12, 0.45), Vec3(0.8, 0.75, 0.62));
            capital.base_transform = Mat4::translation(
                Vec3(-6.0 + 1.7 * i, 3.3, side * 3.2));
            objects.push_back(std::move(capital));
        }
    }

    // Arches along the colonnades (torus segments as full tori,
    // mostly hidden but contributing realistic overdraw).
    for (int i = 0; i < 7; ++i) {
        SceneObject arch;
        arch.mesh = makeTorus(0.85, 0.14, 48, 16, Vec3(0.7, 0.64, 0.5));
        arch.base_transform =
            Mat4::translation(Vec3(-5.15 + 1.7 * i, 3.4, 3.2)) *
            Mat4::fromRotation(
                Quat::fromAxisAngle(Vec3(0, 0, 1), M_PI / 2).toMatrix());
        objects.push_back(std::move(arch));
    }

    // Draped banners (dense planes) for global-illumination-esque
    // variety of colors.
    for (int i = 0; i < 4; ++i) {
        SceneObject banner;
        banner.mesh =
            makePlane(1.2, 2.2, 12,
                      Vec3(0.7, 0.15 + 0.1 * i, 0.15),
                      Vec3(0.55, 0.1 + 0.08 * i, 0.1));
        banner.base_transform =
            Mat4::translation(Vec3(-4.0 + 2.6 * i, 2.4, 0.0)) *
            Mat4::fromRotation(
                Quat::fromAxisAngle(Vec3(1, 0, 0), M_PI / 2).toMatrix());
        objects.push_back(std::move(banner));
    }

    // High-poly centerpiece.
    SceneObject statue;
    statue.mesh = makeSphere(0.6, 64, 96, Vec3(0.85, 0.82, 0.75));
    statue.base_transform = Mat4::translation(Vec3(0.0, 1.0, 0.0));
    objects.push_back(std::move(statue));

    return objects;
}

/** Materials testers: spheres with per-pixel shading. */
std::vector<SceneObject>
buildMaterials()
{
    std::vector<SceneObject> objects;

    SceneObject floor;
    floor.mesh = makePlane(10.0, 10.0, 10, Vec3(0.35, 0.35, 0.38),
                           Vec3(0.28, 0.28, 0.3));
    objects.push_back(std::move(floor));

    const Vec3 colors[8] = {
        {0.8, 0.2, 0.2}, {0.2, 0.7, 0.3}, {0.2, 0.3, 0.8},
        {0.8, 0.7, 0.2}, {0.7, 0.3, 0.7}, {0.3, 0.7, 0.7},
        {0.85, 0.5, 0.2}, {0.6, 0.6, 0.65}};
    for (int i = 0; i < 8; ++i) {
        SceneObject sphere;
        sphere.mesh = makeSphere(0.5, 28, 36, colors[i]);
        sphere.shading = ShadingModel::PerPixel; // "PBR" showcase.
        sphere.base_transform = Mat4::translation(
            Vec3(-2.4 + 1.6 * (i % 4), 0.8 + 1.6 * (i / 4),
                 -2.0 + 0.5 * (i % 3)));
        sphere.motion = SceneObject::Motion::Orbit;
        sphere.motion_rate = 0.2 + 0.07 * i;
        sphere.motion_amplitude = 0.15;
        objects.push_back(std::move(sphere));
    }
    return objects;
}

/** Platformer: maze of boxes, patrol "enemies", a bouncing ball. */
std::vector<SceneObject>
buildPlatformer()
{
    std::vector<SceneObject> objects;
    Rng rng(103);

    SceneObject floor;
    floor.mesh = makePlane(14.0, 14.0, 14, Vec3(0.3, 0.5, 0.3),
                           Vec3(0.25, 0.42, 0.25));
    objects.push_back(std::move(floor));

    // Maze walls.
    for (int i = 0; i < 18; ++i) {
        SceneObject wall;
        const double len = rng.uniform(0.8, 2.4);
        wall.mesh =
            makeBox(Vec3(len, 0.5, 0.25), Vec3(0.5, 0.42, 0.3));
        wall.base_transform =
            Mat4::translation(Vec3(rng.uniform(-5.5, 5.5), 0.5,
                                   rng.uniform(-5.5, 5.5))) *
            Mat4::fromRotation(
                Quat::fromAxisAngle(Vec3(0, 1, 0),
                                    rng.uniform(0.0, M_PI))
                    .toMatrix());
        objects.push_back(std::move(wall));
    }

    // Crab-like patrol enemies.
    for (int i = 0; i < 6; ++i) {
        SceneObject crab;
        crab.mesh = makeSphere(0.3, 12, 16, Vec3(0.8, 0.25, 0.15));
        Mesh claws = makeBox(Vec3(0.12, 0.08, 0.25),
                             Vec3(0.7, 0.2, 0.1));
        claws.transform(Mat4::translation(Vec3(0.35, 0.0, 0.0)));
        crab.mesh.append(claws);
        crab.base_transform = Mat4::translation(
            Vec3(rng.uniform(-4.0, 4.0), 0.3, rng.uniform(-4.0, 4.0)));
        crab.motion = SceneObject::Motion::Patrol;
        crab.motion_rate = 0.4 + 0.1 * i;
        crab.motion_amplitude = 1.5;
        objects.push_back(std::move(crab));
    }

    // Bouncing ball (the physics showcase).
    SceneObject ball;
    ball.mesh = makeSphere(0.25, 16, 20, Vec3(0.95, 0.85, 0.2));
    ball.base_transform = Mat4::translation(Vec3(1.0, 0.0, 1.0));
    ball.motion = SceneObject::Motion::Bounce;
    ball.motion_rate = 1.3;
    ball.motion_amplitude = 1.2;
    objects.push_back(std::move(ball));

    return objects;
}

/** Sparse AR demo: a few virtual objects + animated ball. */
std::vector<SceneObject>
buildArDemo()
{
    std::vector<SceneObject> objects;

    SceneObject table;
    table.mesh = makeBox(Vec3(0.6, 0.04, 0.4), Vec3(0.6, 0.5, 0.35));
    table.base_transform = Mat4::translation(Vec3(0.0, 0.9, -1.5));
    objects.push_back(std::move(table));

    SceneObject marker;
    marker.mesh = makeBox(Vec3(0.1, 0.1, 0.1), Vec3(0.2, 0.5, 0.9));
    marker.base_transform = Mat4::translation(Vec3(-0.3, 1.05, -1.5));
    objects.push_back(std::move(marker));

    SceneObject ball;
    ball.mesh = makeSphere(0.08, 10, 14, Vec3(0.95, 0.4, 0.2));
    ball.base_transform = Mat4::translation(Vec3(0.25, 1.0, -1.5));
    ball.motion = SceneObject::Motion::Bounce;
    ball.motion_rate = 1.8;
    ball.motion_amplitude = 0.35;
    objects.push_back(std::move(ball));

    return objects;
}

} // namespace

Scene::Scene(AppId app) : app_(app)
{
    switch (app) {
      case AppId::Sponza:
        objects_ = buildSponza();
        simIterations_ = 2;
        background_ = Vec3(0.18, 0.2, 0.28);
        break;
      case AppId::Materials:
        objects_ = buildMaterials();
        simIterations_ = 1;
        background_ = Vec3(0.1, 0.1, 0.14);
        break;
      case AppId::Platformer:
        objects_ = buildPlatformer();
        simIterations_ = 8; // Physics/collision heavy.
        background_ = Vec3(0.4, 0.6, 0.85);
        break;
      case AppId::ArDemo:
        objects_ = buildArDemo();
        simIterations_ = 1;
        background_ = Vec3(0.0, 0.0, 0.0); // Passthrough black.
        break;
    }
}

void
Scene::update(double t)
{
    time_ = t;
}

Mat4
Scene::objectTransform(std::size_t i) const
{
    const SceneObject &obj = objects_[i];
    switch (obj.motion) {
      case SceneObject::Motion::Static:
        return obj.base_transform;
      case SceneObject::Motion::Orbit: {
        const double a = obj.motion_rate * time_ * 2.0 * M_PI;
        return obj.base_transform *
               Mat4::translation(
                   Vec3(obj.motion_amplitude * std::cos(a), 0.0,
                        obj.motion_amplitude * std::sin(a)));
      }
      case SceneObject::Motion::Bounce: {
        const double phase =
            std::fabs(std::sin(obj.motion_rate * time_ * M_PI));
        return obj.base_transform *
               Mat4::translation(
                   Vec3(0.0, obj.motion_amplitude * phase, 0.0));
      }
      case SceneObject::Motion::Patrol: {
        const double a = obj.motion_rate * time_ * 2.0 * M_PI;
        return obj.base_transform *
               Mat4::translation(
                   Vec3(obj.motion_amplitude * std::sin(a), 0.0, 0.0)) *
               Mat4::fromRotation(
                   Quat::fromAxisAngle(Vec3(0, 1, 0),
                                       std::cos(a) > 0 ? 0.0 : M_PI)
                       .toMatrix());
      }
    }
    return obj.base_transform;
}

std::size_t
Scene::triangleCount() const
{
    std::size_t n = 0;
    for (const SceneObject &obj : objects_)
        n += obj.mesh.triangleCount();
    return n;
}

} // namespace illixr
