/**
 * @file
 * The four benchmark applications of the paper (§III-C): Sponza,
 * Materials, Platformer, and the sparse AR demo — rebuilt as
 * procedural scenes of matching *relative* rendering complexity
 * (Sponza most graphics-intensive, AR demo least; see DESIGN.md).
 */

#pragma once

#include "render/mesh.hpp"
#include "render/rasterizer.hpp"

#include <string>
#include <vector>

namespace illixr {

/** Application id (paper §III-C order). */
enum class AppId
{
    Sponza = 0,
    Materials = 1,
    Platformer = 2,
    ArDemo = 3,
};

/** Human-readable short name (S, M, P, AR in the paper's figures). */
const char *appName(AppId app);
const char *appShortName(AppId app);

/** One object in a scene. */
struct SceneObject
{
    Mesh mesh;
    Mat4 base_transform = Mat4::identity();
    ShadingModel shading = ShadingModel::Gouraud;

    /** Animation: none, orbiting, or bouncing. */
    enum class Motion { Static, Orbit, Bounce, Patrol } motion =
        Motion::Static;
    double motion_rate = 1.0;
    double motion_amplitude = 1.0;
};

/**
 * A renderable scene: objects plus simulation (the application-side
 * "scene simulation / physics" work the paper folds into the
 * application component).
 */
class Scene
{
  public:
    explicit Scene(AppId app);

    AppId app() const { return app_; }

    /** Advance the simulation to @p t_seconds (cheap, analytic). */
    void update(double t_seconds);

    /** Current object transform (base * animation). */
    Mat4 objectTransform(std::size_t i) const;

    const std::vector<SceneObject> &objects() const { return objects_; }

    /** Total triangles across all objects. */
    std::size_t triangleCount() const;

    /** Extra per-frame CPU simulation iterations (physics cost knob;
     *  Platformer runs collision-heavy simulation). */
    int simulationIterations() const { return simIterations_; }

    /** Background (sky) color; AR uses black = passthrough. */
    Vec3 backgroundColor() const { return background_; }

  private:
    AppId app_;
    std::vector<SceneObject> objects_;
    double time_ = 0.0;
    int simIterations_ = 1;
    Vec3 background_{0.25, 0.35, 0.5};
};

} // namespace illixr
