#include "edge/edge_server.hpp"

#include "trace/metrics_registry.hpp"
#include "trace/trace.hpp"

#include <algorithm>

namespace illixr {

namespace {

/** The one canonical request order: (arrival, client, seq). */
bool
requestBefore(const EdgeRequest &a, const EdgeRequest &b)
{
    if (a.arrival != b.arrival)
        return a.arrival < b.arrival;
    if (a.client != b.client)
        return a.client < b.client;
    return a.seq < b.seq;
}

} // namespace

EdgeServer::EdgeServer(const EdgeServerConfig &config) : config_(config)
{
    if (config_.max_batch == 0)
        config_.max_batch = 1;
    if (config_.max_queue == 0)
        config_.max_queue = 1;
}

void
EdgeServer::setMetrics(MetricsRegistry *metrics)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!metrics) {
        servedCounter_ = shedCounter_ = rejectedCounter_ =
            batchesCounter_ = nullptr;
        batchSizeHist_ = serviceMsHist_ = waitMsHist_ = nullptr;
        queueDepthGauge_ = nullptr;
        return;
    }
    servedCounter_ = &metrics->counter("edge.served");
    shedCounter_ = &metrics->counter("edge.shed");
    rejectedCounter_ = &metrics->counter("edge.rejected");
    batchesCounter_ = &metrics->counter("edge.batches");
    batchSizeHist_ = &metrics->histogram("edge.batch_size");
    serviceMsHist_ = &metrics->histogram("edge.service_ms");
    waitMsHist_ = &metrics->histogram("edge.wait_ms");
    queueDepthGauge_ = &metrics->gauge("edge.queue_depth");
}

void
EdgeServer::setTraceSink(TraceSink *sink)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sink_ = sink;
}

bool
EdgeServer::connect(std::uint64_t client)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (clients_.size() >= config_.max_clients ||
        clients_.count(client))
        return false;
    clients_.emplace(client, ClientState{});
    return true;
}

void
EdgeServer::disconnect(std::uint64_t client)
{
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [client](const EdgeRequest &r) {
                                      return r.client == client;
                                  }),
                   pending_.end());
    clients_.erase(client);
}

double
EdgeServer::batchServiceMs(std::size_t n) const
{
    if (n == 0)
        return 0.0;
    return config_.dispatch_overhead_ms +
           config_.per_request_ms * static_cast<double>(n);
}

bool
EdgeServer::submit(const EdgeRequest &request)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = clients_.find(request.client);
    if (it == clients_.end() || it->second.queued >= config_.max_queue) {
        ++rejected_;
        if (rejectedCounter_)
            rejectedCounter_->add();
        return false;
    }

    // Deadline-aware admission: if the pose cannot arrive in time even
    // when served next — alone, with no batching wait — shed NOW so
    // the client falls back immediately instead of queueing to death.
    const TimePoint earliest =
        std::max(busy_until_, request.arrival) +
        fromSeconds(batchServiceMs(1) / 1000.0);
    if (earliest > request.deadline) {
        ++shed_;
        if (shedCounter_)
            shedCounter_->add();
        EdgeCompletion c;
        c.client = request.client;
        c.seq = request.seq;
        c.verdict = EdgeVerdict::Shed;
        c.done = request.arrival;
        it->second.done.push_back(c);
        return true;
    }

    auto pos = std::upper_bound(pending_.begin(), pending_.end(),
                                request, requestBefore);
    pending_.insert(pos, request);
    ++it->second.queued;
    return true;
}

bool
EdgeServer::tryRunBatchLocked(TimePoint now)
{
    // Launch trigger: the head batch fills, or the head request's
    // window expires — a pure function of arrival times, never of
    // pump cadence.
    TimePoint trigger = pending_.front().arrival + config_.batch_window;
    if (pending_.size() >= config_.max_batch)
        trigger =
            std::min(trigger, pending_[config_.max_batch - 1].arrival);
    const TimePoint start = std::max(trigger, busy_until_);

    // Members: everything that arrived by the start, up to the batch
    // cap (pending_ is kept sorted).
    std::size_t k = 0;
    while (k < pending_.size() && k < config_.max_batch &&
           pending_[k].arrival <= start)
        ++k;
    if (k == 0)
        return false; // Head is in the future.

    const TimePoint done_full =
        start + fromSeconds(batchServiceMs(k) / 1000.0);
    if (done_full > now)
        return false; // Batch still in service at `now`.

    // Shed members that would receive a pose already past its
    // deadline; dropping them only makes the survivors *earlier*.
    std::vector<EdgeRequest> members(
        pending_.begin(),
        pending_.begin() + static_cast<std::ptrdiff_t>(k));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(k));
    std::vector<BatchVioItem> items;
    std::vector<const EdgeRequest *> run;
    items.reserve(members.size());
    for (const EdgeRequest &r : members) {
        auto it = clients_.find(r.client);
        if (it == clients_.end())
            continue; // Disconnected while queued.
        --it->second.queued;
        if (r.deadline < done_full) {
            ++shed_;
            if (shedCounter_)
                shedCounter_->add();
            EdgeCompletion c;
            c.client = r.client;
            c.seq = r.seq;
            c.verdict = EdgeVerdict::Shed;
            c.done = start;
            it->second.done.push_back(c);
            continue;
        }
        items.push_back({r.client, r.seq});
        run.push_back(&r);
    }
    if (run.empty())
        return true; // All shed; the server never went busy.

    const double service_ms = batchServiceMs(run.size());
    const TimePoint done = start + fromSeconds(service_ms / 1000.0);
    const std::vector<std::uint64_t> digests =
        fusedMsckfUpdate(items, config_.vio);

    for (std::size_t i = 0; i < run.size(); ++i) {
        const EdgeRequest &r = *run[i];
        ClientState &cs = clients_.at(r.client);
        EdgeCompletion c;
        c.client = r.client;
        c.seq = r.seq;
        c.verdict = EdgeVerdict::Served;
        c.done = done;
        c.service_ms = service_ms;
        c.batch_size = static_cast<std::uint32_t>(run.size());
        c.digest = digests[i];
        cs.done.push_back(c);
        cs.service_ms.add(toMilliseconds(done - r.arrival));
        ++served_;
        if (servedCounter_)
            servedCounter_->add();
        if (waitMsHist_)
            waitMsHist_->observe(toMilliseconds(start - r.arrival));
    }
    busy_until_ = done;
    ++batches_;
    if (batchesCounter_)
        batchesCounter_->add();
    if (batchSizeHist_)
        batchSizeHist_->observe(static_cast<double>(run.size()));
    if (serviceMsHist_)
        serviceMsHist_->observe(service_ms);
    if (sink_) {
        Span span;
        span.task = "edge.batch";
        span.arrival = run.front()->arrival;
        span.start = start;
        span.completion = done;
        span.host_seconds = service_ms / 1000.0;
        sink_->recordSpan(span);
    }
    return true;
}

void
EdgeServer::pump(TimePoint now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    while (!pending_.empty() && tryRunBatchLocked(now)) {
    }
    if (queueDepthGauge_)
        queueDepthGauge_->set(static_cast<double>(pending_.size()));
}

std::vector<EdgeCompletion>
EdgeServer::poll(std::uint64_t client)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = clients_.find(client);
    if (it == clients_.end())
        return {};
    std::vector<EdgeCompletion> out;
    out.swap(it->second.done);
    return out;
}

std::size_t
EdgeServer::connectedClients() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return clients_.size();
}

std::size_t
EdgeServer::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
}

std::uint64_t
EdgeServer::servedTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return served_;
}

std::uint64_t
EdgeServer::shedTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shed_;
}

std::uint64_t
EdgeServer::rejectedTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
}

std::uint64_t
EdgeServer::batchesTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return batches_;
}

SampleSeries
EdgeServer::clientServiceMs(std::uint64_t client) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = clients_.find(client);
    return it == clients_.end() ? SampleSeries{}
                                : it->second.service_ms;
}

} // namespace illixr
