#include "edge/batch_vio.hpp"

#include "foundation/rng.hpp"
#include "linalg/decomp.hpp"
#include "linalg/matrix.hpp"
#include "runtime/parallel.hpp"

#include <cstring>

namespace illixr {

namespace {

/** Pure per-item seed: a function of (client, seq) only. */
std::uint64_t
itemSeed(std::uint64_t client, std::uint64_t seq)
{
    std::uint64_t z = client * 0x9e3779b97f4a7c15ULL + seq + 1;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t x)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xffULL;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** One client's compressed MSCKF update; returns the dx digest. */
std::uint64_t
updateOne(const BatchVioItem &item, const BatchVioParams &p)
{
    Rng rng(itemSeed(item.client, item.seq));
    const std::size_t m = p.rows;
    const std::size_t n = p.state_dim;

    // Stacked feature Jacobian and residual for this client's window
    // (synthesized; a real deployment would deserialize them from the
    // request payload — the linear algebra below is the real thing).
    MatX h(m, n);
    VecX r(m);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            h(i, j) = rng.gaussian();
        r[i] = rng.gaussian(0.0, p.noise);
    }

    // Measurement compression: H = Q * Th, rn = Q^T r. The update
    // only needs the thin upper-triangular factor (MSCKF §update).
    HouseholderQR qr(h);
    const MatX th = qr.matrixR();          // n x n
    const VecX qtr = qr.applyQT(r);
    VecX rn(n);
    for (std::size_t i = 0; i < n; ++i)
        rn[i] = qtr[i];

    // EKF gain with an isotropic prior P = prior * I:
    //   S  = Th P Th^T + noise^2 I
    //   dx = P Th^T S^{-1} rn
    MatX s = th.timesTranspose(th) * p.prior;
    for (std::size_t i = 0; i < n; ++i)
        s(i, i) += p.noise * p.noise;
    const Cholesky chol(s);
    if (!chol.ok())
        return fnv1a(0xcbf29ce484222325ULL, itemSeed(item.client, item.seq));
    const VecX y = chol.solve(rn);
    VecX dx(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t k = 0; k < n; ++k)
            acc += th(k, i) * y[k];
        dx[i] = p.prior * acc;
    }

    std::uint64_t digest = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t bits = 0;
        static_assert(sizeof(double) == sizeof(std::uint64_t));
        std::memcpy(&bits, &dx[i], sizeof(bits));
        digest = fnv1a(digest, bits);
    }
    return digest;
}

} // namespace

std::vector<std::uint64_t>
fusedMsckfUpdate(const std::vector<BatchVioItem> &batch,
                 const BatchVioParams &params)
{
    std::vector<std::uint64_t> digests(batch.size(), 0);
    if (batch.empty())
        return digests;
    // One launch for the whole batch; tiles are clients with disjoint
    // outputs, so digests are width-invariant. The MatX products and
    // decompositions inside each tile degrade inline-serial when they
    // would self-parallelize (KernelPool nesting rule).
    parallelFor("edge.batch", 0, batch.size(), 1,
                [&](std::size_t b, std::size_t e) {
                    for (std::size_t i = b; i < e; ++i)
                        digests[i] = updateOne(batch[i], params);
                });
    return digests;
}

double
fusedUpdateFlops(const BatchVioParams &p)
{
    const double m = static_cast<double>(p.rows);
    const double n = static_cast<double>(p.state_dim);
    // QR: 2mn^2 - 2n^3/3; S build: n^3; Cholesky: n^3/3; solves: 2n^2.
    return 2.0 * m * n * n - 2.0 * n * n * n / 3.0 + n * n * n +
           n * n * n / 3.0 + 2.0 * n * n;
}

} // namespace illixr
