/**
 * @file
 * Session glue for edge-served VIO: turns a SessionConfig's
 * EdgeOptions (`--edge`, `ILLIXR_EDGE_*`) into an OffloadedVioPlugin
 * factory speaking to a shared EdgeServer.
 *
 * This is the layering keystone: xr parses EdgeOptions but never
 * links the server; src/edge (this layer) depends on offload + xr and
 * plugs the factory in from above. A SessionManager fleet becomes a
 * client swarm by attachEdgeClient()-ing every session onto ONE
 * server with distinct client ids.
 */

#pragma once

#include "edge/edge_server.hpp"
#include "xr/session.hpp"

#include <cstdint>
#include <memory>
#include <string>

namespace illixr {

/** Build a server from the session-level edge knobs. */
std::shared_ptr<EdgeServer> makeEdgeServer(const EdgeOptions &options);

/**
 * Install an edge-served VIO factory on @p config: the session's head
 * tracker becomes a client stub of @p server (created from
 * config.edge when null) under the stable key @p client_id, with its
 * link preset resolved from config.edge.link and its jitter/loss
 * stream seeded NetworkModel::linkSeed(config.seed, client_id) — the
 * admission-order-free per-client stream of the determinism contract.
 *
 * @return false (with the diagnostic in @p error, if given) on an
 * unknown link name; @p config is then left untouched.
 */
bool attachEdgeClient(SessionConfig &config, std::uint64_t client_id,
                      std::shared_ptr<EdgeServer> server = nullptr,
                      std::string *error = nullptr);

} // namespace illixr
