#include "edge/fleet_sim.hpp"

#include "trace/metrics_registry.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

namespace illixr {

namespace {

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t x)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xffULL;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** One simulated client: link, breaker, outcome counters. */
struct SimClient
{
    EdgeClientStats stats;
    std::unique_ptr<NetworkModel> net;
    CircuitBreaker breaker;
    std::uint64_t next_seq = 0;
    TimePoint phase = 0;

    explicit SimClient(const CircuitBreakerPolicy &policy)
        : breaker(policy)
    {
    }
};

} // namespace

EdgeFleetReport
runEdgeFleet(const EdgeFleetConfig &config)
{
    const std::size_t n = std::max<std::size_t>(1, config.clients);
    const Duration period = periodFromHz(config.frame_hz);
    const Duration slo = fromSeconds(config.slo_ms / 1000.0);

    EdgeServer server(config.server);
    server.setMetrics(config.metrics);
    server.setTraceSink(config.sink);

    // Clients are keyed 1..n. Everything per-client is a pure
    // function of (config.seed, id): link stream, frame phase, fused
    // digests — never of the order connect() was called in.
    std::map<std::uint64_t, SimClient> clients;
    for (std::uint64_t id = 1; id <= n; ++id) {
        CircuitBreakerPolicy policy = config.breaker;
        // Distinct jitter streams keep a brownout from re-probing the
        // whole fleet in lockstep once the breakers trip.
        policy.jitter_seed = config.seed * 0x9e3779b97f4a7c15ULL + id;
        auto [it, inserted] = clients.emplace(id, SimClient(policy));
        SimClient &c = it->second;
        c.stats.id = id;
        c.net = std::make_unique<NetworkModel>(
            config.link, NetworkModel::linkSeed(config.seed, id));
        c.net->setMetrics(config.metrics);
        c.phase = static_cast<Duration>(
            period * static_cast<Duration>(id - 1) /
            static_cast<Duration>(n));
        (void)inserted;
    }

    std::vector<std::uint64_t> order = config.admission_order;
    if (order.empty())
        for (std::uint64_t id = 1; id <= n; ++id)
            order.push_back(id);
    for (std::uint64_t id : order)
        server.connect(id);

    // Frame schedule: every (time, client) capture event, in time
    // order with client id as the tie-break.
    struct FrameEvent
    {
        TimePoint time;
        std::uint64_t client;
    };
    std::vector<FrameEvent> schedule;
    for (auto &[id, c] : clients)
        for (TimePoint t = c.phase; t < config.duration; t += period)
            schedule.push_back({t, id});
    std::sort(schedule.begin(), schedule.end(),
              [](const FrameEvent &a, const FrameEvent &b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  return a.client < b.client;
              });

    // Deliver matured completions to their clients: downlink draw,
    // latency bookkeeping, breaker feedback. Client order is id order
    // (clients is a sorted map) — deterministic.
    auto deliver = [&](TimePoint now) {
        for (auto &[id, c] : clients) {
            for (const EdgeCompletion &done : server.poll(id)) {
                // Frames are strictly periodic, so the capture time
                // is a pure function of (client, seq).
                const TimePoint frame_time =
                    c.phase +
                    static_cast<Duration>(done.seq) * period;
                if (done.verdict == EdgeVerdict::Shed) {
                    ++c.stats.shed;
                    ++c.stats.fallback;
                    c.breaker.recordFailure(now);
                    continue;
                }
                const std::optional<Duration> down =
                    c.net->transferDelay(256, false);
                if (!down) {
                    ++c.stats.lost;
                    ++c.stats.fallback;
                    c.breaker.recordFailure(now);
                    continue;
                }
                const Duration latency =
                    (done.done + *down) - frame_time;
                ++c.stats.served;
                c.stats.latency_ms.add(toMilliseconds(latency));
                c.stats.digest = fnv1a(c.stats.digest, done.digest);
                if (latency > slo) {
                    ++c.stats.stale;
                    c.breaker.recordFailure(now);
                } else {
                    c.breaker.recordSuccess(now);
                }
            }
        }
    };

    for (const FrameEvent &ev : schedule) {
        server.pump(ev.time);
        deliver(ev.time);

        SimClient &c = clients.at(ev.client);
        const std::uint64_t seq = c.next_seq++;
        ++c.stats.sent;

        if (!c.breaker.allow(ev.time)) {
            // Failed over: the local IMU integrator serves this
            // frame; nothing goes on the wire.
            ++c.stats.fallback;
            continue;
        }
        const std::optional<Duration> up =
            c.net->transferDelay(config.frame_bytes, true);
        if (!up) {
            ++c.stats.lost;
            ++c.stats.fallback;
            c.breaker.recordFailure(ev.time);
            continue;
        }
        EdgeRequest req;
        req.client = ev.client;
        req.seq = seq;
        req.frame_time = ev.time;
        req.arrival = ev.time + *up;
        req.deadline = ev.time + slo;
        req.bytes = config.frame_bytes;
        if (!server.submit(req)) {
            ++c.stats.rejected;
            ++c.stats.fallback;
            c.breaker.recordFailure(ev.time);
        }
    }

    // Drain: run out every queued batch and collect its completions.
    const TimePoint drain =
        config.duration + config.server.batch_window +
        fromSeconds(server.batchServiceMs(config.server.max_batch) *
                    static_cast<double>(n) / 1000.0) +
        kSecond;
    server.pump(drain);
    deliver(drain);

    EdgeFleetReport report;
    SampleSeries all_latency;
    report.digest = 0xcbf29ce484222325ULL;
    for (auto &[id, c] : clients) {
        report.sent += c.stats.sent;
        report.served += c.stats.served;
        report.stale += c.stats.stale;
        report.shed += c.stats.shed;
        report.rejected += c.stats.rejected;
        report.lost += c.stats.lost;
        report.fallback += c.stats.fallback;
        for (double ms : c.stats.latency_ms.samples())
            all_latency.add(ms);
        report.digest = fnv1a(report.digest, c.stats.digest);
        report.clients.push_back(std::move(c.stats));
    }
    report.p50_ms = all_latency.percentile(50.0);
    report.p99_ms = all_latency.percentile(99.0);
    report.p999_ms = all_latency.percentile(99.9);
    report.latency_samples = all_latency.count();
    return report;
}

std::string
EdgeFleetReport::csv() const
{
    std::string out = "client,sent,served,stale,shed,rejected,lost,"
                      "fallback,p50_ms,p99_ms,digest\n";
    char line[256];
    for (const EdgeClientStats &c : clients) {
        std::snprintf(
            line, sizeof line,
            "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.6f,%.6f,"
            "%016llx\n",
            static_cast<unsigned long long>(c.id),
            static_cast<unsigned long long>(c.sent),
            static_cast<unsigned long long>(c.served),
            static_cast<unsigned long long>(c.stale),
            static_cast<unsigned long long>(c.shed),
            static_cast<unsigned long long>(c.rejected),
            static_cast<unsigned long long>(c.lost),
            static_cast<unsigned long long>(c.fallback),
            c.latency_ms.percentile(50.0),
            c.latency_ms.percentile(99.0),
            static_cast<unsigned long long>(c.digest));
        out += line;
    }
    std::snprintf(line, sizeof line,
                  "total,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.6f,%.6f,"
                  "%016llx\n",
                  static_cast<unsigned long long>(sent),
                  static_cast<unsigned long long>(served),
                  static_cast<unsigned long long>(stale),
                  static_cast<unsigned long long>(shed),
                  static_cast<unsigned long long>(rejected),
                  static_cast<unsigned long long>(lost),
                  static_cast<unsigned long long>(fallback), p50_ms,
                  p99_ms, static_cast<unsigned long long>(digest));
    out += line;
    return out;
}

} // namespace illixr
