/**
 * @file
 * EdgeServer: the in-process multi-tenant edge server for offloaded
 * VIO — per-client request queues, deadline-aware admission control
 * and shedding, and same-window batching through the fused MSCKF
 * kernel (edge/batch_vio.hpp).
 *
 * Policy (DESIGN.md "Edge offload model"):
 *
 *  - Admission: a request from an unconnected client, or one whose
 *    per-client queue is full, is REJECTED (no completion). A request
 *    whose deadline cannot be met even if served next — earliest
 *    completion is already past its deadline — is SHED immediately:
 *    the client learns *now* and falls back to local IMU integration
 *    instead of waiting on a pose that can only arrive stale.
 *  - Batching: admitted requests wait at most `batch_window` for
 *    same-window company; a batch launches when it fills
 *    (`max_batch`) or the window expires, whichever is first, and
 *    costs `dispatch_overhead_ms + per_request_ms * n` of modeled
 *    server time. The overhead amortizes across the batch — that is
 *    the sub-linear scaling the bench measures. The fused compute is
 *    real (one KernelPool launch per batch); its *time* is modeled,
 *    never measured, so results are machine-independent.
 *  - Shedding at launch: when the batch's completion time is known,
 *    members that would miss their deadline are shed before the
 *    kernel runs — the server never spends compute on a pose it
 *    already knows will arrive too late.
 *
 * Determinism: batch composition is a pure function of the admitted
 * request set — candidates are ordered by (arrival, client key, seq),
 * never by connection or submission order — and pump(now) decides
 * launches only from request arrival times, never from its own call
 * cadence. Driven from a single virtual timeline (EdgeFleetSim, or
 * one deterministic session), the server replays byte-identically;
 * shared across free-running wall-clock sessions it is thread-safe
 * but the interleaving is the host scheduler's.
 */

#pragma once

#include "edge/batch_vio.hpp"
#include "foundation/stats.hpp"
#include "offload/edge_service.hpp"

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace illixr {

class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
class TraceSink;

/** Server policy knobs. */
struct EdgeServerConfig
{
    std::size_t max_clients = 64;
    /** Per-client pending-request cap (beyond it: Rejected). */
    std::size_t max_queue = 4;
    /** Requests fused per batch; 1 = unbatched serving. */
    std::size_t max_batch = 8;
    /** How long a lone request waits for same-window company. */
    Duration batch_window = 2 * kMillisecond;
    /** Fixed per-batch dispatch cost (scheduling, state page-in,
     *  kernel launch) — the cost batching amortizes. */
    double dispatch_overhead_ms = 2.5;
    /** Marginal modeled cost per fused request. */
    double per_request_ms = 0.9;
    /** Shape of the per-client fused update. */
    BatchVioParams vio;
};

class EdgeServer final : public EdgeService
{
  public:
    explicit EdgeServer(const EdgeServerConfig &config = {});

    /** Intern `edge.*` handles into @p metrics (nullptr to disable):
     *  served/shed/rejected/batches counters, batch_size/service_ms/
     *  wait_ms histograms, queue_depth gauge. */
    void setMetrics(MetricsRegistry *metrics);

    /** Record one `edge.batch` span per launched batch. */
    void setTraceSink(TraceSink *sink);

    // EdgeService
    bool connect(std::uint64_t client) override;
    void disconnect(std::uint64_t client) override;
    bool submit(const EdgeRequest &request) override;
    void pump(TimePoint now) override;
    std::vector<EdgeCompletion> poll(std::uint64_t client) override;

    /** Modeled service time of an n-request batch, milliseconds. */
    double batchServiceMs(std::size_t n) const;

    const EdgeServerConfig &config() const { return config_; }

    std::size_t connectedClients() const;
    /** Requests queued across all clients (admitted, not yet run). */
    std::size_t queueDepth() const;
    std::uint64_t servedTotal() const;
    std::uint64_t shedTotal() const;
    std::uint64_t rejectedTotal() const;
    std::uint64_t batchesTotal() const;

    /** Per-client service-latency series (arrival -> done, ms). */
    SampleSeries clientServiceMs(std::uint64_t client) const;

  private:
    struct ClientState
    {
        std::size_t queued = 0; ///< This client's share of pending_.
        std::vector<EdgeCompletion> done;
        SampleSeries service_ms;
    };

    /** Launch the next matured batch, if any. @return progress. */
    bool tryRunBatchLocked(TimePoint now);

    EdgeServerConfig config_;

    mutable std::mutex mutex_;
    std::map<std::uint64_t, ClientState> clients_;
    /** Admitted, unlaunched requests, kept sorted by
     *  (arrival, client, seq) — the one canonical order. */
    std::vector<EdgeRequest> pending_;
    TimePoint busy_until_ = 0;
    std::uint64_t served_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t batches_ = 0;

    Counter *servedCounter_ = nullptr;
    Counter *shedCounter_ = nullptr;
    Counter *rejectedCounter_ = nullptr;
    Counter *batchesCounter_ = nullptr;
    Histogram *batchSizeHist_ = nullptr;
    Histogram *serviceMsHist_ = nullptr;
    Histogram *waitMsHist_ = nullptr;
    Gauge *queueDepthGauge_ = nullptr;
    TraceSink *sink_ = nullptr;
};

} // namespace illixr
