/**
 * @file
 * EdgeFleetSim: a single-virtual-timeline simulation of N VIO clients
 * sharing one EdgeServer over modeled network links — the bench
 * harness behind `bench/edge_bench` and the byte-identity surface of
 * DeterminismTest.EdgeFleetIsByteIdentical.
 *
 * Every client captures frames at `frame_hz` (phase-staggered by
 * client id), compresses, draws its uplink from its OWN NetworkModel
 * (seeded NetworkModel::linkSeed(seed, client id) — never admission
 * order), submits to the shared server with a pose deadline derived
 * from the frame's capture time (`frame_time + slo_ms`), and a
 * per-client CircuitBreaker fails the client over to local IMU poses
 * on loss, shed, rejection, or SLO-stale delivery. Because every
 * event is processed in (time, client id) order on one timeline, the
 * whole fleet replays byte-identically: same report CSV at kernel
 * widths 1/2/4 and under any permutation of the connect order.
 */

#pragma once

#include "edge/edge_server.hpp"
#include "foundation/stats.hpp"
#include "offload/network.hpp"
#include "resilience/circuit_breaker.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace illixr {

class MetricsRegistry;
class TraceSink;

/** One fleet run's knobs. */
struct EdgeFleetConfig
{
    std::size_t clients = 8;
    NetworkLink link = NetworkLink::wifi6();
    unsigned seed = 1;
    double frame_hz = 15.0;
    Duration duration = 10 * kSecond;
    /** Pose-latency SLO: deadline = frame capture + this budget. */
    double slo_ms = 80.0;
    /** Compressed frame payload (192x144 at 0.25 byte/px). */
    std::size_t frame_bytes = 6912;
    EdgeServerConfig server;
    CircuitBreakerPolicy breaker;
    /**
     * Explicit connect order — client ids 1..clients, permuted.
     * Empty = ascending. The report MUST be byte-identical under any
     * permutation (the admission-order-independence contract).
     */
    std::vector<std::uint64_t> admission_order;
    /** Optional `edge.*` / `net.*` metrics sink. */
    MetricsRegistry *metrics = nullptr;
    /** Optional `edge.batch` span sink. */
    TraceSink *sink = nullptr;
};

/** Per-client outcome counters. */
struct EdgeClientStats
{
    std::uint64_t id = 0;
    std::uint64_t sent = 0;     ///< Frames captured.
    std::uint64_t served = 0;   ///< Poses delivered by the server.
    std::uint64_t stale = 0;    ///< Delivered but past the SLO.
    std::uint64_t shed = 0;     ///< Shed by admission control.
    std::uint64_t rejected = 0; ///< Refused (queue full).
    std::uint64_t lost = 0;     ///< Uplink or downlink loss.
    std::uint64_t fallback = 0; ///< Local-IMU poses (breaker/failure).
    /** Capture -> pose-delivered latency of served poses, ms. */
    SampleSeries latency_ms;
    /** FNV-combined fused-update digests, in sequence order. */
    std::uint64_t digest = 0xcbf29ce484222325ULL;
};

/** Whole-fleet outcome. */
struct EdgeFleetReport
{
    std::vector<EdgeClientStats> clients;
    std::uint64_t sent = 0;
    std::uint64_t served = 0;
    std::uint64_t stale = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t lost = 0;
    std::uint64_t fallback = 0;
    double p50_ms = 0.0; ///< Aggregate served pose latency.
    double p99_ms = 0.0;
    double p999_ms = 0.0;
    std::size_t latency_samples = 0; ///< Served frames pooled above.
    std::uint64_t digest = 0; ///< FNV over per-client digests.

    double servedRatio() const
    {
        return sent == 0 ? 0.0
                         : static_cast<double>(served) /
                               static_cast<double>(sent);
    }

    /** The bench's SLO test: tail latency within budget AND nearly
     *  every frame actually served (shedding a client into local
     *  fallback is not "meeting" the SLO). */
    bool
    meetsSlo(double slo_ms, double min_served_ratio = 0.95) const
    {
        return p99_ms <= slo_ms && servedRatio() >= min_served_ratio;
    }

    /** Canonical CSV (fixed precision, per-client rows + total) —
     *  the byte-identity surface of the determinism tests. */
    std::string csv() const;
};

/** Run one fleet simulation (pure virtual time; returns immediately
 *  with the fully-drained outcome). */
EdgeFleetReport runEdgeFleet(const EdgeFleetConfig &config);

} // namespace illixr
