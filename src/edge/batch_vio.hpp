/**
 * @file
 * Batched MSCKF serving: the fused measurement-update kernel at the
 * heart of the edge server.
 *
 * A batch is a set of same-window requests from distinct clients.
 * Each request's update — measurement compression (Householder QR)
 * followed by the EKF gain solve (Cholesky) — is independent of every
 * other client's, so the whole batch runs as ONE KernelPool launch
 * whose tiles are clients. That is what makes serving sub-linear in
 * client count: the per-batch dispatch overhead (scheduling, state
 * page-in, kernel launch) is paid once per batch instead of once per
 * client, and the per-client marginal cost is just the fused linear
 * algebra.
 *
 * Determinism contract: each item's inputs are a pure function of
 * (client key, sequence number) — synthesized from a seeded Rng —
 * and each item is computed entirely inside its own tile with
 * disjoint outputs, so the returned digests are bit-identical across
 * kernel widths 1/2/4 and independent of batch composition. The
 * digest of an item never changes because of who else rode in the
 * batch.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace illixr {

/** One request's slot in a fused batch update. */
struct BatchVioItem
{
    std::uint64_t client = 0; ///< Stable client key.
    std::uint64_t seq = 0;    ///< Per-client sequence number.
};

/** Shape of the per-client MSCKF update the server fuses. */
struct BatchVioParams
{
    /** Error-state dimension (15 IMU + 6 per clone; 3 clones). */
    std::size_t state_dim = 33;
    /** Stacked measurement rows after nullspace projection. */
    std::size_t rows = 36;
    /** Prior covariance scale (P = prior * I). */
    double prior = 0.01;
    /** Measurement noise stddev (pixels, normalized). */
    double noise = 0.05;
};

/**
 * Run the fused measurement update for every item of @p batch in one
 * "edge.batch" kernel launch. @return one digest per item (same
 * order): an FNV-1a hash over the bit patterns of the state
 * correction, the byte-identity surface of the edge determinism
 * tests.
 */
std::vector<std::uint64_t>
fusedMsckfUpdate(const std::vector<BatchVioItem> &batch,
                 const BatchVioParams &params);

/**
 * Analytic flop count of one item's update (QR + gain solve), used by
 * the server's modeled per-request marginal cost.
 */
double fusedUpdateFlops(const BatchVioParams &params);

} // namespace illixr
