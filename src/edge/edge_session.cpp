#include "edge/edge_session.hpp"

#include "offload/offload_vio.hpp"
#include "trace/metrics_registry.hpp"

namespace illixr {

std::shared_ptr<EdgeServer>
makeEdgeServer(const EdgeOptions &options)
{
    EdgeServerConfig sc;
    sc.max_batch = options.max_batch;
    return std::make_shared<EdgeServer>(sc);
}

bool
attachEdgeClient(SessionConfig &config, std::uint64_t client_id,
                 std::shared_ptr<EdgeServer> server, std::string *error)
{
    NetworkLink link;
    if (!NetworkLink::byName(config.edge.link, link)) {
        if (error)
            *error = "unknown edge link preset: " + config.edge.link;
        return false;
    }
    // A server created here belongs to this one session, so its
    // edge.* metrics can land in the session's registry (wired inside
    // the factory, once the registry exists). A caller-provided
    // server is shared across sessions — its metrics sink stays the
    // caller's business.
    const bool owned = !server;
    if (!server)
        server = makeEdgeServer(config.edge);

    OffloadConfig offload;
    offload.link = link;
    offload.link_seed = NetworkModel::linkSeed(config.seed, client_id);
    offload.edge = server;
    offload.client_id = client_id;
    offload.deadline_slo_ms = config.edge.slo_ms;

    config.edge.enabled = true;
    config.vio_factory = [offload, server, owned](
                             const Phonebook &pb,
                             const SystemTuning &tuning) {
        if (owned && pb.has<MetricsRegistry>())
            server->setMetrics(pb.lookup<MetricsRegistry>().get());
        return std::make_unique<OffloadedVioPlugin>(pb, tuning, offload);
    };
    return true;
}

} // namespace illixr
