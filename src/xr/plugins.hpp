/**
 * @file
 * The ILLIXR component plugins (paper Table II / Fig 2), each
 * implemented against the switchboard-only interface:
 *
 *   perception: offline_camera, offline_imu, vio, imu_integrator
 *   visual:     application (via OpenXR-mini), timewarp
 *   audio:      audio_encoding, audio_playback
 *
 * Eye tracking, scene reconstruction, and hologram run standalone
 * (paper §III-B: no OpenXR interface consumed their outputs), driven
 * by the standalone benches.
 */

#pragma once

#include "audio/audio_pipeline.hpp"
#include "render/app.hpp"
#include "resilience/health_events.hpp"
#include "runtime/plugin.hpp"
#include "sensors/dataset.hpp"
#include "slam/imu_integrator.hpp"
#include "slam/integrator_alternatives.hpp"
#include "slam/msckf.hpp"
#include "visual/timewarp.hpp"
#include "xr/events.hpp"
#include "xr/openxr_mini.hpp"

#include <memory>
#include <vector>

namespace illixr {

class FaultInjector;

/** Table III tuned system parameters. */
struct SystemTuning
{
    double camera_hz = 15.0;   ///< Camera/VIO rate.
    double imu_hz = 500.0;     ///< IMU/integrator rate.
    double display_hz = 120.0; ///< Application + reprojection rate.
    double audio_hz = 48.0;    ///< Audio block rate.
    std::size_t audio_block = 1024;
};

/**
 * Shared dataset service: the pre-recorded sensor streams (paper
 * §II-B offline datasets) with camera frames pre-rendered so that
 * the camera plugin's modeled cost reflects camera *processing*, not
 * the synthetic world's raycasting.
 */
struct PreloadedDataset
{
    PreloadedDataset(const DatasetConfig &config, Duration duration);

    SyntheticDataset dataset;
    std::vector<CameraFrame> camera_frames;
    std::vector<ImuSample> imu_samples;
};

/**
 * Camera component (ZED-SDK stand-in): replays recorded frames.
 *
 * Honors the DegradationManager's camera_stride knob: at stride N it
 * publishes only every Nth recorded frame (by dataset sequence), the
 * paper's "reduce camera rate" load-shedding lever.
 */
class CameraPlugin : public Plugin
{
  public:
    CameraPlugin(const Phonebook &pb, const SystemTuning &tuning);
    void iterate(TimePoint now) override;
    Duration period() const override
    {
        return periodFromHz(tuning_.camera_hz);
    }

    std::size_t framesShed() const { return framesShed_; }

  private:
    SystemTuning tuning_;
    std::shared_ptr<PreloadedDataset> data_;
    Switchboard::Writer<CameraFrameEvent> cameraWriter_;
    Switchboard::AsyncReader<DegradationCommandEvent> degradeReader_;
    std::size_t next_ = 0;
    std::size_t framesShed_ = 0;
};

/** IMU component: replays recorded samples at the IMU rate. */
class ImuPlugin : public Plugin
{
  public:
    ImuPlugin(const Phonebook &pb, const SystemTuning &tuning);
    void iterate(TimePoint now) override;
    Duration period() const override
    {
        return periodFromHz(tuning_.imu_hz);
    }
    bool skipOnOverrun() const override { return false; }

  private:
    SystemTuning tuning_;
    std::shared_ptr<PreloadedDataset> data_;
    Switchboard::Writer<ImuEvent> imuWriter_;
    std::size_t next_ = 0;
};

/** Head tracking: the MSCKF VIO on the camera + IMU streams. */
class VioPlugin : public Plugin
{
  public:
    VioPlugin(const Phonebook &pb, const SystemTuning &tuning);
    void iterate(TimePoint now) override;
    Duration period() const override
    {
        return periodFromHz(tuning_.camera_hz);
    }

    const std::vector<StampedPose> &trajectory() const
    {
        return trajectory_;
    }
    const std::vector<StampedPose> *
    vioTrajectory() const override
    {
        return &trajectory_;
    }
    const VioSystem &vio() const { return *vio_; }

  private:
    SystemTuning tuning_;
    std::shared_ptr<PreloadedDataset> data_;
    Switchboard::Reader<CameraFrameEvent> cameraReader_;
    Switchboard::Reader<ImuEvent> imuReader_;
    Switchboard::Writer<PoseEvent> slowPoseWriter_;
    std::unique_ptr<VioSystem> vio_;
    std::vector<StampedPose> trajectory_;
    bool initialized_ = false;
};

/**
 * High-rate pose: integration on top of the latest VIO state. The
 * integration method is selectable ("rk4" or "midpoint"), mirroring
 * paper Table II's two interchangeable IMU-integrator
 * implementations (RK4* / GTSAM).
 */
class IntegratorPlugin : public Plugin
{
  public:
    IntegratorPlugin(const Phonebook &pb, const SystemTuning &tuning,
                     const std::string &method = "rk4");
    void iterate(TimePoint now) override;
    Duration period() const override
    {
        return periodFromHz(tuning_.imu_hz);
    }
    bool skipOnOverrun() const override { return false; }

    const char *method() const { return integrator_->method(); }

  private:
    SystemTuning tuning_;
    Switchboard::Reader<ImuEvent> imuReader_;
    Switchboard::AsyncReader<PoseEvent> slowPoseReader_;
    Switchboard::Writer<PoseEvent> fastPoseWriter_;
    std::unique_ptr<PoseIntegrator> integrator_;
    TimePoint lastCorrection_ = -1;
};

/**
 * The application: OpenXR-mini frame loop around an XrApplication.
 *
 * With @p adaptive_resolution enabled, the plugin closes a QoE
 * control loop (paper §V-D "QoE-driven resource management ...
 * approximation"): it reads the display side's staleness feedback and
 * trades per-eye resolution for frame rate — shrinking when the
 * reprojection keeps re-showing stale frames, growing back when the
 * display is consistently fresh.
 */
class ApplicationPlugin : public Plugin
{
  public:
    ApplicationPlugin(const Phonebook &pb, const SystemTuning &tuning,
                      AppId app, const AppConfig &app_config,
                      bool adaptive_resolution = false);
    void iterate(TimePoint now) override;
    Duration period() const override
    {
        return periodFromHz(tuning_.display_hz);
    }
    ExecUnit execUnit() const override { return ExecUnit::GpuGraphics; }

    const XrApplication &app() const { return app_; }
    int currentEyeResolution() const { return currentRes_; }
    int minEyeResolution() const { return minResSeen_; }

  private:
    void adaptResolution(TimePoint now);

    SystemTuning tuning_;
    std::shared_ptr<Switchboard> sb_;
    XrApplication app_;
    std::unique_ptr<XrSession> session_;
    bool adaptive_ = false;
    int initialRes_ = 0;
    int currentRes_ = 0;
    int minResSeen_ = 0;
    int staleWindow_ = 0;   ///< Missed-slot frames in the window.
    int freshWindow_ = 0;   ///< On-time frames in the window.
    TimePoint lastFeedback_ = -1; ///< Previous rendered-frame time.
};

/** Asynchronous reprojection (vsync-aligned by the scheduler). */
class TimewarpPlugin : public Plugin
{
  public:
    TimewarpPlugin(const Phonebook &pb, const SystemTuning &tuning,
                   const TimewarpParams &params);
    void iterate(TimePoint now) override;
    Duration period() const override
    {
        return periodFromHz(tuning_.display_hz);
    }
    ExecUnit execUnit() const override { return ExecUnit::GpuGraphics; }

    /** Per-invocation IMU pose age (for the MTP computation). */
    const std::vector<double> &imuAgesMs() const { return imuAges_; }

    std::size_t warpsShed() const { return warpsShed_; }

  private:
    SystemTuning tuning_;
    Switchboard::AsyncReader<StereoFrameEvent> submittedReader_;
    Switchboard::AsyncReader<PoseEvent> fastPoseReader_;
    Switchboard::AsyncReader<DegradationCommandEvent> degradeReader_;
    Switchboard::Writer<QoeFeedbackEvent> qoeWriter_;
    Switchboard::Writer<DisplayFrameEvent> displayWriter_;
    Timewarp warp_;
    std::vector<double> imuAges_;
    TimePoint lastSubmittedTime_ = -1;
    int staleStreak_ = 0;
    std::size_t warpIndex_ = 0;
    std::size_t warpsShed_ = 0;
};

/**
 * Ambisonic encoding of the scene's sound sources.
 *
 * Honors the audio_coalesce knob: at coalesce N only every Nth
 * invocation does work, encoding N blocks back to back — total audio
 * is preserved while per-invocation overhead amortizes N-fold.
 */
class AudioEncoderPlugin : public Plugin
{
  public:
    AudioEncoderPlugin(const Phonebook &pb, const SystemTuning &tuning);
    void iterate(TimePoint now) override;
    Duration period() const override
    {
        return periodFromHz(tuning_.audio_hz);
    }

    std::size_t blocksEncoded() const { return block_; }
    std::size_t callsCoalesced() const { return callsCoalesced_; }

  private:
    SystemTuning tuning_;
    Switchboard::Writer<SoundfieldEvent> soundfieldWriter_;
    Switchboard::AsyncReader<DegradationCommandEvent> degradeReader_;
    AudioEncoder encoder_;
    std::size_t block_ = 0;
    std::size_t call_ = 0;
    std::size_t callsCoalesced_ = 0;
};

/** Binauralization of the soundfield with the listener's pose. */
class AudioPlaybackPlugin : public Plugin
{
  public:
    AudioPlaybackPlugin(const Phonebook &pb, const SystemTuning &tuning);
    void iterate(TimePoint now) override;
    Duration period() const override
    {
        return periodFromHz(tuning_.audio_hz);
    }

  private:
    SystemTuning tuning_;
    Switchboard::AsyncReader<SoundfieldEvent> soundfieldReader_;
    Switchboard::AsyncReader<PoseEvent> fastPoseReader_;
    Switchboard::Writer<StereoAudioEvent> stereoWriter_;
    AudioPlayback playback_;
};

/** Register all component factories with the global registry. */
void registerIllixrPlugins();

/**
 * Install the sensor-stream corrupters on @p injector: a torn-readout
 * glitch band for camera frames and an accelerometer spike for IMU
 * samples. What a corrupt= fault does to the "camera"/"imu" topics.
 */
void registerSensorCorrupters(FaultInjector &injector);

} // namespace illixr
