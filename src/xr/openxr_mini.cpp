#include "xr/openxr_mini.hpp"

#include "xr/events.hpp"

namespace illixr {

XrSession::XrSession(std::shared_ptr<Switchboard> switchboard,
                     double ipd_m, Duration vsync)
    : fastPoseReader_(
          switchboard->asyncReader<PoseEvent>(topics::kFastPose)),
      submittedWriter_(
          switchboard->writer<StereoFrameEvent>(topics::kSubmittedFrame)),
      ipd_(ipd_m), vsync_(vsync)
{
}

void
XrSession::begin()
{
    state_ = XrSessionState::Focused;
}

void
XrSession::end()
{
    state_ = XrSessionState::Stopping;
}

TimePoint
XrSession::waitFrame(TimePoint now) const
{
    // Predicted display time: the next vsync boundary after "now"
    // plus one frame of pipeline latency.
    const TimePoint next_vsync = ((now / vsync_) + 1) * vsync_;
    return next_vsync + vsync_;
}

std::array<XrView, 2>
XrSession::locateViews(TimePoint display_time) const
{
    Pose head = Pose::identity();
    if (auto pose = fastPoseReader_.latest()) {
        head = pose->state.pose();
        // First-order prediction toward the display time using the
        // integrator's velocity (§II-A footnote 3).
        const double dt = toSeconds(display_time - pose->state.time);
        if (dt > 0.0 && dt < 0.1)
            head.position += pose->state.velocity * dt;
    }
    std::array<XrView, 2> views;
    views[0].pose = eyePose(head, ipd_, true);
    views[1].pose = eyePose(head, ipd_, false);
    return views;
}

void
XrSession::endFrame(StereoFrame frame, TimePoint now)
{
    auto event = submittedWriter_.make();
    event->time = now;
    event->frame = std::move(frame);
    submittedWriter_.put(std::move(event));
    ++submitted_;
}

} // namespace illixr
