#include "xr/plugins.hpp"

#include "audio/clips.hpp"
#include "resilience/fault_injector.hpp"

#include <algorithm>

namespace illixr {

PreloadedDataset::PreloadedDataset(const DatasetConfig &config,
                                   Duration duration)
    : dataset(config)
{
    // Pre-render every camera frame the run can consume.
    for (std::size_t i = 0; i < dataset.cameraFrameCount(); ++i) {
        if (dataset.cameraTime(i) > duration)
            break;
        camera_frames.push_back(dataset.cameraFrame(i));
    }
    imu_samples = dataset.imuSamples();
}

// ---------------------------------------------------------------- Camera

CameraPlugin::CameraPlugin(const Phonebook &pb, const SystemTuning &tuning)
    : Plugin("camera"), tuning_(tuning), data_(pb.lookup<PreloadedDataset>()),
      cameraWriter_(
          pb.lookup<Switchboard>()->writer<CameraFrameEvent>(topics::kCamera)),
      degradeReader_(
          pb.lookup<Switchboard>()->asyncReader<DegradationCommandEvent>(
              topics::kDegradation))
{
}

void
CameraPlugin::iterate(TimePoint now)
{
    int stride = 1;
    if (auto cmd = degradeReader_.latest())
        stride = std::max(1, cmd->camera_stride);
    // Publish every recorded frame with capture time <= now. The
    // microsecond slack absorbs float-accumulated dataset timestamps
    // landing nanoseconds after the scheduler's integer period grid
    // (without it every frame would be published one period late).
    while (next_ < data_->camera_frames.size() &&
           data_->camera_frames[next_].time <= now + kMicrosecond) {
        const CameraFrame &src = data_->camera_frames[next_];
        if (stride > 1 &&
            src.sequence % static_cast<std::size_t>(stride) != 0) {
            ++framesShed_;
            ++next_;
            continue;
        }
        auto event = cameraWriter_.make();
        event->time = src.time;
        event->sequence = src.sequence;
        // Camera processing cost: the SDK's rectification pass is
        // emulated by a copy + per-pixel gain (debayer/rectify-like).
        event->image = src.image;
        for (int y = 0; y < event->image.height(); ++y)
            for (int x = 0; x < event->image.width(); ++x)
                event->image.at(x, y) =
                    std::min(1.0f, event->image.at(x, y) * 1.0f);
        cameraWriter_.put(std::move(event));
        ++next_;
    }
}

// ------------------------------------------------------------------- IMU

ImuPlugin::ImuPlugin(const Phonebook &pb, const SystemTuning &tuning)
    : Plugin("imu"), tuning_(tuning), data_(pb.lookup<PreloadedDataset>()),
      imuWriter_(pb.lookup<Switchboard>()->writer<ImuEvent>(topics::kImu))
{
}

void
ImuPlugin::iterate(TimePoint now)
{
    while (next_ < data_->imu_samples.size() &&
           data_->imu_samples[next_].time <= now + kMicrosecond) {
        auto event = imuWriter_.make();
        event->time = data_->imu_samples[next_].time;
        event->sample = data_->imu_samples[next_];
        imuWriter_.put(std::move(event));
        ++next_;
    }
}

// ------------------------------------------------------------------- VIO

VioPlugin::VioPlugin(const Phonebook &pb, const SystemTuning &tuning)
    : Plugin("vio"), tuning_(tuning), data_(pb.lookup<PreloadedDataset>()),
      cameraReader_(
          pb.lookup<Switchboard>()->reader<CameraFrameEvent>(topics::kCamera)),
      imuReader_(pb.lookup<Switchboard>()->reader<ImuEvent>(topics::kImu)),
      slowPoseWriter_(
          pb.lookup<Switchboard>()->writer<PoseEvent>(topics::kSlowPose))
{
    MsckfParams params;
    params.imu_noise = data_->dataset.config().imu_noise;
    TrackerParams tracker;
    tracker.max_features = 80; // Table III-style tuned knob (see §V-E).
    vio_ = std::make_unique<VioSystem>(params, tracker,
                                       data_->dataset.rig());
}

void
VioPlugin::iterate(TimePoint now)
{
    (void)now;
    if (!initialized_) {
        // Standard benchmarking practice: initialize from the
        // dataset's ground truth at t = 0.
        ImuState init;
        init.time = 0;
        const Pose p0 = data_->dataset.groundTruthPose(0);
        init.orientation = p0.orientation;
        init.position = p0.position;
        init.velocity = data_->dataset.trajectory().velocity(0.0);
        vio_->initialize(init);
        initialized_ = true;
    }

    // Drain IMU stream into the filter.
    while (auto imu = imuReader_.pop())
        vio_->addImu(imu->sample);
    // Process every pending camera frame (normally one). The aliasing
    // shared_ptr lets the tracker pyramid borrow the frame's level-0
    // image instead of deep-copying it.
    while (auto cam = cameraReader_.pop()) {
        const ImuState &state = vio_->processFrame(
            cam->time, std::shared_ptr<const ImageF>(cam, &cam->image));
        auto out = slowPoseWriter_.make();
        out->time = cam->time;
        out->state = state;
        slowPoseWriter_.put(std::move(out));
        trajectory_.push_back({cam->time, state.pose()});
    }
}

// ------------------------------------------------------------ Integrator

IntegratorPlugin::IntegratorPlugin(const Phonebook &pb,
                                   const SystemTuning &tuning,
                                   const std::string &method)
    : Plugin("integrator"), tuning_(tuning),
      imuReader_(pb.lookup<Switchboard>()->reader<ImuEvent>(topics::kImu)),
      slowPoseReader_(
          pb.lookup<Switchboard>()->asyncReader<PoseEvent>(topics::kSlowPose)),
      fastPoseWriter_(
          pb.lookup<Switchboard>()->writer<PoseEvent>(topics::kFastPose)),
      integrator_(makePoseIntegrator(method))
{
}

void
IntegratorPlugin::iterate(TimePoint now)
{
    // Re-base onto the newest VIO estimate when one arrives.
    if (auto slow = slowPoseReader_.latest()) {
        if (slow->time > lastCorrection_) {
            integrator_->correct(slow->state);
            lastCorrection_ = slow->time;
        }
    }
    while (auto imu = imuReader_.pop())
        integrator_->addSample(imu->sample);
    if (!integrator_->initialized())
        return;
    auto out = fastPoseWriter_.make();
    out->time = now;
    out->state = integrator_->state();
    fastPoseWriter_.put(std::move(out));
}

// ------------------------------------------------------------ Application

ApplicationPlugin::ApplicationPlugin(const Phonebook &pb,
                                     const SystemTuning &tuning, AppId app,
                                     const AppConfig &app_config,
                                     bool adaptive_resolution)
    : Plugin("application"), tuning_(tuning),
      sb_(pb.lookup<Switchboard>()), app_(app, app_config),
      adaptive_(adaptive_resolution), initialRes_(app_config.eye_width),
      currentRes_(app_config.eye_width), minResSeen_(app_config.eye_width)
{
    session_ = std::make_unique<XrSession>(
        sb_, app_config.ipd_m, periodFromHz(tuning_.display_hz));
    session_->begin();
}

void
ApplicationPlugin::adaptResolution(TimePoint now)
{
    // The controller watches the application's *achieved* frame
    // interval: the runtime skips an arrival whenever the previous
    // render overruns, so intervals stretching past the display
    // period are the ground-truth overload signal. (The display-side
    // staleness feed on the qoe_feedback topic remains available for
    // telemetry and richer policies.)
    const Duration vsync_period = periodFromHz(tuning_.display_hz);
    if (lastFeedback_ >= 0) {
        const Duration interval = now - lastFeedback_;
        if (interval > (3 * vsync_period) / 2)
            ++staleWindow_; // Missed at least one display slot.
        else
            ++freshWindow_;
    }
    lastFeedback_ = now;

    // Decide once per ~24 rendered frames.
    if (staleWindow_ + freshWindow_ < 24)
        return;
    const double miss_fraction =
        static_cast<double>(staleWindow_) /
        static_cast<double>(staleWindow_ + freshWindow_);
    staleWindow_ = 0;
    freshWindow_ = 0;

    if (miss_fraction > 0.25 && currentRes_ > 32) {
        // Overloaded: shed pixels (quadratic cost relief per step).
        currentRes_ = std::max(32, currentRes_ * 4 / 5);
    } else if (miss_fraction < 0.05 && currentRes_ < initialRes_) {
        // Headroom: climb back toward full fidelity.
        currentRes_ = std::min(initialRes_, currentRes_ * 9 / 8 + 1);
    }
    minResSeen_ = std::min(minResSeen_, currentRes_);
    app_.setEyeResolution(currentRes_);
}

void
ApplicationPlugin::iterate(TimePoint now)
{
    if (adaptive_)
        adaptResolution(now);
    // OpenXR frame loop: waitFrame -> locateViews -> render -> endFrame.
    const TimePoint display_time = session_->waitFrame(now);
    const auto views = session_->locateViews(display_time);

    // Reconstruct the head pose from the two eye poses (midpoint).
    Pose head = views[0].pose;
    head.position =
        (views[0].pose.position + views[1].pose.position) * 0.5;

    StereoFrame frame = app_.renderFrame(head, toSeconds(now));
    frame.render_time = now;
    session_->endFrame(std::move(frame), now);
}

// --------------------------------------------------------------- Timewarp

TimewarpPlugin::TimewarpPlugin(const Phonebook &pb,
                               const SystemTuning &tuning,
                               const TimewarpParams &params)
    : Plugin("timewarp"), tuning_(tuning),
      submittedReader_(pb.lookup<Switchboard>()->asyncReader<StereoFrameEvent>(
          topics::kSubmittedFrame)),
      fastPoseReader_(
          pb.lookup<Switchboard>()->asyncReader<PoseEvent>(topics::kFastPose)),
      degradeReader_(
          pb.lookup<Switchboard>()->asyncReader<DegradationCommandEvent>(
              topics::kDegradation)),
      qoeWriter_(pb.lookup<Switchboard>()->writer<QoeFeedbackEvent>(
          topics::kQoeFeedback)),
      displayWriter_(pb.lookup<Switchboard>()->writer<DisplayFrameEvent>(
          topics::kDisplayFrame)),
      warp_(params)
{
}

void
TimewarpPlugin::iterate(TimePoint now)
{
    // Reprojection skip under degradation: at stride N only every Nth
    // vsync is warped. Shed invocations leave no imuAges_ entry, so
    // MTP stays a mean over warps actually performed.
    int stride = 1;
    if (auto cmd = degradeReader_.latest())
        stride = std::max(1, cmd->reprojection_stride);
    const std::size_t warp_index = warpIndex_++;
    if (stride > 1 &&
        warp_index % static_cast<std::size_t>(stride) != 0) {
        ++warpsShed_;
        return;
    }

    auto submitted = submittedReader_.latest();
    auto fast = fastPoseReader_.latest();
    if (!submitted) {
        imuAges_.push_back(0.0);
        return;
    }

    // QoE feedback: age of the application's frame at warp time, in
    // display intervals. Fresh pipelining gives ~1 interval; an
    // application that cannot hold the display rate shows up as ages
    // of 2+ intervals even when warp invocations are themselves
    // being skipped in lockstep.
    const Duration vsync_period = periodFromHz(tuning_.display_hz);
    const auto age_intervals = static_cast<int>(
        (now - submitted->time) / vsync_period);
    lastSubmittedTime_ = submitted->time;
    staleStreak_ = age_intervals;
    auto feedback = qoeWriter_.make();
    feedback->time = now;
    feedback->stale_intervals = std::max(0, age_intervals - 1);
    qoeWriter_.put(std::move(feedback));

    Pose fresh = submitted->frame.render_pose;
    double imu_age_ms = 0.0;
    if (fast) {
        fresh = fast->state.pose();
        imu_age_ms = toMilliseconds(std::max<Duration>(
            0, now - fast->state.time));
    }
    imuAges_.push_back(imu_age_ms);

    auto out = displayWriter_.make();
    out->time = now;
    out->imu_age_ms = imu_age_ms;
    out->left = warp_.reproject(submitted->frame.left,
                                submitted->frame.render_pose, fresh);
    out->right = warp_.reproject(submitted->frame.right,
                                 submitted->frame.render_pose, fresh);
    displayWriter_.put(std::move(out));
}

// ---------------------------------------------------------- Audio encode

AudioEncoderPlugin::AudioEncoderPlugin(const Phonebook &pb,
                                       const SystemTuning &tuning)
    : Plugin("audio_encoding"), tuning_(tuning),
      soundfieldWriter_(pb.lookup<Switchboard>()->writer<SoundfieldEvent>(
          topics::kSoundfield)),
      degradeReader_(
          pb.lookup<Switchboard>()->asyncReader<DegradationCommandEvent>(
              topics::kDegradation)),
      encoder_(tuning.audio_block)
{
    // Two positioned sources (the paper's lecture + radio clips).
    AudioSource lecture;
    lecture.pcm = toPcm16(
        synthesizeClip(ClipKind::SpeechLike, 48000 * 4, 48000.0, 3));
    lecture.direction = Vec3(1.0, 0.3, 0.0).normalized();
    encoder_.addSource(std::move(lecture));

    AudioSource radio;
    radio.pcm =
        toPcm16(synthesizeClip(ClipKind::Music, 48000 * 4, 48000.0, 4));
    radio.direction = Vec3(-0.4, -0.8, 0.2).normalized();
    encoder_.addSource(std::move(radio));
}

void
AudioEncoderPlugin::iterate(TimePoint now)
{
    // Block coalescing under degradation: at coalesce N, N-1 of every
    // N invocations return immediately and the Nth encodes the whole
    // batch, so no audio is lost.
    int coalesce = 1;
    if (auto cmd = degradeReader_.latest())
        coalesce = std::max(1, cmd->audio_coalesce);
    const std::size_t call = call_++;
    if (coalesce > 1 &&
        call % static_cast<std::size_t>(coalesce) != 0) {
        ++callsCoalesced_;
        return;
    }
    for (int i = 0; i < coalesce; ++i) {
        auto event = soundfieldWriter_.make(tuning_.audio_block);
        event->time = now;
        event->block_index = block_;
        event->field = encoder_.encodeBlock(block_);
        ++block_;
        soundfieldWriter_.put(std::move(event));
    }
}

// -------------------------------------------------------- Audio playback

AudioPlaybackPlugin::AudioPlaybackPlugin(const Phonebook &pb,
                                         const SystemTuning &tuning)
    : Plugin("audio_playback"), tuning_(tuning),
      soundfieldReader_(pb.lookup<Switchboard>()->asyncReader<SoundfieldEvent>(
          topics::kSoundfield)),
      fastPoseReader_(
          pb.lookup<Switchboard>()->asyncReader<PoseEvent>(topics::kFastPose)),
      stereoWriter_(pb.lookup<Switchboard>()->writer<StereoAudioEvent>(
          topics::kStereoAudio)),
      playback_(tuning.audio_block, 48000.0)
{
}

void
AudioPlaybackPlugin::iterate(TimePoint now)
{
    auto field = soundfieldReader_.latest();
    if (!field)
        return;
    Quat head = Quat::identity();
    if (auto fast = fastPoseReader_.latest())
        head = fast->state.orientation;
    const StereoBlock block = playback_.processBlock(field->field, head);

    auto out = stereoWriter_.make();
    out->time = now;
    out->left = block.left;
    out->right = block.right;
    stereoWriter_.put(std::move(out));
}

// ------------------------------------------------------------ Registry

void
registerIllixrPlugins()
{
    auto &registry = PluginRegistry::instance();
    registry.registerFactory("offline_camera", [](const Phonebook &pb) {
        return std::make_unique<CameraPlugin>(pb, SystemTuning{});
    });
    registry.registerFactory("offline_imu", [](const Phonebook &pb) {
        return std::make_unique<ImuPlugin>(pb, SystemTuning{});
    });
    registry.registerFactory("vio", [](const Phonebook &pb) {
        return std::make_unique<VioPlugin>(pb, SystemTuning{});
    });
    registry.registerFactory("imu_integrator", [](const Phonebook &pb) {
        return std::make_unique<IntegratorPlugin>(pb, SystemTuning{});
    });
    registry.registerFactory(
        "imu_integrator_rk4", [](const Phonebook &pb) {
            return std::make_unique<IntegratorPlugin>(pb, SystemTuning{},
                                                      "rk4");
        });
    registry.registerFactory(
        "imu_integrator_midpoint", [](const Phonebook &pb) {
            return std::make_unique<IntegratorPlugin>(pb, SystemTuning{},
                                                      "midpoint");
        });
    registry.registerFactory("timewarp", [](const Phonebook &pb) {
        return std::make_unique<TimewarpPlugin>(pb, SystemTuning{},
                                                TimewarpParams{});
    });
    registry.registerFactory("audio_encoding", [](const Phonebook &pb) {
        return std::make_unique<AudioEncoderPlugin>(pb, SystemTuning{});
    });
    registry.registerFactory("audio_playback", [](const Phonebook &pb) {
        return std::make_unique<AudioPlaybackPlugin>(pb, SystemTuning{});
    });
}

// ------------------------------------------------------ Fault corrupters

void
registerSensorCorrupters(FaultInjector &injector)
{
    // Camera: a saturated horizontal glitch band, the torn-readout
    // corruption a flaky sensor link produces.
    injector.setCorrupter(topics::kCamera, [](Event &e, Rng &rng) {
        auto *frame = dynamic_cast<CameraFrameEvent *>(&e);
        if (!frame || frame->image.height() <= 0 ||
            frame->image.width() <= 0)
            return;
        const int rows = 2 + static_cast<int>(rng.uniformInt(4));
        const int y0 = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(frame->image.height())));
        for (int dy = 0; dy < rows; ++dy) {
            const int y = std::min(frame->image.height() - 1, y0 + dy);
            for (int x = 0; x < frame->image.width(); ++x)
                frame->image.at(x, y) = static_cast<float>(rng.uniform());
        }
    });
    // IMU: a one-sample accelerometer spike (garbage decode of a
    // mangled transport packet).
    injector.setCorrupter(topics::kImu, [](Event &e, Rng &rng) {
        auto *imu = dynamic_cast<ImuEvent *>(&e);
        if (!imu)
            return;
        const double sign = rng.uniform() < 0.5 ? -1.0 : 1.0;
        imu->sample.linear_acceleration.x += sign * rng.uniform(15.0, 40.0);
        imu->sample.linear_acceleration.z -= sign * rng.uniform(5.0, 20.0);
    });
}

} // namespace illixr
