/**
 * @file
 * Multi-session fleet runtime: the session lifecycle behind (and
 * above) runIntegrated().
 *
 * One Session owns everything one XR user needs — Switchboard, plugin
 * set, executor, per-session MetricsRegistry and TraceSink — and runs
 * it on its own thread through explicit phases:
 *
 *     Session s{config};
 *     s.start();                       // non-blocking
 *     const IntegratedResult &r = s.result(); // joins, returns
 *
 * A SessionManager admits N such sessions concurrently (FIFO beyond
 * `max_concurrent`) and evicts cooperatively: evicting a queued
 * session drops it, evicting a running one asks its executor to wind
 * down at the next scheduling boundary — the partial result is still
 * collected. The only process-wide state sessions share is the
 * KernelPool (whose results are width-invariant, and whose accounting
 * is per-session via KernelPool::MetricsScope) and the manager's
 * admission slots; everything observable in a session's result is
 * per-session, which is why a deterministic session produces
 * byte-identical CSVs whether it runs alone or next to seven others
 * (asserted by DeterminismTest.ConcurrentSessionsMatchSolo).
 *
 * runIntegrated() remains as a thin one-session wrapper, so every
 * bench and example compiles unchanged.
 */

#pragma once

#include "xr/illixr_system.hpp"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace illixr {

class ExecutorBase;
class Plugin;
struct SystemTuning;

/**
 * Configuration of one session: the integrated-run knobs plus
 * session-level identity, and the one entry point that parses both
 * the environment and CLI flags (the fleet tools' "parse config one
 * way" rule). The old free functions applyExecutorEnv() /
 * parseExecutorFlag() are deprecated thin wrappers over this type.
 */
struct SessionConfig : IntegratedConfig
{
    /** Session label: names the session in fleet reports and logs. */
    std::string name = "session";

    /**
     * Head-tracker factory: when set, the session builds its VIO
     * plugin through this hook instead of the built-in VioPlugin —
     * how offloaded/edge-served trackers slot into the standard
     * assembly without xr linking them. The produced plugin can
     * publish its trajectory and run metrics into the result via
     * Plugin::vioTrajectory()/exportExtras(); MetricsRegistry and
     * (when resilience is on) FaultInjector are in the Phonebook by
     * the time the factory runs.
     */
    std::function<std::unique_ptr<Plugin>(
        const Phonebook &, const SystemTuning &)>
        vio_factory;

    SessionConfig() = default;
    SessionConfig(const IntegratedConfig &base) : IntegratedConfig(base) {}

    /**
     * Apply the executor environment overrides to *this:
     * `ILLIXR_EXECUTOR` (sim|pool), `ILLIXR_POOL_WORKERS`,
     * `ILLIXR_KERNEL_THREADS`, `ILLIXR_DETERMINISTIC` (0|1),
     * `ILLIXR_SEED`, `ILLIXR_FAULT_PLAN`, `ILLIXR_RESILIENCE` (0|1),
     * `ILLIXR_SCENARIO` (family name or scenario file),
     * `ILLIXR_SB_RING_CAP`, `ILLIXR_SB_POOL_CHUNK`, `ILLIXR_EDGE`
     * (0|1), `ILLIXR_EDGE_LINK`, `ILLIXR_EDGE_SLO_MS`,
     * `ILLIXR_EDGE_BATCH`. Unset variables leave the field untouched.
     * @return false on a malformed value (the config is left
     * partially updated).
     */
    bool applyEnv();

    /**
     * Parse one config CLI flag into *this: `--executor=sim|pool`,
     * `--workers=N`, `--kernel-threads=N`, `--deterministic`,
     * `--seed=N`, `--fault-plan=SPEC`, `--resilience`,
     * `--scenario=NAME_OR_FILE`, `--sb-ring-cap=N`,
     * `--sb-pool-chunk=N`, `--edge`, `--edge-link=NAME`,
     * `--edge-slo-ms=MS`, `--edge-batch=N`. @return true when
     * @p arg was one of these flags and parsed cleanly; false
     * otherwise (unrecognised flags are the caller's business).
     */
    bool parseFlag(const std::string &arg);

    /**
     * Install @p s as the run scenario: sets `scenario` and folds the
     * scenario-level run knobs into *this — duration when
     * s.duration_s > 0, seed when s.seed != 0, and a non-empty fault
     * plan (parsed, with supervision + degradation switched on, as
     * `--fault-plan= --resilience` would). @return false when the
     * fault-plan spec is malformed (the scenario is still installed).
     */
    bool applyScenario(const Scenario &s);

    /**
     * Resolve @p spec — a built-in family name ("circular",
     * "figure-eight", ...) or a scenario file path — and
     * applyScenario() it. On failure @p error carries the scenario
     * parser's diagnostic (offending line and key).
     */
    bool applyScenarioSpec(const std::string &spec, std::string &error);

    /** What fromEnvAndArgs() produced (defined below). */
    struct Parse;

    /**
     * The one-stop config entry point: defaults, then environment
     * overrides, then CLI flags (flags beat env). argv[0] is skipped;
     * unrecognised arguments are returned in Parse::unparsed rather
     * than rejected, so tools can layer their own flags on top.
     */
    static Parse fromEnvAndArgs(int argc, const char *const *argv);
};

struct SessionConfig::Parse
{
    SessionConfig config;
    /** argv entries that are not config flags (tool-specific). */
    std::vector<std::string> unparsed;
    bool ok = true;
    std::string error; ///< First malformed env var / flag.
};

/**
 * One XR session: owns its full runtime stack and runs it on a
 * dedicated thread. All per-run state (Switchboard, dataset, plugins,
 * executor, MetricsRegistry, TraceSink, ResilienceContext) lives
 * inside the session; the result is identical to what the old
 * blocking runIntegrated() returned.
 */
class Session
{
  public:
    enum class State
    {
        Idle,     ///< Constructed, not yet started or submitted.
        Queued,   ///< Waiting for a SessionManager admission slot.
        Running,  ///< The session thread is executing.
        Finished, ///< Run complete (possibly evicted early); result valid.
        Evicted,  ///< Dropped from a queue before ever starting.
    };

    explicit Session(SessionConfig config);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    const SessionConfig &config() const { return config_; }
    const std::string &name() const { return config_.name; }
    State state() const;

    /**
     * Launch the session thread (non-blocking). @throws
     * std::logic_error when already started.
     */
    void start();

    /**
     * Cooperative early stop: ask a running (or about-to-run) session
     * to wind down at its executor's next scheduling boundary. Safe
     * from any thread; one-way. The session still finishes normally —
     * stats collected, plugin stop() lifecycle run — just early.
     */
    void requestStop();

    /** requestStop() + wait(): the blocking stop phase. */
    void stop();

    /**
     * Block until the session is Finished (or Evicted). @throws
     * std::logic_error on a never-started, never-submitted session.
     */
    void wait();

    bool finished() const;

    /**
     * Wait for completion and return the collected result. Rethrows
     * an exception that escaped the session body; @throws
     * std::logic_error for a session evicted before it ever ran.
     */
    const IntegratedResult &result();

  private:
    friend class SessionManager;

    /** Manager hook: runs on the session thread after Finished. */
    void setOnFinished(std::function<void(Session &)> fn);

    /** Manager hook: Idle/Queued -> Queued/Evicted transitions. */
    void markQueued();
    bool markEvictedIfQueued();

    void runBody();

    SessionConfig config_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    State state_ = State::Idle;
    std::thread thread_;
    std::function<void(Session &)> on_finished_;
    IntegratedResult result_;
    std::exception_ptr error_;

    // Eviction handshake: the flag is set before the executor pointer
    // is read, and the body publishes the executor before re-checking
    // the flag, so a requestStop() can never fall between the two.
    std::mutex executor_mutex_;
    ExecutorBase *executor_ = nullptr;
    bool stop_requested_ = false;
};

/**
 * Admits N concurrent sessions onto the process. Submission beyond
 * `max_concurrent` queues FIFO; each finishing session pumps the
 * queue. Sessions are shared_ptr-owned so callers can hold, wait on,
 * or evict them independently of the manager's own bookkeeping.
 */
class SessionManager
{
  public:
    explicit SessionManager(std::size_t max_concurrent = 1);

    /** Drains: blocks until every submitted session is done. */
    ~SessionManager();

    SessionManager(const SessionManager &) = delete;
    SessionManager &operator=(const SessionManager &) = delete;

    /**
     * Admit @p config as a new session: starts immediately when a
     * slot is free, queues FIFO otherwise. Returns the session handle
     * (wait()/result() on it as with a standalone Session).
     */
    std::shared_ptr<Session> submit(SessionConfig config);

    /**
     * Evict a session: a queued one is dropped (state Evicted, never
     * runs); a running one gets requestStop() and finishes early with
     * a valid partial result. @return false when the session is not
     * this manager's or already finished.
     */
    bool evict(const std::shared_ptr<Session> &session);

    /** Block until every submitted session is Finished or Evicted. */
    void drain();

    std::size_t maxConcurrent() const { return max_concurrent_; }
    std::size_t runningCount() const;
    std::size_t queuedCount() const;

    /** Total sessions ever moved into Running. */
    std::uint64_t admittedTotal() const;

  private:
    void startLocked(const std::shared_ptr<Session> &session);
    void onSessionFinished(Session &session);

    const std::size_t max_concurrent_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<Session>> queued_;
    std::vector<std::shared_ptr<Session>> running_;
    std::vector<std::shared_ptr<Session>> to_join_;
    std::uint64_t admitted_ = 0;
};

} // namespace illixr
