/**
 * @file
 * Concrete switchboard event types flowing between the ILLIXR
 * plugins (the arrows of paper Fig 2).
 */

#pragma once

#include "audio/ambisonics.hpp"
#include "render/app.hpp"
#include "runtime/switchboard.hpp"
#include "sensors/dataset.hpp"
#include "sensors/imu.hpp"
#include "slam/imu_integrator.hpp"

namespace illixr {

/** Topic names used by the integrated system. */
namespace topics {
inline constexpr const char *kCamera = "camera";
inline constexpr const char *kImu = "imu";
inline constexpr const char *kSlowPose = "slow_pose";      ///< VIO out.
inline constexpr const char *kFastPose = "fast_pose";      ///< Integrator.
inline constexpr const char *kSubmittedFrame = "submitted_frame";
inline constexpr const char *kDisplayFrame = "display_frame";
inline constexpr const char *kSoundfield = "soundfield";
inline constexpr const char *kStereoAudio = "stereo_audio";
inline constexpr const char *kQoeFeedback = "qoe_feedback";
} // namespace topics

/** A camera frame on the "camera" topic. */
struct CameraFrameEvent : Event
{
    ImageF image;
    std::size_t sequence = 0;
};

/** An IMU sample on the "imu" topic. */
struct ImuEvent : Event
{
    ImuSample sample;
};

/** A full IMU state (pose + velocity + biases) on a pose topic. */
struct PoseEvent : Event
{
    ImuState state;
};

/** The application's rendered stereo frame. */
struct StereoFrameEvent : Event
{
    StereoFrame frame;
};

/** The reprojected frame headed for the display. */
struct DisplayFrameEvent : Event
{
    RgbImage left;
    RgbImage right;
    double imu_age_ms = 0.0; ///< Age of the pose used to warp.
};

/** An encoded HOA block on the "soundfield" topic. */
struct SoundfieldEvent : Event
{
    explicit SoundfieldEvent(std::size_t block) : field(block) {}
    Soundfield field;
    std::size_t block_index = 0;
};

/** The binauralized output block. */
struct StereoAudioEvent : Event
{
    std::vector<double> left;
    std::vector<double> right;
};

/**
 * QoE feedback from the display side: how stale the application's
 * submitted frame was at reprojection time, in display intervals.
 * The input to QoE-driven resource adaptation (paper §V-D).
 */
struct QoeFeedbackEvent : Event
{
    int stale_intervals = 0; ///< 0 = fresh frame this vsync.
};

} // namespace illixr
