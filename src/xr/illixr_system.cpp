#include "xr/illixr_system.hpp"

#include "runtime/phonebook.hpp"
#include "xr/plugins.hpp"

namespace illixr {

double
IntegratedResult::achievedHz(const std::string &name) const
{
    auto it = tasks.find(name);
    if (it == tasks.end() || config.duration <= 0)
        return 0.0;
    return it->second.achievedHz(config.duration);
}

IntegratedResult
runIntegrated(const IntegratedConfig &config)
{
    const SystemTuning tuning;

    // --- Services ---
    Phonebook phonebook;
    auto switchboard = std::make_shared<Switchboard>();
    phonebook.registerService(switchboard);

    auto metrics = std::make_shared<MetricsRegistry>();
    std::shared_ptr<TraceSink> sink;
    if (config.trace) {
        sink = std::make_shared<TraceSink>();
        switchboard->setTraceSink(sink);
    }

    DatasetConfig ds_cfg;
    ds_cfg.duration_s = toSeconds(config.duration) + 0.5;
    ds_cfg.image_width = config.camera_width;
    ds_cfg.image_height = config.camera_height;
    ds_cfg.camera_rate_hz = tuning.camera_hz;
    ds_cfg.imu_rate_hz = tuning.imu_hz;
    ds_cfg.preset = DatasetConfig::Preset::LabWalk;
    ds_cfg.seed = config.seed;
    auto data =
        std::make_shared<PreloadedDataset>(ds_cfg, config.duration);
    phonebook.registerService(data);

    // --- Plugins (Table II components in the integrated config) ---
    AppConfig app_cfg;
    app_cfg.eye_width = config.eye_size;
    app_cfg.eye_height = config.eye_size;

    TimewarpParams tw_params;
    tw_params.fov_y_rad = app_cfg.fov_y_rad;

    CameraPlugin camera(phonebook, tuning);
    ImuPlugin imu(phonebook, tuning);
    VioPlugin vio(phonebook, tuning);
    IntegratorPlugin integrator(phonebook, tuning);
    ApplicationPlugin application(phonebook, tuning, config.app, app_cfg,
                                  config.adaptive_resolution);
    TimewarpPlugin timewarp(phonebook, tuning, tw_params);
    AudioEncoderPlugin audio_enc(phonebook, tuning);
    AudioPlaybackPlugin audio_play(phonebook, tuning);

    // --- Scheduler ---
    const PlatformModel platform = PlatformModel::get(config.platform);
    SimScheduler scheduler(platform);
    scheduler.setMetrics(metrics.get());
    scheduler.setPhonebook(&phonebook);
    if (sink)
        scheduler.setTraceSink(sink);
    scheduler.addPlugin(&camera);
    scheduler.addPlugin(&imu);
    scheduler.addPlugin(&vio);
    scheduler.addPlugin(&integrator);
    scheduler.addPlugin(&application);
    const Duration vsync = periodFromHz(tuning.display_hz);
    scheduler.addVsyncAlignedPlugin(&timewarp, vsync);
    scheduler.addPlugin(&audio_enc);
    scheduler.addPlugin(&audio_play);

    scheduler.run(config.duration);

    // --- Collect results ---
    IntegratedResult result;
    result.config = config;
    result.vsync = vsync;
    double total_host = 0.0;
    for (const std::string &name : scheduler.taskNames()) {
        const TaskStats &stats = scheduler.stats(name);
        result.tasks.emplace(name, stats);
        double host = 0.0;
        for (const InvocationRecord &rec : stats.records)
            host += rec.host_seconds;
        result.cpu_share[name] = host;
        total_host += host;
    }
    if (total_host > 0.0) {
        for (auto &[name, host] : result.cpu_share)
            host /= total_host;
    }

    result.target_hz["camera"] = tuning.camera_hz;
    result.target_hz["vio"] = tuning.camera_hz;
    result.target_hz["imu"] = tuning.imu_hz;
    result.target_hz["integrator"] = tuning.imu_hz;
    result.target_hz["application"] = tuning.display_hz;
    result.target_hz["timewarp"] = tuning.display_hz;
    result.target_hz["audio_encoding"] = tuning.audio_hz;
    result.target_hz["audio_playback"] = tuning.audio_hz;

    result.mtp =
        computeMtp(scheduler.stats("timewarp"), timewarp.imuAgesMs(),
                   vsync);

    result.lineage_stages = {topics::kCamera, topics::kImu,
                             topics::kSlowPose, topics::kFastPose,
                             topics::kSubmittedFrame};
    if (sink) {
        result.trace = sink;
        result.lineage_mtp = computeLineageMtp(
            *sink, vsync, topics::kDisplayFrame, result.lineage_stages);
    }
    result.metrics = metrics;
    metrics->gauge("run.cpu_utilization").set(scheduler.cpuUtilization());
    metrics->gauge("run.gpu_utilization").set(scheduler.gpuUtilization());

    result.utilization.cpu = scheduler.cpuUtilization();
    result.utilization.gpu = scheduler.gpuUtilization();
    // Memory traffic proxy: display + camera traffic dominates; use
    // a weighted blend of unit utilizations (see DESIGN.md).
    result.utilization.memory = std::min(
        1.0, 0.55 * result.utilization.gpu + 0.35 * result.utilization.cpu +
                 0.10);
    result.power = computePower(platform, result.utilization);

    result.vio_trajectory = vio.trajectory();
    result.extra["final_eye_resolution"] =
        static_cast<double>(application.currentEyeResolution());
    result.extra["min_eye_resolution"] =
        static_cast<double>(application.minEyeResolution());
    return result;
}

} // namespace illixr
