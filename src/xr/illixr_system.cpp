#include "xr/illixr_system.hpp"

#include "xr/plugins.hpp"
#include "xr/session.hpp"

namespace illixr {

double
IntegratedResult::achievedHz(const std::string &name) const
{
    auto it = tasks.find(name);
    if (it == tasks.end() || config.duration <= 0)
        return 0.0;
    return it->second.achievedHz(config.duration);
}

bool
parseExecutorKind(const std::string &name, ExecutorKind &out)
{
    if (name == "sim") {
        out = ExecutorKind::Sim;
        return true;
    }
    if (name == "pool") {
        out = ExecutorKind::Pool;
        return true;
    }
    return false;
}

const char *
executorKindName(ExecutorKind kind)
{
    return kind == ExecutorKind::Pool ? "pool" : "sim";
}

bool
applyExecutorEnv(IntegratedConfig &config)
{
    // Deprecated wrapper: the canonical parser lives on SessionConfig.
    SessionConfig session_config(config);
    const bool ok = session_config.applyEnv();
    config = static_cast<const IntegratedConfig &>(session_config);
    return ok;
}

bool
parseExecutorFlag(const std::string &arg, IntegratedConfig &config)
{
    // Deprecated wrapper: the canonical parser lives on SessionConfig.
    SessionConfig session_config(config);
    const bool ok = session_config.parseFlag(arg);
    config = static_cast<const IntegratedConfig &>(session_config);
    return ok;
}

std::unique_ptr<ResilienceContext>
makeResilienceContext(const IntegratedConfig &config,
                      Switchboard &switchboard, MetricsRegistry *metrics)
{
    if (!config.resilience.enabled())
        return nullptr;
    ResilienceConfig rcfg = config.resilience;
    // Topic faults default to the sensor streams: a plan that asks
    // for drops/corruption without naming topics hits camera + imu.
    if (rcfg.fault_plan.topics.empty() &&
        (rcfg.fault_plan.drop_rate > 0.0 ||
         rcfg.fault_plan.corrupt_rate > 0.0))
        rcfg.fault_plan.topics = {topics::kCamera, topics::kImu};
    auto ctx = std::make_unique<ResilienceContext>(rcfg, switchboard,
                                                   metrics);
    if (ctx->injector())
        registerSensorCorrupters(*ctx->injector());
    return ctx;
}

void
exportResilienceExtras(ResilienceContext *ctx,
                       std::map<std::string, double> &extra)
{
    if (!ctx)
        return;
    if (FaultInjector *inj = ctx->injector()) {
        extra["injected_faults"] =
            static_cast<double>(inj->injectedTotal());
        extra["injected_crashes"] =
            static_cast<double>(inj->injectedCrashes());
        extra["injected_drops"] =
            static_cast<double>(inj->injectedDrops());
    }
    if (Supervisor *sup = ctx->supervisor()) {
        extra["plugin_restarts"] = static_cast<double>(sup->restarts());
        extra["plugin_exceptions"] =
            static_cast<double>(sup->exceptionsSeen());
    }
    if (DegradationPlugin *deg = ctx->degradationPlugin()) {
        extra["degradation_max_level"] =
            static_cast<double>(deg->maxLevelReached());
    }
}

// runIntegrated() lives in session.cpp: it is the thin one-session
// wrapper over the Session lifecycle (see xr/session.hpp).

} // namespace illixr
