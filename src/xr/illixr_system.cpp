#include "xr/illixr_system.hpp"

#include "runtime/parallel.hpp"
#include "runtime/phonebook.hpp"
#include "runtime/pool_executor.hpp"
#include "xr/plugins.hpp"

#include <cstdlib>
#include <cstring>

namespace illixr {

double
IntegratedResult::achievedHz(const std::string &name) const
{
    auto it = tasks.find(name);
    if (it == tasks.end() || config.duration <= 0)
        return 0.0;
    return it->second.achievedHz(config.duration);
}

bool
parseExecutorKind(const std::string &name, ExecutorKind &out)
{
    if (name == "sim") {
        out = ExecutorKind::Sim;
        return true;
    }
    if (name == "pool") {
        out = ExecutorKind::Pool;
        return true;
    }
    return false;
}

const char *
executorKindName(ExecutorKind kind)
{
    return kind == ExecutorKind::Pool ? "pool" : "sim";
}

namespace {

bool
parseUnsigned(const std::string &text, unsigned long &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoul(text.c_str(), &end, 10);
    return end && *end == '\0';
}

} // namespace

bool
applyExecutorEnv(IntegratedConfig &config)
{
    if (const char *v = std::getenv("ILLIXR_EXECUTOR")) {
        if (!parseExecutorKind(v, config.executor))
            return false;
    }
    if (const char *v = std::getenv("ILLIXR_POOL_WORKERS")) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        config.pool_workers = n;
    }
    if (const char *v = std::getenv("ILLIXR_KERNEL_THREADS")) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        config.kernel_threads = n;
    }
    if (const char *v = std::getenv("ILLIXR_DETERMINISTIC"))
        config.deterministic = std::string(v) != "0";
    if (const char *v = std::getenv("ILLIXR_SEED")) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n))
            return false;
        config.seed = static_cast<unsigned>(n);
    }
    if (const char *v = std::getenv("ILLIXR_FAULT_PLAN")) {
        if (!parseFaultPlan(v, config.resilience.fault_plan))
            return false;
    }
    if (const char *v = std::getenv("ILLIXR_RESILIENCE")) {
        const bool on = std::string(v) != "0";
        config.resilience.supervise = on;
        config.resilience.degrade = on;
    }
    if (const char *v = std::getenv("ILLIXR_SB_RING_CAP")) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        config.sb_ring_capacity = n;
    }
    if (const char *v = std::getenv("ILLIXR_SB_POOL_CHUNK")) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        config.sb_pool_chunk = n;
    }
    return true;
}

bool
parseExecutorFlag(const std::string &arg, IntegratedConfig &config)
{
    auto value = [&arg](const char *prefix, std::string &out) {
        const std::size_t n = std::strlen(prefix);
        if (arg.compare(0, n, prefix) != 0)
            return false;
        out = arg.substr(n);
        return true;
    };
    std::string v;
    if (value("--executor=", v))
        return parseExecutorKind(v, config.executor);
    if (value("--workers=", v)) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        config.pool_workers = n;
        return true;
    }
    if (value("--kernel-threads=", v)) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        config.kernel_threads = n;
        return true;
    }
    if (arg == "--deterministic") {
        config.deterministic = true;
        return true;
    }
    if (value("--seed=", v)) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n))
            return false;
        config.seed = static_cast<unsigned>(n);
        return true;
    }
    if (value("--fault-plan=", v))
        return parseFaultPlan(v, config.resilience.fault_plan);
    if (arg == "--resilience") {
        config.resilience.supervise = true;
        config.resilience.degrade = true;
        return true;
    }
    if (value("--sb-ring-cap=", v)) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        config.sb_ring_capacity = n;
        return true;
    }
    if (value("--sb-pool-chunk=", v)) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        config.sb_pool_chunk = n;
        return true;
    }
    return false;
}

std::unique_ptr<ResilienceContext>
makeResilienceContext(const IntegratedConfig &config,
                      Switchboard &switchboard, MetricsRegistry *metrics)
{
    if (!config.resilience.enabled())
        return nullptr;
    ResilienceConfig rcfg = config.resilience;
    // Topic faults default to the sensor streams: a plan that asks
    // for drops/corruption without naming topics hits camera + imu.
    if (rcfg.fault_plan.topics.empty() &&
        (rcfg.fault_plan.drop_rate > 0.0 ||
         rcfg.fault_plan.corrupt_rate > 0.0))
        rcfg.fault_plan.topics = {topics::kCamera, topics::kImu};
    auto ctx = std::make_unique<ResilienceContext>(rcfg, switchboard,
                                                   metrics);
    if (ctx->injector())
        registerSensorCorrupters(*ctx->injector());
    return ctx;
}

void
exportResilienceExtras(ResilienceContext *ctx,
                       std::map<std::string, double> &extra)
{
    if (!ctx)
        return;
    if (FaultInjector *inj = ctx->injector()) {
        extra["injected_faults"] =
            static_cast<double>(inj->injectedTotal());
        extra["injected_crashes"] =
            static_cast<double>(inj->injectedCrashes());
        extra["injected_drops"] =
            static_cast<double>(inj->injectedDrops());
    }
    if (Supervisor *sup = ctx->supervisor()) {
        extra["plugin_restarts"] = static_cast<double>(sup->restarts());
        extra["plugin_exceptions"] =
            static_cast<double>(sup->exceptionsSeen());
    }
    if (DegradationPlugin *deg = ctx->degradationPlugin()) {
        extra["degradation_max_level"] =
            static_cast<double>(deg->maxLevelReached());
    }
}

IntegratedResult
runIntegrated(const IntegratedConfig &config)
{
    const SystemTuning tuning;

    // --- Kernel pool: width for the data-parallel kernels, plus this
    // run's metrics/trace sinks (kernel results are bit-identical at
    // any width, so this never perturbs determinism). ---
    KernelPool &kernels = KernelPool::instance();
    if (config.kernel_threads > 0)
        kernels.setWidth(config.kernel_threads);

    // --- Services ---
    Phonebook phonebook;
    auto switchboard = std::make_shared<Switchboard>();
    if (config.sb_ring_capacity > 0)
        switchboard->setDefaultRingCapacity(config.sb_ring_capacity);
    if (config.sb_pool_chunk > 0)
        switchboard->setPoolChunkEvents(config.sb_pool_chunk);
    phonebook.registerService(switchboard);

    auto metrics = std::make_shared<MetricsRegistry>();
    switchboard->setMetrics(metrics.get());
    std::shared_ptr<TraceSink> sink;
    if (config.trace) {
        sink = std::make_shared<TraceSink>();
        switchboard->setTraceSink(sink);
    }
    kernels.setMetrics(metrics.get());
    kernels.setTraceSink(sink);

    DatasetConfig ds_cfg;
    ds_cfg.duration_s = toSeconds(config.duration) + 0.5;
    ds_cfg.image_width = config.camera_width;
    ds_cfg.image_height = config.camera_height;
    ds_cfg.camera_rate_hz = tuning.camera_hz;
    ds_cfg.imu_rate_hz = tuning.imu_hz;
    ds_cfg.preset = DatasetConfig::Preset::LabWalk;
    ds_cfg.seed = config.seed;
    auto data =
        std::make_shared<PreloadedDataset>(ds_cfg, config.duration);
    phonebook.registerService(data);

    // --- Plugins (Table II components in the integrated config) ---
    AppConfig app_cfg;
    app_cfg.eye_width = config.eye_size;
    app_cfg.eye_height = config.eye_size;

    TimewarpParams tw_params;
    tw_params.fov_y_rad = app_cfg.fov_y_rad;

    // Resilience: installed before any plugin publishes so the fault
    // plan sees every event from the first one.
    std::unique_ptr<ResilienceContext> resilience =
        makeResilienceContext(config, *switchboard, metrics.get());

    CameraPlugin camera(phonebook, tuning);
    ImuPlugin imu(phonebook, tuning);
    VioPlugin vio(phonebook, tuning);
    IntegratorPlugin integrator(phonebook, tuning);
    ApplicationPlugin application(phonebook, tuning, config.app, app_cfg,
                                  config.adaptive_resolution);
    TimewarpPlugin timewarp(phonebook, tuning, tw_params);
    AudioEncoderPlugin audio_enc(phonebook, tuning);
    AudioPlaybackPlugin audio_play(phonebook, tuning);

    // --- Executor ---
    const PlatformModel platform = PlatformModel::get(config.platform);
    std::unique_ptr<SimScheduler> sim;
    std::unique_ptr<PoolExecutor> pool;
    ExecutorBase *executor = nullptr;
    if (config.executor == ExecutorKind::Pool) {
        PoolExecutorConfig pool_cfg;
        pool_cfg.workers = config.pool_workers;
        pool_cfg.deterministic = config.deterministic;
        pool_cfg.seed = config.seed;
        pool_cfg.platform = config.platform;
        pool = std::make_unique<PoolExecutor>(pool_cfg);
        executor = pool.get();
    } else {
        sim = std::make_unique<SimScheduler>(platform);
        executor = sim.get();
    }
    executor->setMetrics(metrics.get());
    executor->setPhonebook(&phonebook);
    if (sink)
        executor->setTraceSink(sink);
    executor->addPlugin(&camera);
    executor->addPlugin(&imu);
    executor->addPlugin(&vio);
    executor->addPlugin(&integrator);
    executor->addPlugin(&application);
    const Duration vsync = periodFromHz(tuning.display_hz);
    executor->addVsyncAlignedPlugin(&timewarp, vsync);
    executor->addPlugin(&audio_enc);
    executor->addPlugin(&audio_play);
    if (resilience) {
        resilience->attach(*executor);
        if (resilience->degradationPlugin())
            executor->addPlugin(resilience->degradationPlugin());
    }

    executor->run(config.duration);

    // Detach the run-scoped sinks before the registry can go away.
    kernels.setMetrics(nullptr);
    kernels.setTraceSink(nullptr);

    // --- Collect results ---
    IntegratedResult result;
    result.config = config;
    result.vsync = vsync;
    double total_host = 0.0;
    for (const std::string &name : executor->taskNames()) {
        const TaskStats &stats = executor->stats(name);
        result.tasks.emplace(name, stats);
        double host = 0.0;
        for (const InvocationRecord &rec : stats.records)
            host += rec.host_seconds;
        result.cpu_share[name] = host;
        total_host += host;
    }
    if (total_host > 0.0) {
        for (auto &[name, host] : result.cpu_share)
            host /= total_host;
    }

    result.target_hz["camera"] = tuning.camera_hz;
    result.target_hz["vio"] = tuning.camera_hz;
    result.target_hz["imu"] = tuning.imu_hz;
    result.target_hz["integrator"] = tuning.imu_hz;
    result.target_hz["application"] = tuning.display_hz;
    result.target_hz["timewarp"] = tuning.display_hz;
    result.target_hz["audio_encoding"] = tuning.audio_hz;
    result.target_hz["audio_playback"] = tuning.audio_hz;

    result.mtp =
        computeMtp(executor->stats("timewarp"), timewarp.imuAgesMs(),
                   vsync);

    result.lineage_stages = {topics::kCamera, topics::kImu,
                             topics::kSlowPose, topics::kFastPose,
                             topics::kSubmittedFrame};
    if (sink) {
        result.trace = sink;
        result.lineage_mtp = computeLineageMtp(
            *sink, vsync, topics::kDisplayFrame, result.lineage_stages);
    }
    // Sample the transport gauges (seqlock contention, pool occupancy)
    // into this run's registry before it is handed to the caller.
    switchboard->flushMetrics();
    result.metrics = metrics;
    const double cpu_util =
        pool ? pool->cpuUtilization() : sim->cpuUtilization();
    const double gpu_util =
        pool ? pool->gpuUtilization() : sim->gpuUtilization();
    metrics->gauge("run.cpu_utilization").set(cpu_util);
    metrics->gauge("run.gpu_utilization").set(gpu_util);

    result.utilization.cpu = cpu_util;
    result.utilization.gpu = gpu_util;
    // Memory traffic proxy: display + camera traffic dominates; use
    // a weighted blend of unit utilizations (see DESIGN.md).
    result.utilization.memory = std::min(
        1.0, 0.55 * result.utilization.gpu + 0.35 * result.utilization.cpu +
                 0.10);
    result.power = computePower(platform, result.utilization);

    result.vio_trajectory = vio.trajectory();
    result.extra["final_eye_resolution"] =
        static_cast<double>(application.currentEyeResolution());
    result.extra["min_eye_resolution"] =
        static_cast<double>(application.minEyeResolution());
    exportResilienceExtras(resilience.get(), result.extra);
    return result;
}

} // namespace illixr
