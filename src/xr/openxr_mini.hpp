/**
 * @file
 * OpenXR-mini: a small application-facing API mirroring the OpenXR
 * frame-loop (paper §II: applications interface with ILLIXR through
 * the OpenXR API; here the same boundary is preserved with a compact
 * C++ API rather than the C ABI).
 *
 * Frame lifecycle, as in OpenXR:
 *   waitFrame()    -> predicted display time for the next frame
 *   locateViews()  -> per-eye poses at that time (from the runtime's
 *                     fast pose)
 *   endFrame()     -> submit the rendered stereo layers
 */

#pragma once

#include "foundation/pose.hpp"
#include "render/app.hpp"
#include "runtime/switchboard.hpp"
#include "xr/events.hpp"

#include <array>
#include <memory>
#include <string>

namespace illixr {

/** Per-eye view returned by locateViews. */
struct XrView
{
    Pose pose;           ///< Eye pose in world space.
    double fov_y_rad = 1.5;
};

/** Session state, a simplified OpenXR state machine. */
enum class XrSessionState
{
    Idle,
    Ready,
    Focused,
    Stopping,
};

/**
 * An application session against the runtime.
 */
class XrSession
{
  public:
    /**
     * @param switchboard The runtime's switchboard.
     * @param ipd_m       Inter-pupillary distance for view poses.
     * @param vsync       Display refresh period.
     */
    XrSession(std::shared_ptr<Switchboard> switchboard, double ipd_m,
              Duration vsync);

    /** Transition Idle -> Ready -> Focused. */
    void begin();

    /** Transition to Stopping. */
    void end();

    XrSessionState state() const { return state_; }

    /**
     * Block (logically) until the runtime wants the next frame;
     * returns the predicted display time given the current time.
     */
    TimePoint waitFrame(TimePoint now) const;

    /**
     * Eye poses at (approximately) @p display_time, derived from the
     * runtime's latest fast pose.
     * @return left and right views.
     */
    std::array<XrView, 2> locateViews(TimePoint display_time) const;

    /** Submit the application's rendered stereo frame. */
    void endFrame(StereoFrame frame, TimePoint now);

    /** Frames submitted so far. */
    std::size_t submittedFrames() const { return submitted_; }

  private:
    Switchboard::AsyncReader<PoseEvent> fastPoseReader_;
    Switchboard::Writer<StereoFrameEvent> submittedWriter_;
    double ipd_;
    Duration vsync_;
    XrSessionState state_ = XrSessionState::Idle;
    std::size_t submitted_ = 0;
};

} // namespace illixr
