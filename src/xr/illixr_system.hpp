/**
 * @file
 * The integrated ILLIXR system: assembles the full plugin set on the
 * discrete-event runtime for a chosen application and platform, and
 * collects every metric the paper's evaluation reports (frame rates,
 * execution times, CPU-share, power, MTP, QoE inputs).
 */

#pragma once

#include "metrics/mtp.hpp"
#include "perfmodel/power.hpp"
#include "render/scenes.hpp"
#include "resilience/resilience.hpp"
#include "runtime/sim_scheduler.hpp"
#include "sensors/dataset.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/tail_monitor.hpp"
#include "trace/trace.hpp"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace illixr {

/** Which executor drives an integrated run. */
enum class ExecutorKind
{
    Sim,  ///< Discrete-event SimScheduler (virtual time; default).
    Pool, ///< PoolExecutor worker pool (wall time, or virtual when
          ///< deterministic).
};

/** Parse an executor name ("sim" | "pool"). @return success. */
bool parseExecutorKind(const std::string &name, ExecutorKind &out);

const char *executorKindName(ExecutorKind kind);

/**
 * Edge-offload options: plain data parsed by SessionConfig (`--edge`,
 * `ILLIXR_EDGE_*`) and consumed by src/edge's attachEdgeClient(),
 * which turns them into an OffloadedVioPlugin factory speaking to an
 * EdgeServer — xr itself never links the server.
 */
struct EdgeOptions
{
    bool enabled = false;
    /** Link preset name (NetworkLink::byName). */
    std::string link = "wifi6";
    /** Pose-latency SLO: deadline = frame capture + this budget. */
    double slo_ms = 80.0;
    /** Server batch cap; 1 = unbatched serving. */
    std::size_t max_batch = 8;
};

/**
 * Tail-latency attribution options (`--tail-*`, `ILLIXR_TAIL_*`):
 * attach a TailMonitor to the run's TraceSink so every display frame
 * is decomposed into scheduler-wait / kernel / transport / retry time,
 * outliers past the threshold keep their full lineage, and tail.*
 * metrics land in the session registry (see DESIGN.md §Tail-latency
 * model).
 */
struct TailOptions
{
    bool enabled = false;
    /** Frames slower end-to-end than this are captured as outliers. */
    double threshold_ms = 50.0;
    /** TraceSink ring size (spans/events/skips each); 0 = unbounded.
     *  Outlier lineage is materialized before eviction, so a small
     *  ring loses no attribution. */
    std::size_t ring = 0;
    /** Cap on retained outlier breakdowns (FIFO beyond it). */
    std::size_t max_outliers = 65536;
};

/** Configuration of one integrated run. */
struct IntegratedConfig
{
    PlatformId platform = PlatformId::Desktop;
    AppId app = AppId::Sponza;
    Duration duration = 10 * kSecond; ///< Virtual run length.
    int eye_size = 80;                ///< Per-eye render resolution.
    int camera_width = 192;
    int camera_height = 144;
    unsigned seed = 1;
    bool evaluate_qoe = false;        ///< Offline Table V pass.
    /** QoE-driven dynamic eye-buffer scaling (paper §V-D demo). */
    bool adaptive_resolution = false;
    /** Record spans + frame lineage into IntegratedResult::trace. */
    bool trace = true;
    /** Executor driving the plugin set. */
    ExecutorKind executor = ExecutorKind::Sim;
    /** Worker count when executor == Pool. */
    std::size_t pool_workers = 4;
    /** Kernel-pool width for data-parallel kernels (parallelFor).
     *  0 = inherit the process default (`ILLIXR_KERNEL_THREADS`,
     *  else serial); 1 = force serial. Results are bit-identical at
     *  any width. */
    std::size_t kernel_threads = 0;
    /** Pool only: virtual-clock replay; byte-reproducible per seed. */
    bool deterministic = false;
    /** Default Switchboard SyncReader ring capacity (events; rounded
     *  up to a power of two). 0 = switchboard default (1024). */
    std::size_t sb_ring_capacity = 0;
    /** Events per initial slab chunk of each topic's event pool.
     *  0 = switchboard default (64). */
    std::size_t sb_pool_chunk = 0;
    /** Fault injection / supervision / degradation (off by default). */
    ResilienceConfig resilience;
    /**
     * Workload scenario (sensors/scenario.hpp). When set, the dataset
     * synthesizes the scenario's trajectory / world / IMU grade
     * instead of the lab-walk preset; SessionConfig::applyScenario()
     * additionally folds the scenario's duration, seed and fault plan
     * into the run config.
     */
    std::optional<Scenario> scenario;
    /** Edge-offloaded VIO serving (see EdgeOptions). */
    EdgeOptions edge;
    /** Tail-latency attribution (see TailOptions). */
    TailOptions tail;
};

/**
 * @deprecated Thin wrapper over SessionConfig::applyEnv() — use
 * SessionConfig::fromEnvAndArgs() (xr/session.hpp), the single config
 * entry point, in new code.
 */
bool applyExecutorEnv(IntegratedConfig &config);

/**
 * @deprecated Thin wrapper over SessionConfig::parseFlag() — use
 * SessionConfig::fromEnvAndArgs() (xr/session.hpp), the single config
 * entry point, in new code.
 */
bool parseExecutorFlag(const std::string &arg, IntegratedConfig &config);

/** Everything the benches need from one run. */
struct IntegratedResult
{
    IntegratedConfig config;
    Duration vsync = 0;

    /** Per-component scheduler statistics, by plugin name. */
    std::map<std::string, TaskStats> tasks;

    /** Target rates per component (paper Table III). */
    std::map<std::string, double> target_hz;

    /** Motion-to-photon latency series (§III-E). */
    MtpSeries mtp;

    /** Lineage-derived MTP breakdown (empty when !config.trace). */
    LineageMtp lineage_mtp;

    /** Full causal trace of the run (null when !config.trace). */
    std::shared_ptr<TraceSink> trace;

    /** Tail-latency monitor (null unless config.tail.enabled). */
    std::shared_ptr<TailMonitor> tail;

    /** Per-run metric registry (task counters/histograms). */
    std::shared_ptr<MetricsRegistry> metrics;

    /** Stage topics used for the lineage queries, pipeline order. */
    std::vector<std::string> lineage_stages;

    /** Power model outputs (Fig 6). */
    PowerBreakdown power;
    UtilizationSummary utilization;

    /** Share of total host CPU work per component (Fig 5). */
    std::map<std::string, double> cpu_share;

    /** VIO trajectory estimate (for offline QoE / accuracy). */
    std::vector<StampedPose> vio_trajectory;

    /** Extra scenario-specific metrics (e.g., offload round-trip). */
    std::map<std::string, double> extra;

    /** Achieved rate of a component over the run. */
    double achievedHz(const std::string &name) const;
};

/**
 * Build the run's ResilienceContext from @p config.resilience
 * (nullptr when disabled). Installs the publish hook on
 * @p switchboard, registers the sensor corrupters, and defaults topic
 * faults onto the camera + imu streams; attach() to the executor is
 * the caller's job.
 */
std::unique_ptr<ResilienceContext>
makeResilienceContext(const IntegratedConfig &config,
                      Switchboard &switchboard, MetricsRegistry *metrics);

/** Export resilience.* counters into IntegratedResult::extra. */
void exportResilienceExtras(ResilienceContext *ctx,
                            std::map<std::string, double> &extra);

/**
 * Run the integrated system once: a thin blocking wrapper over one
 * Session (start + result; see xr/session.hpp for the session
 * lifecycle and the multi-session SessionManager).
 */
IntegratedResult runIntegrated(const IntegratedConfig &config);

} // namespace illixr
