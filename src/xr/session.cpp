#include "xr/session.hpp"

#include "resilience/fault_injector.hpp"
#include "runtime/parallel.hpp"
#include "runtime/phonebook.hpp"
#include "runtime/pool_executor.hpp"
#include "xr/plugins.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace illixr {

// ---------------------------------------------------------------------
// SessionConfig: the one config parser (env + CLI)
// ---------------------------------------------------------------------

namespace {

bool
parseUnsigned(const std::string &text, unsigned long &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoul(text.c_str(), &end, 10);
    return end && *end == '\0';
}

bool
parsePositiveDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end && *end == '\0' && out > 0.0;
}

} // namespace

bool
SessionConfig::applyEnv()
{
    if (const char *v = std::getenv("ILLIXR_EXECUTOR")) {
        if (!parseExecutorKind(v, executor))
            return false;
    }
    if (const char *v = std::getenv("ILLIXR_POOL_WORKERS")) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        pool_workers = n;
    }
    if (const char *v = std::getenv("ILLIXR_KERNEL_THREADS")) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        kernel_threads = n;
    }
    if (const char *v = std::getenv("ILLIXR_DETERMINISTIC"))
        deterministic = std::string(v) != "0";
    if (const char *v = std::getenv("ILLIXR_SEED")) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n))
            return false;
        seed = static_cast<unsigned>(n);
    }
    if (const char *v = std::getenv("ILLIXR_FAULT_PLAN")) {
        if (!parseFaultPlan(v, resilience.fault_plan))
            return false;
    }
    if (const char *v = std::getenv("ILLIXR_RESILIENCE")) {
        const bool on = std::string(v) != "0";
        resilience.supervise = on;
        resilience.degrade = on;
    }
    if (const char *v = std::getenv("ILLIXR_SCENARIO")) {
        std::string error;
        if (!applyScenarioSpec(v, error)) {
            std::fprintf(stderr, "ILLIXR_SCENARIO: %s\n", error.c_str());
            return false;
        }
    }
    if (const char *v = std::getenv("ILLIXR_SB_RING_CAP")) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        sb_ring_capacity = n;
    }
    if (const char *v = std::getenv("ILLIXR_SB_POOL_CHUNK")) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        sb_pool_chunk = n;
    }
    if (const char *v = std::getenv("ILLIXR_EDGE"))
        edge.enabled = std::string(v) != "0";
    if (const char *v = std::getenv("ILLIXR_EDGE_LINK")) {
        if (*v == '\0')
            return false;
        edge.link = v;
    }
    if (const char *v = std::getenv("ILLIXR_EDGE_SLO_MS")) {
        if (!parsePositiveDouble(v, edge.slo_ms))
            return false;
    }
    if (const char *v = std::getenv("ILLIXR_EDGE_BATCH")) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        edge.max_batch = n;
    }
    if (const char *v = std::getenv("ILLIXR_TAIL"))
        tail.enabled = std::string(v) != "0";
    if (const char *v = std::getenv("ILLIXR_TAIL_THRESHOLD_MS")) {
        if (!parsePositiveDouble(v, tail.threshold_ms))
            return false;
        tail.enabled = true;
    }
    if (const char *v = std::getenv("ILLIXR_TAIL_RING")) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n))
            return false;
        tail.ring = n;
        tail.enabled = true;
    }
    return true;
}

bool
SessionConfig::parseFlag(const std::string &arg)
{
    auto value = [&arg](const char *prefix, std::string &out) {
        const std::size_t n = std::strlen(prefix);
        if (arg.compare(0, n, prefix) != 0)
            return false;
        out = arg.substr(n);
        return true;
    };
    std::string v;
    if (value("--executor=", v))
        return parseExecutorKind(v, executor);
    if (value("--workers=", v)) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        pool_workers = n;
        return true;
    }
    if (value("--kernel-threads=", v)) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        kernel_threads = n;
        return true;
    }
    if (arg == "--deterministic") {
        deterministic = true;
        return true;
    }
    if (value("--seed=", v)) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n))
            return false;
        seed = static_cast<unsigned>(n);
        return true;
    }
    if (value("--fault-plan=", v))
        return parseFaultPlan(v, resilience.fault_plan);
    if (value("--scenario=", v)) {
        std::string error;
        if (!applyScenarioSpec(v, error)) {
            std::fprintf(stderr, "--scenario: %s\n", error.c_str());
            return false;
        }
        return true;
    }
    if (arg == "--resilience") {
        resilience.supervise = true;
        resilience.degrade = true;
        return true;
    }
    if (value("--sb-ring-cap=", v)) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        sb_ring_capacity = n;
        return true;
    }
    if (value("--sb-pool-chunk=", v)) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        sb_pool_chunk = n;
        return true;
    }
    if (arg == "--edge") {
        edge.enabled = true;
        return true;
    }
    if (value("--edge-link=", v)) {
        if (v.empty())
            return false;
        edge.enabled = true;
        edge.link = v;
        return true;
    }
    if (value("--edge-slo-ms=", v)) {
        if (!parsePositiveDouble(v, edge.slo_ms))
            return false;
        edge.enabled = true;
        return true;
    }
    if (value("--edge-batch=", v)) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n) || n == 0)
            return false;
        edge.enabled = true;
        edge.max_batch = n;
        return true;
    }
    if (arg == "--tail") {
        tail.enabled = true;
        return true;
    }
    if (value("--tail-threshold-ms=", v)) {
        if (!parsePositiveDouble(v, tail.threshold_ms))
            return false;
        tail.enabled = true;
        return true;
    }
    if (value("--tail-ring=", v)) {
        unsigned long n = 0;
        if (!parseUnsigned(v, n))
            return false;
        tail.ring = n;
        tail.enabled = true;
        return true;
    }
    return false;
}

bool
SessionConfig::applyScenario(const Scenario &s)
{
    scenario = s;
    if (s.duration_s > 0.0)
        duration = fromSeconds(s.duration_s);
    if (s.seed != 0)
        seed = s.seed;
    if (!s.fault_plan.empty()) {
        if (!parseFaultPlan(s.fault_plan, resilience.fault_plan))
            return false;
        resilience.supervise = true;
        resilience.degrade = true;
    }
    return true;
}

bool
SessionConfig::applyScenarioSpec(const std::string &spec,
                                 std::string &error)
{
    Scenario s;
    if (!Scenario::byName(spec, s)) {
        if (!Scenario::loadFile(spec, s, error))
            return false;
    }
    if (!applyScenario(s)) {
        error = "scenario '" + s.name + "': malformed fault plan '" +
                s.fault_plan + "'";
        return false;
    }
    return true;
}

SessionConfig::Parse
SessionConfig::fromEnvAndArgs(int argc, const char *const *argv)
{
    Parse parse;
    if (!parse.config.applyEnv()) {
        parse.ok = false;
        parse.error = "malformed ILLIXR_* environment override";
        return parse;
    }
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (parse.config.parseFlag(arg))
            continue;
        // A flag the parser owns but could not parse is an error, not
        // an "unparsed" passthrough: --seed=banana must not leak into
        // the tool's own flag handling looking legitimate.
        static const char *const kOwned[] = {
            "--executor=",    "--workers=",      "--kernel-threads=",
            "--seed=",        "--fault-plan=",   "--scenario=",
            "--sb-ring-cap=", "--sb-pool-chunk=", "--edge-link=",
            "--edge-slo-ms=", "--edge-batch=",   "--tail-threshold-ms=",
            "--tail-ring="};
        bool owned = false;
        for (const char *prefix : kOwned)
            owned = owned || arg.rfind(prefix, 0) == 0;
        if (owned) {
            parse.ok = false;
            parse.error = "malformed flag: " + arg;
            return parse;
        }
        parse.unparsed.push_back(arg);
    }
    return parse;
}

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

Session::Session(SessionConfig config) : config_(std::move(config)) {}

Session::~Session()
{
    requestStop();
    std::thread t;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        t = std::move(thread_);
    }
    if (t.joinable())
        t.join();
}

Session::State
Session::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

void
Session::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != State::Idle && state_ != State::Queued)
        throw std::logic_error("session '" + config_.name +
                               "' already started");
    state_ = State::Running;
    thread_ = std::thread([this] { runBody(); });
}

void
Session::requestStop()
{
    // Flag first, executor second; runBody() publishes the executor
    // first and re-checks the flag second. Whichever side loses the
    // race, the executor sees the stop request.
    std::lock_guard<std::mutex> lock(executor_mutex_);
    stop_requested_ = true;
    if (executor_)
        executor_->requestStop();
}

void
Session::stop()
{
    requestStop();
    wait();
}

void
Session::wait()
{
    std::thread t;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (state_ == State::Idle)
            throw std::logic_error("session '" + config_.name +
                                   "' was never started");
        cv_.wait(lock, [this] {
            return state_ == State::Finished || state_ == State::Evicted;
        });
        t = std::move(thread_);
    }
    if (t.joinable())
        t.join();
}

bool
Session::finished() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_ == State::Finished || state_ == State::Evicted;
}

const IntegratedResult &
Session::result()
{
    wait();
    std::lock_guard<std::mutex> lock(mutex_);
    if (error_)
        std::rethrow_exception(error_);
    if (state_ == State::Evicted)
        throw std::logic_error("session '" + config_.name +
                               "' was evicted before it ran");
    return result_;
}

void
Session::setOnFinished(std::function<void(Session &)> fn)
{
    std::lock_guard<std::mutex> lock(mutex_);
    on_finished_ = std::move(fn);
}

void
Session::markQueued()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != State::Idle)
        throw std::logic_error("session '" + config_.name +
                               "' already started");
    state_ = State::Queued;
}

bool
Session::markEvictedIfQueued()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != State::Queued)
        return false;
    state_ = State::Evicted;
    cv_.notify_all();
    return true;
}

void
Session::runBody()
{
    try {
        const IntegratedConfig &config = config_;
        const SystemTuning tuning;

        // --- Kernel pool: the ONLY process-wide state a session
        // touches. Width is a shared knob (kernel results are
        // bit-identical at any width, so sessions retuning it never
        // perturb each other's determinism); accounting is NOT shared
        // — the MetricsScope below routes this thread's kernel
        // launches into this session's registry, and every executor
        // invocation installs its own scope (invokeGuarded), so the
        // per-session kernel.* metrics never mix across tenants. ---
        KernelPool &kernels = KernelPool::instance();
        if (config.kernel_threads > 0)
            kernels.setWidth(config.kernel_threads);

        // --- Services ---
        Phonebook phonebook;
        auto switchboard = std::make_shared<Switchboard>();
        if (config.sb_ring_capacity > 0)
            switchboard->setDefaultRingCapacity(config.sb_ring_capacity);
        if (config.sb_pool_chunk > 0)
            switchboard->setPoolChunkEvents(config.sb_pool_chunk);
        phonebook.registerService(switchboard);

        auto metrics = std::make_shared<MetricsRegistry>();
        phonebook.registerService(metrics);
        switchboard->setMetrics(metrics.get());
        std::shared_ptr<TraceSink> sink;
        std::shared_ptr<TailMonitor> tail;
        if (config.trace) {
            sink = std::make_shared<TraceSink>();
            switchboard->setTraceSink(sink);
            if (config.tail.enabled) {
                TailConfig tail_cfg;
                tail_cfg.threshold_ms = config.tail.threshold_ms;
                tail_cfg.max_outliers = config.tail.max_outliers;
                tail = std::make_shared<TailMonitor>(tail_cfg,
                                                     metrics.get());
                if (config.tail.ring > 0)
                    sink->setRetention(config.tail.ring,
                                       config.tail.ring,
                                       config.tail.ring);
                sink->setTailMonitor(tail.get(),
                                     topics::kDisplayFrame);
            }
        }
        KernelPool::MetricsScope kernel_scope(metrics.get(), sink.get());

        DatasetConfig ds_cfg;
        ds_cfg.duration_s = toSeconds(config.duration) + 0.5;
        ds_cfg.image_width = config.camera_width;
        ds_cfg.image_height = config.camera_height;
        ds_cfg.camera_rate_hz = tuning.camera_hz;
        ds_cfg.imu_rate_hz = tuning.imu_hz;
        ds_cfg.preset = DatasetConfig::Preset::LabWalk;
        ds_cfg.seed = config.seed;
        ds_cfg.scenario = config.scenario;
        auto data =
            std::make_shared<PreloadedDataset>(ds_cfg, config.duration);
        phonebook.registerService(data);

        // --- Plugins (Table II components in the integrated config) ---
        AppConfig app_cfg;
        app_cfg.eye_width = config.eye_size;
        app_cfg.eye_height = config.eye_size;

        TimewarpParams tw_params;
        tw_params.fov_y_rad = app_cfg.fov_y_rad;

        // Resilience: installed before any plugin publishes so the
        // fault plan sees every event from the first one.
        std::unique_ptr<ResilienceContext> resilience =
            makeResilienceContext(config, *switchboard, metrics.get());
        if (resilience && resilience->injector()) {
            // Aliased, non-owning: the context owns the injector; the
            // phonebook entry just lets factory-made plugins (the
            // offloaded VIO's brownout feed) find it at construction.
            phonebook.registerService(std::shared_ptr<FaultInjector>(
                std::shared_ptr<FaultInjector>(),
                resilience->injector()));
        }

        CameraPlugin camera(phonebook, tuning);
        ImuPlugin imu(phonebook, tuning);
        std::unique_ptr<Plugin> vio_owned =
            config_.vio_factory
                ? config_.vio_factory(phonebook, tuning)
                : std::make_unique<VioPlugin>(phonebook, tuning);
        Plugin &vio = *vio_owned;
        IntegratorPlugin integrator(phonebook, tuning);
        ApplicationPlugin application(phonebook, tuning, config.app,
                                      app_cfg,
                                      config.adaptive_resolution);
        TimewarpPlugin timewarp(phonebook, tuning, tw_params);
        AudioEncoderPlugin audio_enc(phonebook, tuning);
        AudioPlaybackPlugin audio_play(phonebook, tuning);

        // --- Executor ---
        const PlatformModel platform =
            PlatformModel::get(config.platform);
        std::unique_ptr<SimScheduler> sim;
        std::unique_ptr<PoolExecutor> pool;
        ExecutorBase *executor = nullptr;
        if (config.executor == ExecutorKind::Pool) {
            PoolExecutorConfig pool_cfg;
            pool_cfg.workers = config.pool_workers;
            pool_cfg.deterministic = config.deterministic;
            pool_cfg.seed = config.seed;
            pool_cfg.platform = config.platform;
            pool = std::make_unique<PoolExecutor>(pool_cfg);
            executor = pool.get();
        } else {
            sim = std::make_unique<SimScheduler>(platform);
            executor = sim.get();
        }
        executor->setMetrics(metrics.get());
        executor->setPhonebook(&phonebook);
        if (sink)
            executor->setTraceSink(sink);
        executor->addPlugin(&camera);
        executor->addPlugin(&imu);
        executor->addPlugin(&vio);
        executor->addPlugin(&integrator);
        executor->addPlugin(&application);
        const Duration vsync = periodFromHz(tuning.display_hz);
        executor->addVsyncAlignedPlugin(&timewarp, vsync);
        executor->addPlugin(&audio_enc);
        executor->addPlugin(&audio_play);
        if (resilience) {
            resilience->attach(*executor);
            if (resilience->degradationPlugin())
                executor->addPlugin(resilience->degradationPlugin());
        }

        // Publish the executor for eviction; a stop requested before
        // this point lands now (requestStop() is one-way).
        {
            std::lock_guard<std::mutex> lock(executor_mutex_);
            executor_ = executor;
            if (stop_requested_)
                executor->requestStop();
        }

        executor->run(config.duration);

        {
            std::lock_guard<std::mutex> lock(executor_mutex_);
            executor_ = nullptr;
        }

        // --- Collect results ---
        IntegratedResult result;
        result.config = config;
        result.vsync = vsync;
        double total_host = 0.0;
        for (const std::string &name : executor->taskNames()) {
            const TaskStats &stats = executor->stats(name);
            result.tasks.emplace(name, stats);
            double host = 0.0;
            for (const InvocationRecord &rec : stats.records)
                host += rec.host_seconds;
            result.cpu_share[name] = host;
            total_host += host;
        }
        if (total_host > 0.0) {
            for (auto &[name, host] : result.cpu_share)
                host /= total_host;
        }

        result.target_hz["camera"] = tuning.camera_hz;
        result.target_hz["vio"] = tuning.camera_hz;
        result.target_hz["imu"] = tuning.imu_hz;
        result.target_hz["integrator"] = tuning.imu_hz;
        result.target_hz["application"] = tuning.display_hz;
        result.target_hz["timewarp"] = tuning.display_hz;
        result.target_hz["audio_encoding"] = tuning.audio_hz;
        result.target_hz["audio_playback"] = tuning.audio_hz;

        result.mtp = computeMtp(executor->stats("timewarp"),
                                timewarp.imuAgesMs(), vsync);

        result.lineage_stages = {topics::kCamera, topics::kImu,
                                 topics::kSlowPose, topics::kFastPose,
                                 topics::kSubmittedFrame};
        if (sink) {
            result.trace = sink;
            result.lineage_mtp =
                computeLineageMtp(*sink, vsync, topics::kDisplayFrame,
                                  result.lineage_stages);
        }
        if (tail) {
            // Detach before hand-off: the result owns both, but the
            // sink must never call into a monitor the caller may
            // release first.
            sink->setTailMonitor(nullptr, "");
            result.tail = tail;
        }
        // Sample the transport gauges (seqlock contention, pool
        // occupancy) into this session's registry before hand-off.
        switchboard->flushMetrics();
        result.metrics = metrics;
        const double cpu_util =
            pool ? pool->cpuUtilization() : sim->cpuUtilization();
        const double gpu_util =
            pool ? pool->gpuUtilization() : sim->gpuUtilization();
        metrics->gauge("run.cpu_utilization").set(cpu_util);
        metrics->gauge("run.gpu_utilization").set(gpu_util);

        result.utilization.cpu = cpu_util;
        result.utilization.gpu = gpu_util;
        // Memory traffic proxy: display + camera traffic dominates;
        // a weighted blend of unit utilizations (see DESIGN.md).
        result.utilization.memory =
            std::min(1.0, 0.55 * result.utilization.gpu +
                              0.35 * result.utilization.cpu + 0.10);
        result.power = computePower(platform, result.utilization);

        if (const std::vector<StampedPose> *traj = vio.vioTrajectory())
            result.vio_trajectory = *traj;
        vio.exportExtras(result.extra);
        result.extra["final_eye_resolution"] =
            static_cast<double>(application.currentEyeResolution());
        result.extra["min_eye_resolution"] =
            static_cast<double>(application.minEyeResolution());
        exportResilienceExtras(resilience.get(), result.extra);

        // The KernelPool's handle cache holds Counter/Histogram
        // pointers into this session's registry; evict them before
        // another session's registry can land at the same address.
        kernels.forgetMetrics(metrics.get());

        {
            std::lock_guard<std::mutex> lock(mutex_);
            result_ = std::move(result);
        }
    } catch (...) {
        std::lock_guard<std::mutex> lock(executor_mutex_);
        executor_ = nullptr;
        std::lock_guard<std::mutex> state_lock(mutex_);
        error_ = std::current_exception();
    }

    std::function<void(Session &)> on_finished;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        state_ = State::Finished;
        on_finished = on_finished_;
    }
    cv_.notify_all();
    if (on_finished)
        on_finished(*this);
}

// ---------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------

SessionManager::SessionManager(std::size_t max_concurrent)
    : max_concurrent_(std::max<std::size_t>(1, max_concurrent))
{
}

SessionManager::~SessionManager()
{
    drain();
}

std::shared_ptr<Session>
SessionManager::submit(SessionConfig config)
{
    auto session = std::make_shared<Session>(std::move(config));
    session->setOnFinished(
        [this](Session &s) { onSessionFinished(s); });
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_.size() < max_concurrent_) {
        startLocked(session);
    } else {
        session->markQueued();
        queued_.push_back(session);
    }
    return session;
}

bool
SessionManager::evict(const std::shared_ptr<Session> &session)
{
    if (!session)
        return false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = std::find(queued_.begin(), queued_.end(), session);
        if (it != queued_.end()) {
            queued_.erase(it);
            session->markEvictedIfQueued();
            cv_.notify_all();
            return true;
        }
        if (std::find(running_.begin(), running_.end(), session) ==
            running_.end())
            return false;
    }
    // Cooperative: the session finishes early through the normal path
    // and onSessionFinished() pumps the queue, so no bookkeeping here.
    session->requestStop();
    return true;
}

void
SessionManager::drain()
{
    std::vector<std::shared_ptr<Session>> to_join;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] {
            return queued_.empty() && running_.empty();
        });
        to_join.swap(to_join_);
    }
    // Join outside the lock: a finishing thread's callback takes it.
    for (const auto &session : to_join)
        session->wait();
}

std::size_t
SessionManager::runningCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return running_.size();
}

std::size_t
SessionManager::queuedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queued_.size();
}

std::uint64_t
SessionManager::admittedTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return admitted_;
}

void
SessionManager::startLocked(const std::shared_ptr<Session> &session)
{
    running_.push_back(session);
    to_join_.push_back(session);
    ++admitted_;
    session->start();
}

void
SessionManager::onSessionFinished(Session &session)
{
    // Runs on the finishing session's own thread.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find_if(
        running_.begin(), running_.end(),
        [&session](const std::shared_ptr<Session> &s) {
            return s.get() == &session;
        });
    if (it != running_.end())
        running_.erase(it);
    while (running_.size() < max_concurrent_ && !queued_.empty()) {
        std::shared_ptr<Session> next = std::move(queued_.front());
        queued_.pop_front();
        startLocked(next);
    }
    cv_.notify_all();
}

// ---------------------------------------------------------------------
// runIntegrated: the thin one-session wrapper
// ---------------------------------------------------------------------

IntegratedResult
runIntegrated(const IntegratedConfig &config)
{
    Session session{SessionConfig(config)};
    session.start();
    return session.result();
}

} // namespace illixr
