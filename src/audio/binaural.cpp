#include "audio/binaural.hpp"

#include "foundation/simd.hpp"
#include "runtime/parallel.hpp"

#include <cassert>
#include <cmath>

namespace illixr {

namespace {
/** Channels covered by the psychoacoustic filter: degrees 0 and 1. */
constexpr int kPsychoChannels = 4;
} // namespace

void
synthesizeHrir(const Vec3 &direction, double sample_rate_hz,
               std::size_t length, std::vector<double> &left,
               std::vector<double> &right)
{
    left.assign(length, 0.0);
    right.assign(length, 0.0);
    const Vec3 d = direction.normalized();

    // Interaural time difference (Woodworth): head radius ~8.75 cm.
    // Left ear at -y, right ear at +y in the ambisonic frame
    // (x forward, y left, z up) -> positive d.y means source on the
    // LEFT, reaching the left ear first.
    constexpr double head_radius = 0.0875;
    constexpr double speed_of_sound = 343.0;
    const double azimuth_sin = d.y; // Lateral component.
    const double itd =
        head_radius / speed_of_sound *
        (std::asin(std::max(-1.0, std::min(1.0, azimuth_sin))) +
         azimuth_sin);

    const double delay_left =
        0.5e-3 + (itd < 0.0 ? -itd : 0.0); // Contralateral delay.
    const double delay_right = 0.5e-3 + (itd > 0.0 ? itd : 0.0);

    // Head shadow: the far ear receives a low-passed, attenuated
    // signal. Model each ear as delayed impulse + exponential decay
    // whose time constant grows with shadowing.
    auto build = [&](std::vector<double> &h, double delay_s,
                     double shadow) {
        const double gain = 1.0 - 0.45 * shadow;
        const auto delay_taps = static_cast<std::size_t>(
            delay_s * sample_rate_hz);
        const double decay = 0.25 + 0.55 * shadow; // Smoothing factor.
        double state = 0.0;
        for (std::size_t i = 0; i < length; ++i) {
            const double impulse =
                (i == delay_taps) ? gain : 0.0;
            state = decay * state + (1.0 - decay) * impulse;
            // Direct + diffused tail.
            h[i] = (1.0 - shadow * 0.65) * impulse + shadow * state;
        }
    };
    const double shadow_left = std::max(0.0, -azimuth_sin);
    const double shadow_right = std::max(0.0, azimuth_sin);
    build(left, delay_left, shadow_left);
    build(right, delay_right, shadow_right);
}

std::array<Vec3, Binauralizer::kSpeakers>
Binauralizer::speakerDirections()
{
    const double inv = 1.0 / std::sqrt(3.0);
    std::array<Vec3, kSpeakers> dirs;
    int i = 0;
    for (int sx = -1; sx <= 1; sx += 2)
        for (int sy = -1; sy <= 1; sy += 2)
            for (int sz = -1; sz <= 1; sz += 2)
                dirs[i++] = Vec3(sx * inv, sy * inv, sz * inv);
    return dirs;
}

Binauralizer::Binauralizer(std::size_t block_size, double sample_rate_hz)
    : blockSize_(block_size)
{
    constexpr std::size_t hrir_len = 64;
    fftSize_ = nextPowerOfTwo(block_size + hrir_len - 1);

    const auto dirs = speakerDirections();
    for (int c = 0; c < kAmbisonicChannels; ++c) {
        filterLeft_[c].assign(fftSize_, Complex(0.0, 0.0));
        filterRight_[c].assign(fftSize_, Complex(0.0, 0.0));
    }

    // Fold the projection decode (gain = Y_c(speaker) / N) and the
    // per-speaker HRIRs into per-(channel, ear) time-domain filters,
    // then transform them once.
    std::array<std::vector<double>, kAmbisonicChannels> time_left;
    std::array<std::vector<double>, kAmbisonicChannels> time_right;
    for (int c = 0; c < kAmbisonicChannels; ++c) {
        time_left[c].assign(hrir_len, 0.0);
        time_right[c].assign(hrir_len, 0.0);
    }
    for (int s = 0; s < kSpeakers; ++s) {
        std::vector<double> hl, hr;
        synthesizeHrir(dirs[s], sample_rate_hz, hrir_len, hl, hr);
        const auto y = shEvaluate(dirs[s]);
        for (int c = 0; c < kAmbisonicChannels; ++c) {
            const double g = y[c] / kSpeakers;
            for (std::size_t i = 0; i < hrir_len; ++i) {
                time_left[c][i] += g * hl[i];
                time_right[c][i] += g * hr[i];
            }
        }
    }
    for (int c = 0; c < kAmbisonicChannels; ++c) {
        for (std::size_t i = 0; i < hrir_len; ++i) {
            filterLeft_[c][i] = Complex(time_left[c][i], 0.0);
            filterRight_[c][i] = Complex(time_right[c][i], 0.0);
        }
        fft(filterLeft_[c], false);
        fft(filterRight_[c], false);
    }

    overlapLeft_.assign(fftSize_ - block_size, 0.0);
    overlapRight_.assign(fftSize_ - block_size, 0.0);
}

StereoBlock
Binauralizer::process(const Soundfield &field)
{
    assert(field.block_size == blockSize_);

    std::vector<Complex> acc_left(fftSize_, Complex(0.0, 0.0));
    std::vector<Complex> acc_right(fftSize_, Complex(0.0, 0.0));

    // Per-channel forward transform + spectral product in parallel;
    // partial spectra combine in fixed channel order below, matching
    // the serial accumulation order bit-for-bit.
    std::vector<std::vector<Complex>> prod_left(kAmbisonicChannels);
    std::vector<std::vector<Complex>> prod_right(kAmbisonicChannels);
    parallelFor(
        "binaural_fir", 0,
        static_cast<std::size_t>(kAmbisonicChannels), 1,
        [&](std::size_t cb, std::size_t ce) {
            std::vector<Complex> buf(fftSize_);
            for (std::size_t c = cb; c < ce; ++c) {
                // One shared forward transform per soundfield channel.
                for (std::size_t i = 0; i < blockSize_; ++i)
                    buf[i] = Complex(field.channels[c][i], 0.0);
                for (std::size_t i = blockSize_; i < fftSize_; ++i)
                    buf[i] = Complex(0.0, 0.0);
                fft(buf, false);
                prod_left[c].resize(fftSize_);
                prod_right[c].resize(fftSize_);
                // Spectral FIR products, two complex bins per
                // Vec<double, 4>; complexMul matches std::complex
                // bit-for-bit (fftSize_ is a power of two >= 2, so
                // there is no odd tail).
                using simd::VecD4;
                const double *b =
                    reinterpret_cast<const double *>(buf.data());
                const double *fl = reinterpret_cast<const double *>(
                    filterLeft_[c].data());
                const double *fr = reinterpret_cast<const double *>(
                    filterRight_[c].data());
                double *pl =
                    reinterpret_cast<double *>(prod_left[c].data());
                double *pr =
                    reinterpret_cast<double *>(prod_right[c].data());
                for (std::size_t i = 0; i + 2 <= fftSize_; i += 2) {
                    const VecD4 s = VecD4::load(b + 2 * i);
                    simd::complexMul(s, VecD4::load(fl + 2 * i))
                        .store(pl + 2 * i);
                    simd::complexMul(s, VecD4::load(fr + 2 * i))
                        .store(pr + 2 * i);
                }
            }
        });
    // Fixed channel order per bin — the pre-SIMD serial accumulation
    // order, vectorized elementwise over bins.
    {
        using simd::VecD4;
        double *al = reinterpret_cast<double *>(acc_left.data());
        double *ar = reinterpret_cast<double *>(acc_right.data());
        for (int c = 0; c < kAmbisonicChannels; ++c) {
            const double *pl =
                reinterpret_cast<const double *>(prod_left[c].data());
            const double *pr =
                reinterpret_cast<const double *>(prod_right[c].data());
            for (std::size_t i = 0; i + 2 <= fftSize_; i += 2) {
                (VecD4::load(al + 2 * i) + VecD4::load(pl + 2 * i))
                    .store(al + 2 * i);
                (VecD4::load(ar + 2 * i) + VecD4::load(pr + 2 * i))
                    .store(ar + 2 * i);
            }
        }
    }
    fft(acc_left, true);
    fft(acc_right, true);

    StereoBlock out;
    out.left.assign(blockSize_, 0.0);
    out.right.assign(blockSize_, 0.0);
    for (std::size_t i = 0; i < blockSize_; ++i) {
        out.left[i] = acc_left[i].real() +
                      (i < overlapLeft_.size() ? overlapLeft_[i] : 0.0);
        out.right[i] =
            acc_right[i].real() +
            (i < overlapRight_.size() ? overlapRight_[i] : 0.0);
    }
    // Carry the convolution tails.
    const std::size_t tail = fftSize_ - blockSize_;
    std::vector<double> next_left(tail, 0.0), next_right(tail, 0.0);
    for (std::size_t i = 0; i < tail; ++i) {
        next_left[i] = acc_left[blockSize_ + i].real() +
                       (blockSize_ + i < overlapLeft_.size()
                            ? overlapLeft_[blockSize_ + i]
                            : 0.0);
        next_right[i] = acc_right[blockSize_ + i].real() +
                        (blockSize_ + i < overlapRight_.size()
                             ? overlapRight_[blockSize_ + i]
                             : 0.0);
    }
    overlapLeft_ = std::move(next_left);
    overlapRight_ = std::move(next_right);
    return out;
}

PsychoacousticFilter::PsychoacousticFilter(std::size_t block_size,
                                           double sample_rate_hz)
    : blockSize_(block_size)
{
    // Loudness-style equalizer: gentle low-shelf cut and presence
    // boost built as a 48-tap FIR via frequency sampling.
    const std::size_t taps = 48;
    const std::size_t nfft = 128;
    std::vector<Complex> response(nfft);
    for (std::size_t k = 0; k < nfft; ++k) {
        const double f =
            (k <= nfft / 2 ? k : nfft - k) * sample_rate_hz /
            static_cast<double>(nfft);
        // Equal-loudness-inspired: mild bass cut, 2-5 kHz emphasis.
        double gain = 1.0;
        if (f < 250.0)
            gain = 0.7 + 0.3 * (f / 250.0);
        else if (f > 2000.0 && f < 5000.0)
            gain = 1.2;
        else if (f > 12000.0)
            gain = 0.85;
        response[k] = Complex(gain, 0.0);
    }
    fft(response, true); // Back to time domain.
    std::vector<double> fir(taps);
    // Window the (circularly shifted) impulse response.
    const auto window = hannWindow(taps);
    for (std::size_t i = 0; i < taps; ++i) {
        const std::size_t src =
            (nfft - taps / 2 + i) % nfft; // Center the linear phase.
        fir[i] = response[src].real() * window[i];
    }
    // The optimization filter is applied to the omni and first-order
    // channels (the perceptually dominant ones); filtering the full
    // second-order set doubles the cost for marginal audible benefit.
    for (int c = 0; c < kPsychoChannels; ++c) {
        filters_.push_back(
            std::make_unique<FrequencyDomainFilter>(fir, block_size));
    }
}

void
PsychoacousticFilter::process(Soundfield &field)
{
    assert(field.block_size == blockSize_);
    for (int c = 0; c < kPsychoChannels; ++c)
        field.channels[c] = filters_[c]->process(field.channels[c]);
}

} // namespace illixr
