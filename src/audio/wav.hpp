/**
 * @file
 * Minimal 16-bit PCM WAV output, so the audio-pipeline examples can
 * produce listenable artifacts without external dependencies.
 */

#pragma once

#include <string>
#include <vector>

namespace illixr {

/**
 * Write a stereo 16-bit WAV file.
 *
 * @param left / right Samples in [-1, 1] (clipped), equal length.
 * @param sample_rate_hz e.g. 48000.
 * @return success.
 */
bool writeWavStereo(const std::vector<double> &left,
                    const std::vector<double> &right,
                    double sample_rate_hz, const std::string &path);

} // namespace illixr
