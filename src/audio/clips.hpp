/**
 * @file
 * Synthetic audio clips — the Freesound-dataset substitute
 * (paper §III-D: 48 kHz clips for audio encoding and playback).
 */

#pragma once

#include <cstddef>
#include <vector>

namespace illixr {

/** Kinds of synthesized test material. */
enum class ClipKind
{
    SpeechLike, ///< Amplitude-modulated band noise ("lecture" stand-in).
    Music,      ///< Harmonic chord progression ("radio" stand-in).
    Tone,       ///< Pure reference tone.
    Noise,      ///< White noise.
};

/**
 * Synthesize @p samples of mono audio at @p sample_rate_hz in
 * [-1, 1]. Deterministic for a given (kind, seed).
 */
std::vector<double> synthesizeClip(ClipKind kind, std::size_t samples,
                                   double sample_rate_hz,
                                   unsigned seed = 77);

} // namespace illixr
