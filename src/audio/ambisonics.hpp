/**
 * @file
 * Higher-order ambisonics (HOA) — the soundfield representation of
 * the audio pipeline (paper Table II: "Ambisonic encoding",
 * "Ambisonic manipulation" per libspatialaudio).
 *
 * Second-order ambisonics (9 channels), ACN channel ordering, SN3D
 * normalization. Soundfield rotation matrices are constructed
 * numerically by solving the exact linear system Y(R d) = M_l Y(d)
 * per degree l — SH rotation is linear, so a least-squares fit over
 * sample directions recovers the exact block matrices.
 */

#pragma once

#include "foundation/quat.hpp"
#include "foundation/vec.hpp"
#include "linalg/matrix.hpp"

#include <array>
#include <vector>

namespace illixr {

/** Ambisonic order used throughout the audio pipeline. */
constexpr int kAmbisonicOrder = 2;
/** Channel count: (order + 1)^2. */
constexpr int kAmbisonicChannels =
    (kAmbisonicOrder + 1) * (kAmbisonicOrder + 1);

/**
 * Real spherical harmonics up to order 2 at a unit direction, ACN
 * ordering with SN3D normalization.
 */
std::array<double, kAmbisonicChannels> shEvaluate(const Vec3 &direction);

/**
 * A block of multi-channel ambisonic audio.
 */
struct Soundfield
{
    std::size_t block_size = 0;
    /** channels[acn][sample]. */
    std::array<std::vector<double>, kAmbisonicChannels> channels;

    explicit Soundfield(std::size_t block = 0);

    void clear();
    void resize(std::size_t block);

    /** Accumulate another soundfield (equal block sizes). */
    void add(const Soundfield &other);

    /** Total energy across channels. */
    double energy() const;
};

/**
 * Encode a mono source block at a given direction into HOA
 * coefficients (plane-wave encoding).
 *
 * Gains are ramped per sample from @p direction_start to
 * @p direction_end (libspatialaudio-style interpolation, avoiding
 * zipper artifacts when the source or listener moves); passing the
 * same direction twice still performs the per-sample ramp, which is
 * the component's dominant cost (paper Table VII: encoding 81%).
 */
void encodeSource(const std::vector<double> &mono,
                  const Vec3 &direction_start, const Vec3 &direction_end,
                  Soundfield &out);

/** Convenience overload: static source. */
inline void
encodeSource(const std::vector<double> &mono, const Vec3 &direction,
             Soundfield &out)
{
    encodeSource(mono, direction, direction, out);
}

/**
 * Soundfield rotation operator for a given head orientation.
 */
class SoundfieldRotator
{
  public:
    /** Build the (block-diagonal) SH rotation for @p rotation. */
    explicit SoundfieldRotator(const Quat &rotation);

    /** Rotate a soundfield in place. */
    void apply(Soundfield &field) const;

    /** The 9x9 rotation matrix (block diagonal by degree). */
    const MatX &matrix() const { return matrix_; }

  private:
    MatX matrix_;
};

/**
 * Soundfield zoom (forward emphasis), the libspatialaudio
 * "zoom" manipulation: mixes the omni (W) and forward (Y_1^{0...})
 * components to emphasize sources ahead of the listener.
 *
 * @param amount in [-1, 1]; 0 is identity.
 */
void zoomSoundfield(Soundfield &field, double amount);

} // namespace illixr
