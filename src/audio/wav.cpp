#include "audio/wav.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace illixr {

namespace {

void
writeU32(std::FILE *f, std::uint32_t v)
{
    unsigned char b[4] = {static_cast<unsigned char>(v & 0xff),
                          static_cast<unsigned char>((v >> 8) & 0xff),
                          static_cast<unsigned char>((v >> 16) & 0xff),
                          static_cast<unsigned char>((v >> 24) & 0xff)};
    std::fwrite(b, 1, 4, f);
}

void
writeU16(std::FILE *f, std::uint16_t v)
{
    unsigned char b[2] = {static_cast<unsigned char>(v & 0xff),
                          static_cast<unsigned char>((v >> 8) & 0xff)};
    std::fwrite(b, 1, 2, f);
}

} // namespace

bool
writeWavStereo(const std::vector<double> &left,
               const std::vector<double> &right, double sample_rate_hz,
               const std::string &path)
{
    if (left.size() != right.size())
        return false;
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;

    const auto rate = static_cast<std::uint32_t>(sample_rate_hz);
    const std::uint32_t data_bytes =
        static_cast<std::uint32_t>(left.size()) * 2 * 2;

    std::fwrite("RIFF", 1, 4, f);
    writeU32(f, 36 + data_bytes);
    std::fwrite("WAVE", 1, 4, f);
    std::fwrite("fmt ", 1, 4, f);
    writeU32(f, 16);       // PCM chunk size.
    writeU16(f, 1);        // PCM format.
    writeU16(f, 2);        // Stereo.
    writeU32(f, rate);
    writeU32(f, rate * 4); // Byte rate.
    writeU16(f, 4);        // Block align.
    writeU16(f, 16);       // Bits per sample.
    std::fwrite("data", 1, 4, f);
    writeU32(f, data_bytes);

    for (std::size_t i = 0; i < left.size(); ++i) {
        const auto l = static_cast<std::int16_t>(
            std::clamp(left[i], -1.0, 1.0) * 32767.0);
        const auto r = static_cast<std::int16_t>(
            std::clamp(right[i], -1.0, 1.0) * 32767.0);
        writeU16(f, static_cast<std::uint16_t>(l));
        writeU16(f, static_cast<std::uint16_t>(r));
    }
    std::fclose(f);
    return true;
}

} // namespace illixr
