#include "audio/audio_pipeline.hpp"

#include <algorithm>
#include <cmath>

namespace illixr {

std::vector<std::int16_t>
toPcm16(const std::vector<double> &clip)
{
    std::vector<std::int16_t> out(clip.size());
    for (std::size_t i = 0; i < clip.size(); ++i) {
        const double v = std::clamp(clip[i], -1.0, 1.0);
        out[i] = static_cast<std::int16_t>(std::lround(v * 32767.0));
    }
    return out;
}

AudioEncoder::AudioEncoder(std::size_t block_size)
    : blockSize_(block_size)
{
}

void
AudioEncoder::addSource(AudioSource source)
{
    sources_.push_back(std::move(source));
}

Soundfield
AudioEncoder::encodeBlock(std::size_t index)
{
    Soundfield field(blockSize_);
    std::vector<double> mono(blockSize_);

    for (const AudioSource &src : sources_) {
        // --- Normalization: INT16 -> FP. ---
        {
            ScopedTask timer(profile_, "normalization");
            const std::size_t n = src.pcm.size();
            std::size_t s = (index * blockSize_) % n;
            for (std::size_t i = 0; i < blockSize_; ++i) {
                mono[i] = static_cast<double>(src.pcm[s]) / 32768.0;
                if (++s == n)
                    s = 0;
            }
        }
        // --- Encoding: sample-to-soundfield mapping. ---
        Soundfield encoded(blockSize_);
        {
            ScopedTask timer(profile_, "encoding");
            encodeSource(mono, src.direction, encoded);
        }
        // --- Summation: accumulate into the HOA soundfield. ---
        {
            ScopedTask timer(profile_, "summation");
            field.add(encoded);
        }
    }
    return field;
}

AudioPlayback::AudioPlayback(std::size_t block_size, double sample_rate_hz)
    : blockSize_(block_size), psycho_(block_size, sample_rate_hz),
      binaural_(block_size, sample_rate_hz)
{
}

StereoBlock
AudioPlayback::processBlock(const Soundfield &field,
                            const Quat &head_orientation,
                            double zoom_amount)
{
    Soundfield working = field;

    // --- Psychoacoustic optimization filter. ---
    {
        ScopedTask timer(profile_, "psychoacoustic_filter");
        psycho_.process(working);
    }
    // --- Rotation: counter-rotate by the head orientation. ---
    {
        ScopedTask timer(profile_, "rotation");
        SoundfieldRotator rotator(head_orientation.conjugate());
        rotator.apply(working);
    }
    // --- Zoom. ---
    {
        ScopedTask timer(profile_, "zoom");
        zoomSoundfield(working, zoom_amount);
    }
    // --- Binauralization. ---
    StereoBlock out;
    {
        ScopedTask timer(profile_, "binauralization");
        out = binaural_.process(working);
    }
    return out;
}

} // namespace illixr
