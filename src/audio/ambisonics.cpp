#include "audio/ambisonics.hpp"

#include "linalg/decomp.hpp"

#include <cassert>
#include <cmath>

namespace illixr {

std::array<double, kAmbisonicChannels>
shEvaluate(const Vec3 &direction)
{
    const Vec3 d = direction.normalized();
    const double x = d.x, y = d.y, z = d.z;
    const double s3 = std::sqrt(3.0);
    return {
        1.0,                       // ACN 0 : W
        y,                         // ACN 1 : Y_1^-1
        z,                         // ACN 2 : Y_1^0
        x,                         // ACN 3 : Y_1^1
        s3 * x * y,                // ACN 4 : Y_2^-2
        s3 * y * z,                // ACN 5 : Y_2^-1
        (3.0 * z * z - 1.0) / 2.0, // ACN 6 : Y_2^0
        s3 * x * z,                // ACN 7 : Y_2^1
        s3 * (x * x - y * y) / 2.0 // ACN 8 : Y_2^2
    };
}

Soundfield::Soundfield(std::size_t block)
{
    resize(block);
}

void
Soundfield::resize(std::size_t block)
{
    block_size = block;
    for (auto &ch : channels)
        ch.assign(block, 0.0);
}

void
Soundfield::clear()
{
    for (auto &ch : channels)
        std::fill(ch.begin(), ch.end(), 0.0);
}

void
Soundfield::add(const Soundfield &other)
{
    assert(block_size == other.block_size);
    for (int c = 0; c < kAmbisonicChannels; ++c)
        for (std::size_t i = 0; i < block_size; ++i)
            channels[c][i] += other.channels[c][i];
}

double
Soundfield::energy() const
{
    double acc = 0.0;
    for (const auto &ch : channels)
        for (double v : ch)
            acc += v * v;
    return acc;
}

void
encodeSource(const std::vector<double> &mono, const Vec3 &direction_start,
             const Vec3 &direction_end, Soundfield &out)
{
    assert(out.block_size == mono.size());
    const auto g0 = shEvaluate(direction_start);
    const auto g1 = shEvaluate(direction_end);
    const double inv_n =
        mono.size() > 1 ? 1.0 / static_cast<double>(mono.size() - 1) : 0.0;
    for (int c = 0; c < kAmbisonicChannels; ++c) {
        const double base = g0[c];
        const double slope = (g1[c] - g0[c]) * inv_n;
        double *dst = out.channels[c].data();
        // Per-sample gain ramp: dst += (base + slope * i) * mono[i].
        for (std::size_t i = 0; i < mono.size(); ++i)
            dst[i] += (base + slope * static_cast<double>(i)) * mono[i];
    }
}

namespace {

/** Well-spread sample directions for the SH-rotation solve. */
std::vector<Vec3>
sampleDirections()
{
    std::vector<Vec3> dirs = {
        {1, 0, 0},  {-1, 0, 0}, {0, 1, 0},
        {0, -1, 0}, {0, 0, 1},  {0, 0, -1},
    };
    const double inv = 1.0 / std::sqrt(3.0);
    for (int sx = -1; sx <= 1; sx += 2)
        for (int sy = -1; sy <= 1; sy += 2)
            for (int sz = -1; sz <= 1; sz += 2)
                dirs.push_back(Vec3(sx * inv, sy * inv, sz * inv));
    return dirs;
}

/**
 * Solve the degree-l rotation block M (dim x dim) from samples:
 * M Y_l(d) = Y_l(R d). Exact because SH rotation is linear and the
 * sampling is over-determined.
 */
MatX
solveBlock(int l, const Quat &rotation, const std::vector<Vec3> &dirs)
{
    const int dim = 2 * l + 1;
    const int offset = l * l;
    const std::size_t k = dirs.size();
    MatX a(k, dim), b(k, dim);
    for (std::size_t i = 0; i < k; ++i) {
        const auto y_src = shEvaluate(dirs[i]);
        const auto y_dst = shEvaluate(rotation.rotate(dirs[i]));
        for (int j = 0; j < dim; ++j) {
            a(i, j) = y_src[offset + j];
            b(i, j) = y_dst[offset + j];
        }
    }
    // Normal equations: (A^T A) M^T = A^T B.
    const MatX ata = a.transposeTimes(a);
    const MatX atb = a.transposeTimes(b);
    Cholesky chol(ata);
    assert(chol.ok());
    const MatX mt = chol.solve(atb);
    return mt.transpose();
}

} // namespace

SoundfieldRotator::SoundfieldRotator(const Quat &rotation)
{
    matrix_ = MatX::zero(kAmbisonicChannels, kAmbisonicChannels);
    matrix_(0, 0) = 1.0; // Degree 0 is rotation invariant.
    const auto dirs = sampleDirections();
    for (int l = 1; l <= kAmbisonicOrder; ++l) {
        const MatX block = solveBlock(l, rotation, dirs);
        matrix_.setBlock(l * l, l * l, block);
    }
}

void
SoundfieldRotator::apply(Soundfield &field) const
{
    std::array<double, kAmbisonicChannels> in;
    for (std::size_t i = 0; i < field.block_size; ++i) {
        for (int c = 0; c < kAmbisonicChannels; ++c)
            in[c] = field.channels[c][i];
        // Block-diagonal multiply (degree 0 passes through).
        for (int l = 1; l <= kAmbisonicOrder; ++l) {
            const int off = l * l;
            const int dim = 2 * l + 1;
            for (int r = 0; r < dim; ++r) {
                double acc = 0.0;
                for (int c = 0; c < dim; ++c)
                    acc += matrix_(off + r, off + c) * in[off + c];
                field.channels[off + r][i] = acc;
            }
        }
    }
}

void
zoomSoundfield(Soundfield &field, double amount)
{
    if (amount == 0.0)
        return;
    const double a = std::max(-1.0, std::min(1.0, amount));
    const double norm = 1.0 / (1.0 + std::fabs(a));
    // First-order zoom along +x (ACN 3); higher degrees are left
    // untouched (documented simplification of the full zoom matrix).
    double *w = field.channels[0].data();
    double *x = field.channels[3].data();
    for (std::size_t i = 0; i < field.block_size; ++i) {
        const double w_old = w[i];
        const double x_old = x[i];
        w[i] = (w_old + a * x_old) * norm;
        x[i] = (x_old + a * w_old) * norm;
    }
}

} // namespace illixr
