/**
 * @file
 * The audio pipeline components: encoding and playback, with task
 * timings matching paper Table VII.
 *
 * Encoding: int16 normalization, per-source ambisonic encoding, and
 * HOA soundfield summation. Playback: psychoacoustic filter,
 * pose-driven soundfield rotation, zoom, and binauralization.
 */

#pragma once

#include "audio/ambisonics.hpp"
#include "audio/binaural.hpp"
#include "foundation/pose.hpp"
#include "foundation/profile.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace illixr {

/** A positioned mono sound source with int16 PCM (sensor format). */
struct AudioSource
{
    std::vector<std::int16_t> pcm;
    Vec3 direction{1.0, 0.0, 0.0}; ///< Ambisonic frame: x fwd, y left.
};

/** Convert a float clip in [-1,1] to int16 PCM. */
std::vector<std::int16_t> toPcm16(const std::vector<double> &clip);

/**
 * Audio encoding component (Table VII: normalization, encoding,
 * summation).
 */
class AudioEncoder
{
  public:
    explicit AudioEncoder(std::size_t block_size);

    /** Add a source; all sources must be at least one block long. */
    void addSource(AudioSource source);

    std::size_t sourceCount() const { return sources_.size(); }
    std::size_t blockSize() const { return blockSize_; }

    /**
     * Encode block @p index (sources loop when exhausted) into an HOA
     * soundfield.
     */
    Soundfield encodeBlock(std::size_t index);

    const TaskProfile &profile() const { return profile_; }
    TaskProfile &profile() { return profile_; }

  private:
    std::size_t blockSize_;
    std::vector<AudioSource> sources_;
    TaskProfile profile_;
};

/**
 * Audio playback component (Table VII: psychoacoustic filter,
 * rotation, zoom, binauralization).
 */
class AudioPlayback
{
  public:
    AudioPlayback(std::size_t block_size, double sample_rate_hz = 48000.0);

    /**
     * Produce one stereo block from a soundfield given the listener's
     * head orientation.
     *
     * @param zoom_amount Forward-zoom control in [-1, 1].
     */
    StereoBlock processBlock(const Soundfield &field,
                             const Quat &head_orientation,
                             double zoom_amount = 0.0);

    std::size_t blockSize() const { return blockSize_; }

    const TaskProfile &profile() const { return profile_; }
    TaskProfile &profile() { return profile_; }

  private:
    std::size_t blockSize_;
    PsychoacousticFilter psycho_;
    Binauralizer binaural_;
    TaskProfile profile_;
};

} // namespace illixr
