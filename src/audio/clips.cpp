#include "audio/clips.hpp"

#include "foundation/rng.hpp"

#include <cmath>

namespace illixr {

std::vector<double>
synthesizeClip(ClipKind kind, std::size_t samples, double sample_rate_hz,
               unsigned seed)
{
    std::vector<double> out(samples, 0.0);
    Rng rng(seed);
    const double dt = 1.0 / sample_rate_hz;

    switch (kind) {
      case ClipKind::SpeechLike: {
        // Band-limited noise with syllable-rate amplitude modulation
        // and a wandering formant-like resonance.
        double lp1 = 0.0, lp2 = 0.0;
        for (std::size_t i = 0; i < samples; ++i) {
            const double t = i * dt;
            const double syllable =
                0.5 + 0.5 * std::sin(2.0 * M_PI * 3.3 * t) *
                          std::sin(2.0 * M_PI * 0.7 * t);
            const double formant =
                std::sin(2.0 * M_PI *
                         (180.0 + 80.0 * std::sin(2.0 * M_PI * 1.1 * t)) *
                         t);
            const double noise = rng.uniform(-1.0, 1.0);
            lp1 += 0.22 * (noise - lp1);
            lp2 += 0.22 * (lp1 - lp2);
            out[i] = 0.6 * syllable * (0.7 * lp2 * 3.0 + 0.3 * formant);
        }
        break;
      }
      case ClipKind::Music: {
        // Slow chord progression of detuned harmonics.
        const double roots[4] = {220.0, 174.6, 196.0, 146.8};
        for (std::size_t i = 0; i < samples; ++i) {
            const double t = i * dt;
            const int chord = static_cast<int>(t / 2.0) % 4;
            const double f0 = roots[chord];
            double v = 0.0;
            for (int h = 1; h <= 4; ++h)
                v += std::sin(2.0 * M_PI * f0 * h * t) / (h * h);
            v += 0.5 * std::sin(2.0 * M_PI * f0 * 1.5 * t);
            out[i] = 0.4 * v;
        }
        break;
      }
      case ClipKind::Tone: {
        for (std::size_t i = 0; i < samples; ++i)
            out[i] = 0.8 * std::sin(2.0 * M_PI * 440.0 * i * dt);
        break;
      }
      case ClipKind::Noise: {
        for (std::size_t i = 0; i < samples; ++i)
            out[i] = rng.uniform(-0.8, 0.8);
        break;
      }
    }
    return out;
}

} // namespace illixr
