/**
 * @file
 * Binauralization: HOA soundfield to stereo headphone feed via
 * ambisonic-domain binaural filters and synthetic HRTFs (paper
 * Table II: "Ambisonic manipulation, binauralization"; Table VII rows
 * psychoacoustic filter / binauralization).
 *
 * The binaural filters are precomputed in the ambisonic domain, as
 * libspatialaudio does: a virtual-loudspeaker decode to 8 cube-corner
 * speakers, each with a left/right head-related impulse response
 * (interaural-time-delay + head-shadow model), is folded into one
 * filter per (ambisonic channel, ear). At run time each soundfield
 * channel is transformed once (shared forward FFT), multiplied into
 * both ears' accumulated spectra, and two inverse FFTs produce the
 * stereo block (overlap-add).
 */

#pragma once

#include "audio/ambisonics.hpp"
#include "signal/convolution.hpp"

#include <array>
#include <memory>
#include <vector>

namespace illixr {

/** Stereo block. */
struct StereoBlock
{
    std::vector<double> left;
    std::vector<double> right;
};

/** Synthesize an HRIR pair for a source direction.
 *  @param sample_rate_hz e.g. 48000.
 *  @param length         Taps (power-of-two friendly, e.g. 64). */
void synthesizeHrir(const Vec3 &direction, double sample_rate_hz,
                    std::size_t length, std::vector<double> &left,
                    std::vector<double> &right);

/**
 * Streaming HOA binauralizer (ambisonic-domain filters).
 */
class Binauralizer
{
  public:
    /**
     * @param block_size     Samples per block (Table III: 1024).
     * @param sample_rate_hz Audio rate (Table III: 48 kHz).
     */
    Binauralizer(std::size_t block_size, double sample_rate_hz = 48000.0);

    /** Convolve one soundfield block to stereo. */
    StereoBlock process(const Soundfield &field);

    std::size_t blockSize() const { return blockSize_; }
    std::size_t fftSize() const { return fftSize_; }
    static constexpr int kSpeakers = 8;

    /** Virtual speaker directions (unit vectors). */
    static std::array<Vec3, kSpeakers> speakerDirections();

  private:
    std::size_t blockSize_;
    std::size_t fftSize_;
    /** Ambisonic-domain filter spectra [channel][bin], per ear. */
    std::array<std::vector<Complex>, kAmbisonicChannels> filterLeft_;
    std::array<std::vector<Complex>, kAmbisonicChannels> filterRight_;
    /** Overlap-add tails per ear. */
    std::vector<double> overlapLeft_;
    std::vector<double> overlapRight_;
};

/**
 * Psychoacoustic optimization filter: a fixed loudness-equalization
 * FIR applied in the frequency domain to every soundfield channel
 * before binauralization (the libspatialaudio psychoacoustic
 * optimizer analog).
 */
class PsychoacousticFilter
{
  public:
    PsychoacousticFilter(std::size_t block_size,
                         double sample_rate_hz = 48000.0);

    /** Filter a soundfield block in place. */
    void process(Soundfield &field);

    std::size_t blockSize() const { return blockSize_; }

  private:
    std::size_t blockSize_;
    std::vector<std::unique_ptr<FrequencyDomainFilter>> filters_;
};

} // namespace illixr
