/**
 * @file
 * Network link model for component offloading.
 *
 * The paper's §II footnote 2 describes work toward "networking, edge
 * and cloud work partitioning" with "a generalized offloading module
 * that any component can use". This module provides the substrate: a
 * stochastic link model (base latency + serialization delay + jitter)
 * with presets for the device-edge-cloud tiers the paper's §V-F
 * research direction targets.
 */

#pragma once

#include "foundation/rng.hpp"
#include "foundation/time.hpp"

#include <cstddef>
#include <string>

namespace illixr {

/** Link configuration. */
struct NetworkLink
{
    std::string name;
    double uplink_mbps = 100.0;
    double downlink_mbps = 100.0;
    double base_latency_ms = 2.0;   ///< One-way propagation + stack.
    double jitter_ms = 0.5;         ///< Std-dev of per-message jitter.
    double loss_rate = 0.0;         ///< Per-message loss probability.

    /** Wired edge server on the same LAN segment. */
    static NetworkLink edgeEthernet();
    /** Wi-Fi 6 to an edge server. */
    static NetworkLink wifi6();
    /** 5G to a near cloudlet. */
    static NetworkLink fiveG();
    /** LTE to a regional cloud. */
    static NetworkLink lteCloud();
};

/**
 * Stateful link simulator: computes per-message one-way delays with
 * deterministic (seeded) jitter and loss.
 */
class NetworkModel
{
  public:
    explicit NetworkModel(const NetworkLink &link, unsigned seed = 71);

    /**
     * One-way delay for a message of @p bytes.
     * @param uplink true for device->server, false for the return.
     * @return delay, or a negative value when the message is lost.
     */
    Duration transferDelay(std::size_t bytes, bool uplink);

    const NetworkLink &link() const { return link_; }

    std::size_t messagesSent() const { return sent_; }
    std::size_t messagesLost() const { return lost_; }

  private:
    NetworkLink link_;
    Rng rng_;
    std::size_t sent_ = 0;
    std::size_t lost_ = 0;
};

} // namespace illixr
