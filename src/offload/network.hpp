/**
 * @file
 * Network link model for component offloading.
 *
 * The paper's §II footnote 2 describes work toward "networking, edge
 * and cloud work partitioning" with "a generalized offloading module
 * that any component can use". This module provides the substrate: a
 * stochastic link model (base latency + serialization delay + jitter)
 * with presets for the device-edge-cloud tiers the paper's §V-F
 * research direction targets.
 */

#pragma once

#include "foundation/rng.hpp"
#include "foundation/time.hpp"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace illixr {

class MetricsRegistry;
class Counter;
class Histogram;

/** Link configuration. */
struct NetworkLink
{
    std::string name;
    double uplink_mbps = 100.0;
    double downlink_mbps = 100.0;
    double base_latency_ms = 2.0;   ///< One-way propagation + stack.
    double jitter_ms = 0.5;         ///< Std-dev of per-message jitter.
    double loss_rate = 0.0;         ///< Per-message loss probability.

    /** Wired edge server on the same LAN segment. */
    static NetworkLink edgeEthernet();
    /** Wi-Fi 6 to an edge server. */
    static NetworkLink wifi6();
    /** 5G to a near cloudlet. */
    static NetworkLink fiveG();
    /** LTE to a regional cloud. */
    static NetworkLink lteCloud();

    /**
     * Look up a preset by name: "ethernet"/"edge-ethernet", "wifi6",
     * "5g"/"5g-cloudlet", "lte"/"lte-cloud". @return success; @p out
     * is only written on a match.
     */
    static bool byName(const std::string &name, NetworkLink &out);
};

/**
 * Stateful link simulator: computes per-message one-way delays with
 * deterministic (seeded) jitter and loss.
 */
class NetworkModel
{
  public:
    explicit NetworkModel(const NetworkLink &link, unsigned seed = 71);

    /**
     * The per-client link seed of the determinism contract: a pure
     * mix of (session seed, client id), so every client of a
     * multi-client run draws an independent jitter/loss stream that
     * does not depend on admission order (DESIGN.md edge model).
     */
    static unsigned linkSeed(unsigned session_seed,
                             std::uint64_t client_id);

    /**
     * One-way delay for a message of @p bytes.
     * @param uplink true for device->server, false for the return.
     * @return delay, or std::nullopt when the message is lost.
     */
    std::optional<Duration> transferDelay(std::size_t bytes, bool uplink);

    /**
     * Record per-link traffic into @p metrics (nullptr to disable):
     * `net.<link>.sent` / `net.<link>.lost` counters and a
     * `net.<link>.delayed_ms` histogram of delivered one-way delays.
     * Handles are interned once, so the per-message cost is one
     * relaxed atomic (plus one histogram observe when delivered).
     */
    void setMetrics(MetricsRegistry *metrics);

    /**
     * Overlay a transient degradation (a brownout window) on the
     * link: @p extra_loss adds to the per-message loss probability
     * (clamped to 1), @p extra_latency_ms adds to every delivered
     * message's one-way delay. Stays until cleared or replaced.
     */
    void setDisturbance(double extra_loss, double extra_latency_ms);
    void clearDisturbance() { setDisturbance(0.0, 0.0); }
    bool disturbed() const
    {
        return extraLoss_ > 0.0 || extraLatencyMs_ > 0.0;
    }

    const NetworkLink &link() const { return link_; }

    std::size_t messagesSent() const { return sent_; }
    std::size_t messagesLost() const { return lost_; }

  private:
    NetworkLink link_;
    Rng rng_;
    std::size_t sent_ = 0;
    std::size_t lost_ = 0;
    double extraLoss_ = 0.0;      ///< Brownout loss overlay.
    double extraLatencyMs_ = 0.0; ///< Brownout latency overlay.
    Counter *sentCounter_ = nullptr;    ///< net.<link>.sent
    Counter *lostCounter_ = nullptr;    ///< net.<link>.lost
    Histogram *delayedMs_ = nullptr;    ///< net.<link>.delayed_ms
};

} // namespace illixr
