/**
 * @file
 * Offloaded head tracking: the VIO component executed on an edge /
 * cloud server over a modeled network link — the paper's §II
 * footnote 2 ("a local component can be easily swapped with a remote
 * one without modifying the rest of the system") realized through
 * the plugin interface.
 *
 * The plugin's *local* cost is only frame compression and bookkeeping
 * (the filter computation is excluded from the local platform via
 * Plugin::excludeHostSeconds and re-introduced as remote-server
 * latency), and every pose estimate is released onto the switchboard
 * only after uplink + remote-compute + downlink delays mature.
 */

#pragma once

#include "foundation/stats.hpp"
#include "offload/edge_service.hpp"
#include "offload/network.hpp"
#include "resilience/circuit_breaker.hpp"
#include "resilience/health_events.hpp"
#include "slam/imu_integrator.hpp"
#include "slam/msckf.hpp"
#include "xr/illixr_system.hpp"
#include "xr/plugins.hpp"

#include <deque>
#include <map>
#include <memory>

namespace illixr {

class FaultInjector;

/** Offload configuration. */
struct OffloadConfig
{
    NetworkLink link = NetworkLink::wifi6();
    /** Link RNG seed. For fleet clients derive it with
     *  NetworkModel::linkSeed(session seed, client id) so every
     *  client draws an independent, admission-order-free stream. */
    unsigned link_seed = 71;
    /** Remote-server speed relative to the reference desktop
     *  (virtual remote compute time = host seconds * this). */
    double server_scale = 0.8;
    /** Bytes per camera frame after on-device compression. */
    double compression_ratio = 0.25;

    /** Breaker guarding the remote path (see CircuitBreaker). */
    CircuitBreakerPolicy breaker;
    /** A delivered frame whose round trip exceeds this counts as a
     *  breaker failure (stale poses are as bad as lost ones). */
    double rtt_failure_ms = 150.0;

    /**
     * When set, frames are served by this edge server (shared by the
     * whole client fleet) instead of the standalone rtt model: the
     * plugin becomes a client stub — uplink, submit with a deadline
     * derived from the frame's capture time, poll, downlink — and
     * shed/rejected verdicts feed the breaker like losses do.
     */
    std::shared_ptr<EdgeService> edge;
    /** Stable client key on the edge server. */
    std::uint64_t client_id = 1;
    /** Pose-deadline budget from frame capture (edge mode). */
    double deadline_slo_ms = 80.0;
};

/**
 * Drop-in replacement for VioPlugin that runs the filter "remotely".
 *
 * A CircuitBreaker guards the remote path: consecutive lost or
 * over-deadline frames trip it Open and head tracking fails over to a
 * local RK4 IMU integrator (corrected by the last accepted remote
 * poses) until HalfOpen probes succeed and the link closes again.
 * Breaker transitions surface as HealthEvents on resilience.health.
 */
class OffloadedVioPlugin : public Plugin
{
  public:
    OffloadedVioPlugin(const Phonebook &pb, const SystemTuning &tuning,
                       const OffloadConfig &config);

    void iterate(TimePoint now) override;
    Duration period() const override
    {
        return periodFromHz(tuning_.camera_hz);
    }

    const std::vector<StampedPose> &trajectory() const
    {
        return trajectory_;
    }
    const std::vector<StampedPose> *vioTrajectory() const override
    {
        return &trajectory_;
    }
    void exportExtras(std::map<std::string, double> &extra) const override;

    /** Round-trip (capture to pose-available) latency series, ms. */
    const SampleSeries &roundTripMs() const { return roundTrip_; }

    std::size_t framesLost() const { return framesLost_; }
    const NetworkModel &network() const { return net_; }
    NetworkModel &network() { return net_; }

    /** Feed brownout windows (and only those) from a fault plan. */
    void setFaultInjector(const FaultInjector *injector)
    {
        injector_ = injector;
    }

    std::size_t circuitOpens() const { return breaker_.opens(); }
    CircuitBreaker::State breakerState() const { return breaker_.state(); }
    /** Poses produced by the local integrator while failed over. */
    std::size_t failoverPoses() const { return failoverPoses_; }

    /** Edge-mode verdict tallies (all zero in rtt mode). */
    std::size_t edgeServed() const { return edgeServed_; }
    std::size_t edgeShed() const { return edgeShed_; }
    std::size_t edgeRejected() const { return edgeRejected_; }

  private:
    struct PendingPose
    {
        TimePoint release = 0;
        std::shared_ptr<PoseEvent> event;
    };

    /** A frame submitted to the edge server, awaiting its verdict. */
    struct InflightFrame
    {
        std::shared_ptr<const CameraFrameEvent> cam;
        std::shared_ptr<PoseEvent> event;
        TimePoint deadline = 0;
    };

    void publishBreakerTransition(TimePoint now);
    void publishLocalPose(TimePoint now,
                          const std::shared_ptr<const CameraFrameEvent> &cam);
    void collectEdgeCompletions(TimePoint now);
    void submitToEdge(TimePoint now,
                      const std::shared_ptr<const CameraFrameEvent> &cam,
                      const ImuState &state, std::size_t frame_bytes);

    SystemTuning tuning_;
    OffloadConfig config_;
    std::shared_ptr<PreloadedDataset> data_;
    Switchboard::Reader<CameraFrameEvent> cameraReader_;
    Switchboard::Reader<ImuEvent> imuReader_;
    Switchboard::Writer<PoseEvent> slowPoseWriter_;
    Switchboard::Writer<HealthEvent> healthWriter_;
    std::unique_ptr<VioSystem> vio_;
    NetworkModel net_;
    std::deque<PendingPose> pending_;
    std::vector<StampedPose> trajectory_;
    SampleSeries roundTrip_;
    std::size_t framesLost_ = 0;
    bool initialized_ = false;

    CircuitBreaker breaker_;
    CircuitBreaker::State lastState_ = CircuitBreaker::State::Closed;
    ImuIntegrator fallback_; ///< Local failover integrator.
    std::size_t failoverPoses_ = 0;
    const FaultInjector *injector_ = nullptr;

    // Edge mode only.
    std::map<std::uint64_t, InflightFrame> inflight_;
    std::uint64_t nextSeq_ = 0;
    std::size_t edgeServed_ = 0;
    std::size_t edgeShed_ = 0;
    std::size_t edgeRejected_ = 0;
};

/**
 * Run the integrated system with the VIO offloaded over @p config's
 * link (same assembly as runIntegrated otherwise).
 */
IntegratedResult runIntegratedOffloaded(const IntegratedConfig &config,
                                        const OffloadConfig &offload);

} // namespace illixr
