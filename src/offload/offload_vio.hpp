/**
 * @file
 * Offloaded head tracking: the VIO component executed on an edge /
 * cloud server over a modeled network link — the paper's §II
 * footnote 2 ("a local component can be easily swapped with a remote
 * one without modifying the rest of the system") realized through
 * the plugin interface.
 *
 * The plugin's *local* cost is only frame compression and bookkeeping
 * (the filter computation is excluded from the local platform via
 * Plugin::excludeHostSeconds and re-introduced as remote-server
 * latency), and every pose estimate is released onto the switchboard
 * only after uplink + remote-compute + downlink delays mature.
 */

#pragma once

#include "foundation/stats.hpp"
#include "offload/network.hpp"
#include "slam/msckf.hpp"
#include "xr/illixr_system.hpp"
#include "xr/plugins.hpp"

#include <deque>
#include <memory>

namespace illixr {

/** Offload configuration. */
struct OffloadConfig
{
    NetworkLink link = NetworkLink::wifi6();
    /** Remote-server speed relative to the reference desktop
     *  (virtual remote compute time = host seconds * this). */
    double server_scale = 0.8;
    /** Bytes per camera frame after on-device compression. */
    double compression_ratio = 0.25;
};

/**
 * Drop-in replacement for VioPlugin that runs the filter "remotely".
 */
class OffloadedVioPlugin : public Plugin
{
  public:
    OffloadedVioPlugin(const Phonebook &pb, const SystemTuning &tuning,
                       const OffloadConfig &config);

    void iterate(TimePoint now) override;
    Duration period() const override
    {
        return periodFromHz(tuning_.camera_hz);
    }

    const std::vector<StampedPose> &trajectory() const
    {
        return trajectory_;
    }

    /** Round-trip (capture to pose-available) latency series, ms. */
    const SampleSeries &roundTripMs() const { return roundTrip_; }

    std::size_t framesLost() const { return framesLost_; }
    const NetworkModel &network() const { return net_; }

  private:
    struct PendingPose
    {
        TimePoint release = 0;
        std::shared_ptr<PoseEvent> event;
    };

    SystemTuning tuning_;
    OffloadConfig config_;
    std::shared_ptr<PreloadedDataset> data_;
    Switchboard::Reader<CameraFrameEvent> cameraReader_;
    Switchboard::Reader<ImuEvent> imuReader_;
    Switchboard::Writer<PoseEvent> slowPoseWriter_;
    std::unique_ptr<VioSystem> vio_;
    NetworkModel net_;
    std::deque<PendingPose> pending_;
    std::vector<StampedPose> trajectory_;
    SampleSeries roundTrip_;
    std::size_t framesLost_ = 0;
    bool initialized_ = false;
};

/**
 * Run the integrated system with the VIO offloaded over @p config's
 * link (same assembly as runIntegrated otherwise).
 */
IntegratedResult runIntegratedOffloaded(const IntegratedConfig &config,
                                        const OffloadConfig &offload);

} // namespace illixr
