#include "offload/edge_service.hpp"

namespace illixr {

const char *
edgeVerdictName(EdgeVerdict verdict)
{
    switch (verdict) {
    case EdgeVerdict::Served:
        return "served";
    case EdgeVerdict::Shed:
        return "shed";
    case EdgeVerdict::Rejected:
        return "rejected";
    }
    return "?";
}

} // namespace illixr
