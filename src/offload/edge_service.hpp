/**
 * @file
 * The client-facing edge-serving interface: what an offloaded
 * component needs from an edge server, and nothing else.
 *
 * The paper's §II footnote 2 calls for "a generalized offloading
 * module that any component can use"; this is its service half. The
 * interface lives in src/offload (the client layer) so that client
 * stubs — OffloadedVioPlugin above all — depend only on the contract,
 * while the actual multi-tenant server (src/edge/EdgeServer) depends
 * on this layer and plugs in from above. That keeps the dependency
 * arrow pointing one way: edge -> offload -> xr -> runtime.
 *
 * Time is the caller's virtual timeline: the service never reads a
 * clock. Clients stamp requests (arrival = when the uplink matured)
 * and pump() the server forward; this is what makes deterministic
 * replay of an entire client fleet possible.
 */

#pragma once

#include "foundation/time.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace illixr {

/** One offloaded VIO frame update, as the server sees it. */
struct EdgeRequest
{
    /** Stable client key. Identity, NOT admission order: the server
     *  must never key behavior on the order clients connected. */
    std::uint64_t client = 0;
    /** Per-client sequence number (monotonic). */
    std::uint64_t seq = 0;
    /** Capture timestamp of the frame — the lineage root the pose
     *  deadline is derived from. */
    TimePoint frame_time = 0;
    /** Server-side arrival: capture + client compression + uplink. */
    TimePoint arrival = 0;
    /** Absolute pose deadline (frame_time + the client's SLO budget).
     *  Work that cannot meet it is shed, never queued to death. */
    TimePoint deadline = 0;
    /** Compressed payload size, for accounting. */
    std::size_t bytes = 0;
};

/** What happened to a request. */
enum class EdgeVerdict
{
    Served,   ///< Fused into a batch and computed before its deadline.
    Shed,     ///< Dropped by admission control: deadline unmeetable.
    Rejected, ///< Refused outright (unknown client / queue full).
};

const char *edgeVerdictName(EdgeVerdict verdict);

/** Server-side outcome of one request, polled by its client. */
struct EdgeCompletion
{
    std::uint64_t client = 0;
    std::uint64_t seq = 0;
    EdgeVerdict verdict = EdgeVerdict::Served;
    /** When the response leaves the server (service completed or the
     *  shed/reject decision was made). The client adds its downlink. */
    TimePoint done = 0;
    /** Modeled service time of the batch this request rode in. */
    double service_ms = 0.0;
    /** How many same-window requests were fused into that batch. */
    std::uint32_t batch_size = 0;
    /** Digest of the fused MSCKF update computed for this request —
     *  bit-identical across kernel widths (the determinism pin). */
    std::uint64_t digest = 0;
};

/**
 * Abstract edge server, as seen by one client stub.
 *
 * Lifecycle: connect() once per client, submit() per frame, pump()
 * to advance the server to the client's current virtual time, poll()
 * to collect matured completions. All methods are thread-safe in
 * concrete implementations (many session threads share one server).
 */
class EdgeService
{
  public:
    virtual ~EdgeService() = default;

    /** Register @p client. @return false when the server is full or
     *  the key is already connected. */
    virtual bool connect(std::uint64_t client) = 0;

    /** Drop @p client and its queued work. */
    virtual void disconnect(std::uint64_t client) = 0;

    /**
     * Offer a request to admission control. @return false when the
     * request was rejected outright (no completion is produced);
     * admitted requests always produce exactly one completion, with
     * verdict Served or Shed.
     */
    virtual bool submit(const EdgeRequest &request) = 0;

    /** Advance the server's batch engine to virtual time @p now. */
    virtual void pump(TimePoint now) = 0;

    /** Collect (and clear) @p client's matured completions. */
    virtual std::vector<EdgeCompletion> poll(std::uint64_t client) = 0;
};

} // namespace illixr
