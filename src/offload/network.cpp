#include "offload/network.hpp"

#include <algorithm>

namespace illixr {

NetworkLink
NetworkLink::edgeEthernet()
{
    NetworkLink l;
    l.name = "edge-ethernet";
    l.uplink_mbps = 940.0;
    l.downlink_mbps = 940.0;
    l.base_latency_ms = 0.5;
    l.jitter_ms = 0.1;
    return l;
}

NetworkLink
NetworkLink::wifi6()
{
    NetworkLink l;
    l.name = "wifi6";
    l.uplink_mbps = 250.0;
    l.downlink_mbps = 400.0;
    l.base_latency_ms = 2.5;
    l.jitter_ms = 1.2;
    l.loss_rate = 0.002;
    return l;
}

NetworkLink
NetworkLink::fiveG()
{
    NetworkLink l;
    l.name = "5g-cloudlet";
    l.uplink_mbps = 80.0;
    l.downlink_mbps = 300.0;
    l.base_latency_ms = 8.0;
    l.jitter_ms = 3.0;
    l.loss_rate = 0.005;
    return l;
}

NetworkLink
NetworkLink::lteCloud()
{
    NetworkLink l;
    l.name = "lte-cloud";
    l.uplink_mbps = 20.0;
    l.downlink_mbps = 60.0;
    l.base_latency_ms = 25.0;
    l.jitter_ms = 8.0;
    l.loss_rate = 0.01;
    return l;
}

NetworkModel::NetworkModel(const NetworkLink &link, unsigned seed)
    : link_(link), rng_(seed)
{
}

void
NetworkModel::setDisturbance(double extra_loss, double extra_latency_ms)
{
    extraLoss_ = std::max(0.0, extra_loss);
    extraLatencyMs_ = std::max(0.0, extra_latency_ms);
}

Duration
NetworkModel::transferDelay(std::size_t bytes, bool uplink)
{
    ++sent_;
    const double loss =
        std::min(1.0, link_.loss_rate + extraLoss_);
    if (loss > 0.0 && rng_.uniform() < loss) {
        ++lost_;
        return -1;
    }
    const double mbps =
        uplink ? link_.uplink_mbps : link_.downlink_mbps;
    const double serialization_ms =
        static_cast<double>(bytes) * 8.0 / (mbps * 1000.0);
    const double jitter_ms =
        std::max(0.0, rng_.gaussian(0.0, link_.jitter_ms));
    const double total_ms = link_.base_latency_ms + serialization_ms +
                            jitter_ms + extraLatencyMs_;
    return fromSeconds(total_ms / 1000.0);
}

} // namespace illixr
