#include "offload/network.hpp"

#include "trace/metrics_registry.hpp"

#include <algorithm>

namespace illixr {

NetworkLink
NetworkLink::edgeEthernet()
{
    NetworkLink l;
    l.name = "edge-ethernet";
    l.uplink_mbps = 940.0;
    l.downlink_mbps = 940.0;
    l.base_latency_ms = 0.5;
    l.jitter_ms = 0.1;
    return l;
}

NetworkLink
NetworkLink::wifi6()
{
    NetworkLink l;
    l.name = "wifi6";
    l.uplink_mbps = 250.0;
    l.downlink_mbps = 400.0;
    l.base_latency_ms = 2.5;
    l.jitter_ms = 1.2;
    l.loss_rate = 0.002;
    return l;
}

NetworkLink
NetworkLink::fiveG()
{
    NetworkLink l;
    l.name = "5g-cloudlet";
    l.uplink_mbps = 80.0;
    l.downlink_mbps = 300.0;
    l.base_latency_ms = 8.0;
    l.jitter_ms = 3.0;
    l.loss_rate = 0.005;
    return l;
}

NetworkLink
NetworkLink::lteCloud()
{
    NetworkLink l;
    l.name = "lte-cloud";
    l.uplink_mbps = 20.0;
    l.downlink_mbps = 60.0;
    l.base_latency_ms = 25.0;
    l.jitter_ms = 8.0;
    l.loss_rate = 0.01;
    return l;
}

bool
NetworkLink::byName(const std::string &name, NetworkLink &out)
{
    if (name == "ethernet" || name == "edge-ethernet") {
        out = edgeEthernet();
        return true;
    }
    if (name == "wifi6") {
        out = wifi6();
        return true;
    }
    if (name == "5g" || name == "5g-cloudlet") {
        out = fiveG();
        return true;
    }
    if (name == "lte" || name == "lte-cloud") {
        out = lteCloud();
        return true;
    }
    return false;
}

NetworkModel::NetworkModel(const NetworkLink &link, unsigned seed)
    : link_(link), rng_(seed)
{
}

unsigned
NetworkModel::linkSeed(unsigned session_seed, std::uint64_t client_id)
{
    // splitmix64-style finalizer over the (seed, client) pair: every
    // client gets an independent stream, and the mapping is a pure
    // function — no process-global counter, no admission-order
    // dependence.
    std::uint64_t z = (static_cast<std::uint64_t>(session_seed) << 32) ^
                      (client_id + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    // Avoid seed 0 degenerating with xoshiro's splitmix expansion of
    // an all-zero state being fine but keep the stream distinct.
    const unsigned seed = static_cast<unsigned>(z ^ (z >> 32));
    return seed == 0 ? 0x9e3779b9u : seed;
}

void
NetworkModel::setMetrics(MetricsRegistry *metrics)
{
    if (!metrics) {
        sentCounter_ = nullptr;
        lostCounter_ = nullptr;
        delayedMs_ = nullptr;
        return;
    }
    const std::string prefix = "net." + link_.name + ".";
    sentCounter_ = &metrics->counter(prefix + "sent");
    lostCounter_ = &metrics->counter(prefix + "lost");
    delayedMs_ = &metrics->histogram(prefix + "delayed_ms");
}

void
NetworkModel::setDisturbance(double extra_loss, double extra_latency_ms)
{
    extraLoss_ = std::max(0.0, extra_loss);
    extraLatencyMs_ = std::max(0.0, extra_latency_ms);
}

std::optional<Duration>
NetworkModel::transferDelay(std::size_t bytes, bool uplink)
{
    ++sent_;
    if (sentCounter_)
        sentCounter_->add();
    const double loss =
        std::min(1.0, link_.loss_rate + extraLoss_);
    if (loss > 0.0 && rng_.uniform() < loss) {
        ++lost_;
        if (lostCounter_)
            lostCounter_->add();
        return std::nullopt;
    }
    const double mbps =
        uplink ? link_.uplink_mbps : link_.downlink_mbps;
    const double serialization_ms =
        static_cast<double>(bytes) * 8.0 / (mbps * 1000.0);
    const double jitter_ms =
        std::max(0.0, rng_.gaussian(0.0, link_.jitter_ms));
    const double total_ms = link_.base_latency_ms + serialization_ms +
                            jitter_ms + extraLatencyMs_;
    if (delayedMs_)
        delayedMs_->observe(total_ms);
    return fromSeconds(total_ms / 1000.0);
}

} // namespace illixr
