#include "offload/offload_vio.hpp"

#include "foundation/profile.hpp"
#include "resilience/fault_injector.hpp"
#include "xr/session.hpp"

namespace illixr {

OffloadedVioPlugin::OffloadedVioPlugin(const Phonebook &pb,
                                       const SystemTuning &tuning,
                                       const OffloadConfig &config)
    : Plugin("vio"), tuning_(tuning), config_(config),
      data_(pb.lookup<PreloadedDataset>()),
      cameraReader_(
          pb.lookup<Switchboard>()->reader<CameraFrameEvent>(topics::kCamera)),
      imuReader_(pb.lookup<Switchboard>()->reader<ImuEvent>(topics::kImu)),
      slowPoseWriter_(
          pb.lookup<Switchboard>()->writer<PoseEvent>(topics::kSlowPose)),
      healthWriter_(
          pb.lookup<Switchboard>()->writer<HealthEvent>(topics::kHealth)),
      net_(config.link, config.link_seed), breaker_(config.breaker)
{
    MsckfParams params;
    params.imu_noise = data_->dataset.config().imu_noise;
    TrackerParams tracker;
    tracker.max_features = 80;
    vio_ = std::make_unique<VioSystem>(params, tracker,
                                       data_->dataset.rig());

    // Self-wire from the phonebook (both are registered by Session
    // before the vio_factory runs; standalone assemblies may lack
    // them, hence the has<> guards).
    if (pb.has<MetricsRegistry>())
        net_.setMetrics(pb.lookup<MetricsRegistry>().get());
    if (pb.has<FaultInjector>())
        injector_ = pb.lookup<FaultInjector>().get();
    if (config_.edge)
        config_.edge->connect(config_.client_id);
}

void
OffloadedVioPlugin::publishBreakerTransition(TimePoint now)
{
    const CircuitBreaker::State state = breaker_.state();
    if (state == lastState_)
        return;
    lastState_ = state;
    auto ev = healthWriter_.make();
    ev->time = now;
    ev->task = name();
    ev->detail = CircuitBreaker::stateName(state);
    switch (state) {
    case CircuitBreaker::State::Open:
        ev->kind = HealthKind::CircuitOpen;
        break;
    case CircuitBreaker::State::HalfOpen:
        ev->kind = HealthKind::CircuitHalfOpen;
        break;
    case CircuitBreaker::State::Closed:
        ev->kind = HealthKind::CircuitClosed;
        break;
    }
    healthWriter_.put(std::move(ev));
}

void
OffloadedVioPlugin::publishLocalPose(
    TimePoint now, const std::shared_ptr<const CameraFrameEvent> &cam)
{
    (void)now;
    if (!fallback_.initialized())
        return;
    const ImuState state = fallback_.state();
    auto out = slowPoseWriter_.make();
    out->time = cam->time;
    out->state = state;
    out->parents = {cam->trace};
    slowPoseWriter_.put(std::move(out));
    trajectory_.push_back({cam->time, state.pose()});
    ++failoverPoses_;
}

void
OffloadedVioPlugin::collectEdgeCompletions(TimePoint now)
{
    config_.edge->pump(now);
    for (const EdgeCompletion &c : config_.edge->poll(config_.client_id)) {
        auto it = inflight_.find(c.seq);
        if (it == inflight_.end())
            continue;
        InflightFrame frame = std::move(it->second);
        inflight_.erase(it);

        if (c.verdict != EdgeVerdict::Served) {
            if (c.verdict == EdgeVerdict::Shed)
                ++edgeShed_;
            else
                ++edgeRejected_;
            breaker_.recordFailure(now);
            publishBreakerTransition(now);
            publishLocalPose(now, frame.cam);
            continue;
        }

        ++edgeServed_;
        const std::optional<Duration> down = net_.transferDelay(256, false);
        if (!down) {
            ++framesLost_; // Response lost on the downlink.
            breaker_.recordFailure(now);
            publishBreakerTransition(now);
            publishLocalPose(now, frame.cam);
            continue;
        }

        // Judge staleness on the modeled release time, not on when
        // this (camera-period-grained) poll happened to run.
        const TimePoint release = c.done + *down;
        if (release > frame.deadline)
            breaker_.recordFailure(now);
        else
            breaker_.recordSuccess(now);
        publishBreakerTransition(now);

        trajectory_.push_back(
            {frame.cam->time, frame.event->state.pose()});
        roundTrip_.add(toMilliseconds(release - frame.cam->time));
        pending_.push_back({std::max(release, now),
                            std::move(frame.event)});
    }
}

void
OffloadedVioPlugin::submitToEdge(
    TimePoint now, const std::shared_ptr<const CameraFrameEvent> &cam,
    const ImuState &state, std::size_t frame_bytes)
{
    const std::optional<Duration> up =
        net_.transferDelay(frame_bytes, true);
    if (!up) {
        ++framesLost_; // Frame lost on the uplink.
        breaker_.recordFailure(now);
        publishBreakerTransition(now);
        publishLocalPose(now, cam);
        return;
    }

    EdgeRequest req;
    req.client = config_.client_id;
    req.seq = nextSeq_++;
    req.frame_time = cam->time;
    req.arrival = now + *up;
    req.deadline =
        cam->time + fromSeconds(config_.deadline_slo_ms / 1000.0);
    req.bytes = frame_bytes;

    auto out = slowPoseWriter_.make();
    out->time = cam->time;
    out->state = state;
    out->parents = {cam->trace};

    if (!config_.edge->submit(req)) {
        // Rejected outright (queue full): no completion will come.
        ++edgeRejected_;
        breaker_.recordFailure(now);
        publishBreakerTransition(now);
        publishLocalPose(now, cam);
        return;
    }
    inflight_.emplace(req.seq,
                      InflightFrame{cam, std::move(out), req.deadline});
}

void
OffloadedVioPlugin::iterate(TimePoint now)
{
    if (!initialized_) {
        ImuState init;
        init.time = 0;
        const Pose p0 = data_->dataset.groundTruthPose(0);
        init.orientation = p0.orientation;
        init.position = p0.position;
        init.velocity = data_->dataset.trajectory().velocity(0.0);
        vio_->initialize(init);
        fallback_.correct(init);
        initialized_ = true;
    }

    // Apply (or clear) the fault plan's brownout window on the link.
    if (injector_) {
        if (const BrownoutWindow *w = injector_->brownoutAt(now))
            net_.setDisturbance(w->extra_loss, w->extra_latency_ms);
        else if (net_.disturbed())
            net_.clearDisturbance();
    }

    // Edge mode: advance the shared server to this client's time and
    // resolve verdicts before releasing poses, so a completion that
    // matured during the last camera period is published this tick.
    if (config_.edge)
        collectEdgeCompletions(now);

    // Release matured remote results onto the switchboard, re-basing
    // the local fallback integrator on each accepted remote pose so a
    // later failover starts from the freshest corrected state.
    while (!pending_.empty() && pending_.front().release <= now) {
        fallback_.correct(pending_.front().event->state);
        slowPoseWriter_.put(std::move(pending_.front().event));
        pending_.pop_front();
    }

    // Stream sensors to the "server" (the IMU messages are small and
    // folded into the frame's uplink accounting). The fallback
    // integrator shadows the stream so it is always ready to serve.
    while (auto imu = imuReader_.pop()) {
        vio_->addImu(imu->sample);
        fallback_.addSample(imu->sample);
    }

    while (auto cam = cameraReader_.pop()) {
        if (!breaker_.allow(now)) {
            // Failed over: local integrator serves head tracking
            // while the link is considered down.
            publishLocalPose(now, cam);
            continue;
        }
        publishBreakerTransition(now); // Open -> HalfOpen probe.

        // The filter computation happens on the remote server: run it
        // here for the real result, but exclude its host cost from
        // the local platform and model it as remote latency instead.
        const double t0 = hostTimeSeconds();
        const ImuState &state = vio_->processFrame(
            cam->time, std::shared_ptr<const ImageF>(cam, &cam->image));
        const double remote_host_s = hostTimeSeconds() - t0;
        excludeHostSeconds(remote_host_s);

        const std::size_t frame_bytes = static_cast<std::size_t>(
            static_cast<double>(cam->image.pixelCount()) *
            config_.compression_ratio);
        if (config_.edge) {
            submitToEdge(now, cam, state, frame_bytes);
            continue;
        }
        const std::optional<Duration> up =
            net_.transferDelay(frame_bytes, true);
        const std::optional<Duration> down =
            net_.transferDelay(256, false);
        if (!up || !down) {
            ++framesLost_; // Message lost; no pose update this frame.
            breaker_.recordFailure(now);
            publishBreakerTransition(now);
            // Keep tracking through the loss with the local pose.
            publishLocalPose(now, cam);
            continue;
        }
        const Duration remote_compute =
            fromSeconds(remote_host_s * config_.server_scale);
        const Duration rtt = *up + remote_compute + *down;
        if (toMilliseconds(rtt) > config_.rtt_failure_ms) {
            // Delivered but too stale to steer reprojection with.
            breaker_.recordFailure(now);
        } else {
            breaker_.recordSuccess(now);
        }
        publishBreakerTransition(now);

        auto out = slowPoseWriter_.make();
        out->time = cam->time;
        out->state = state;
        // The pose is released in a *later* invocation than the one
        // that consumed its inputs, so lineage must be pinned
        // explicitly rather than inherited from the releasing scope.
        out->parents = {cam->trace};
        pending_.push_back({now + rtt, out});
        trajectory_.push_back({cam->time, state.pose()});
        roundTrip_.add(toMilliseconds((now - cam->time) + rtt));
    }
}

void
OffloadedVioPlugin::exportExtras(std::map<std::string, double> &extra) const
{
    extra["pose_round_trip_ms"] = roundTrip_.mean();
    extra["frames_lost"] = static_cast<double>(framesLost_);
    extra["circuit_opens"] = static_cast<double>(breaker_.opens());
    extra["failover_poses"] = static_cast<double>(failoverPoses_);
    if (config_.edge) {
        extra["edge_served"] = static_cast<double>(edgeServed_);
        extra["edge_shed"] = static_cast<double>(edgeShed_);
        extra["edge_rejected"] = static_cast<double>(edgeRejected_);
    }
}

IntegratedResult
runIntegratedOffloaded(const IntegratedConfig &config,
                       const OffloadConfig &offload)
{
    SessionConfig sc{config};
    sc.name = "offload";
    sc.vio_factory = [offload](const Phonebook &pb,
                               const SystemTuning &tuning) {
        return std::make_unique<OffloadedVioPlugin>(pb, tuning, offload);
    };
    Session session{std::move(sc)};
    session.start();
    return session.result();
}

} // namespace illixr
