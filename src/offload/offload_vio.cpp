#include "offload/offload_vio.hpp"

#include "foundation/profile.hpp"
#include "metrics/mtp.hpp"
#include "resilience/fault_injector.hpp"
#include "runtime/pool_executor.hpp"
#include "xr/illixr_system.hpp"

namespace illixr {

OffloadedVioPlugin::OffloadedVioPlugin(const Phonebook &pb,
                                       const SystemTuning &tuning,
                                       const OffloadConfig &config)
    : Plugin("vio"), tuning_(tuning), config_(config),
      data_(pb.lookup<PreloadedDataset>()),
      cameraReader_(
          pb.lookup<Switchboard>()->reader<CameraFrameEvent>(topics::kCamera)),
      imuReader_(pb.lookup<Switchboard>()->reader<ImuEvent>(topics::kImu)),
      slowPoseWriter_(
          pb.lookup<Switchboard>()->writer<PoseEvent>(topics::kSlowPose)),
      healthWriter_(
          pb.lookup<Switchboard>()->writer<HealthEvent>(topics::kHealth)),
      net_(config.link), breaker_(config.breaker)
{
    MsckfParams params;
    params.imu_noise = data_->dataset.config().imu_noise;
    TrackerParams tracker;
    tracker.max_features = 80;
    vio_ = std::make_unique<VioSystem>(params, tracker,
                                       data_->dataset.rig());
}

void
OffloadedVioPlugin::publishBreakerTransition(TimePoint now)
{
    const CircuitBreaker::State state = breaker_.state();
    if (state == lastState_)
        return;
    lastState_ = state;
    auto ev = healthWriter_.make();
    ev->time = now;
    ev->task = name();
    ev->detail = CircuitBreaker::stateName(state);
    switch (state) {
    case CircuitBreaker::State::Open:
        ev->kind = HealthKind::CircuitOpen;
        break;
    case CircuitBreaker::State::HalfOpen:
        ev->kind = HealthKind::CircuitHalfOpen;
        break;
    case CircuitBreaker::State::Closed:
        ev->kind = HealthKind::CircuitClosed;
        break;
    }
    healthWriter_.put(std::move(ev));
}

void
OffloadedVioPlugin::publishLocalPose(
    TimePoint now, const std::shared_ptr<const CameraFrameEvent> &cam)
{
    (void)now;
    if (!fallback_.initialized())
        return;
    const ImuState state = fallback_.state();
    auto out = slowPoseWriter_.make();
    out->time = cam->time;
    out->state = state;
    out->parents = {cam->trace};
    slowPoseWriter_.put(std::move(out));
    trajectory_.push_back({cam->time, state.pose()});
    ++failoverPoses_;
}

void
OffloadedVioPlugin::iterate(TimePoint now)
{
    if (!initialized_) {
        ImuState init;
        init.time = 0;
        const Pose p0 = data_->dataset.groundTruthPose(0);
        init.orientation = p0.orientation;
        init.position = p0.position;
        init.velocity = data_->dataset.trajectory().velocity(0.0);
        vio_->initialize(init);
        fallback_.correct(init);
        initialized_ = true;
    }

    // Apply (or clear) the fault plan's brownout window on the link.
    if (injector_) {
        if (const BrownoutWindow *w = injector_->brownoutAt(now))
            net_.setDisturbance(w->extra_loss, w->extra_latency_ms);
        else if (net_.disturbed())
            net_.clearDisturbance();
    }

    // Release matured remote results onto the switchboard, re-basing
    // the local fallback integrator on each accepted remote pose so a
    // later failover starts from the freshest corrected state.
    while (!pending_.empty() && pending_.front().release <= now) {
        fallback_.correct(pending_.front().event->state);
        slowPoseWriter_.put(std::move(pending_.front().event));
        pending_.pop_front();
    }

    // Stream sensors to the "server" (the IMU messages are small and
    // folded into the frame's uplink accounting). The fallback
    // integrator shadows the stream so it is always ready to serve.
    while (auto imu = imuReader_.pop()) {
        vio_->addImu(imu->sample);
        fallback_.addSample(imu->sample);
    }

    while (auto cam = cameraReader_.pop()) {
        if (!breaker_.allow(now)) {
            // Failed over: local integrator serves head tracking
            // while the link is considered down.
            publishLocalPose(now, cam);
            continue;
        }
        publishBreakerTransition(now); // Open -> HalfOpen probe.

        // The filter computation happens on the remote server: run it
        // here for the real result, but exclude its host cost from
        // the local platform and model it as remote latency instead.
        const double t0 = hostTimeSeconds();
        const ImuState &state = vio_->processFrame(
            cam->time, std::shared_ptr<const ImageF>(cam, &cam->image));
        const double remote_host_s = hostTimeSeconds() - t0;
        excludeHostSeconds(remote_host_s);

        const std::size_t frame_bytes = static_cast<std::size_t>(
            static_cast<double>(cam->image.pixelCount()) *
            config_.compression_ratio);
        const Duration up = net_.transferDelay(frame_bytes, true);
        const Duration down = net_.transferDelay(256, false);
        if (up < 0 || down < 0) {
            ++framesLost_; // Message lost; no pose update this frame.
            breaker_.recordFailure(now);
            publishBreakerTransition(now);
            // Keep tracking through the loss with the local pose.
            publishLocalPose(now, cam);
            continue;
        }
        const Duration remote_compute =
            fromSeconds(remote_host_s * config_.server_scale);
        const Duration rtt = up + remote_compute + down;
        if (toMilliseconds(rtt) > config_.rtt_failure_ms) {
            // Delivered but too stale to steer reprojection with.
            breaker_.recordFailure(now);
        } else {
            breaker_.recordSuccess(now);
        }
        publishBreakerTransition(now);

        auto out = slowPoseWriter_.make();
        out->time = cam->time;
        out->state = state;
        // The pose is released in a *later* invocation than the one
        // that consumed its inputs, so lineage must be pinned
        // explicitly rather than inherited from the releasing scope.
        out->parents = {cam->trace};
        pending_.push_back({now + rtt, out});
        trajectory_.push_back({cam->time, state.pose()});
        roundTrip_.add(toMilliseconds((now - cam->time) + rtt));
    }
}

IntegratedResult
runIntegratedOffloaded(const IntegratedConfig &config,
                       const OffloadConfig &offload)
{
    const SystemTuning tuning;

    Phonebook phonebook;
    auto switchboard = std::make_shared<Switchboard>();
    phonebook.registerService(switchboard);

    auto metrics = std::make_shared<MetricsRegistry>();
    std::shared_ptr<TraceSink> sink;
    if (config.trace) {
        sink = std::make_shared<TraceSink>();
        switchboard->setTraceSink(sink);
    }

    DatasetConfig ds_cfg;
    ds_cfg.duration_s = toSeconds(config.duration) + 0.5;
    ds_cfg.image_width = config.camera_width;
    ds_cfg.image_height = config.camera_height;
    ds_cfg.camera_rate_hz = tuning.camera_hz;
    ds_cfg.imu_rate_hz = tuning.imu_hz;
    ds_cfg.preset = DatasetConfig::Preset::LabWalk;
    ds_cfg.seed = config.seed;
    auto data =
        std::make_shared<PreloadedDataset>(ds_cfg, config.duration);
    phonebook.registerService(data);

    AppConfig app_cfg;
    app_cfg.eye_width = config.eye_size;
    app_cfg.eye_height = config.eye_size;
    TimewarpParams tw_params;
    tw_params.fov_y_rad = app_cfg.fov_y_rad;

    std::unique_ptr<ResilienceContext> resilience =
        makeResilienceContext(config, *switchboard, metrics.get());

    CameraPlugin camera(phonebook, tuning);
    ImuPlugin imu(phonebook, tuning);
    OffloadedVioPlugin vio(phonebook, tuning, offload);
    IntegratorPlugin integrator(phonebook, tuning);
    ApplicationPlugin application(phonebook, tuning, config.app, app_cfg);
    TimewarpPlugin timewarp(phonebook, tuning, tw_params);
    AudioEncoderPlugin audio_enc(phonebook, tuning);
    AudioPlaybackPlugin audio_play(phonebook, tuning);
    if (resilience && resilience->injector())
        vio.setFaultInjector(resilience->injector());

    const PlatformModel platform = PlatformModel::get(config.platform);
    std::unique_ptr<SimScheduler> sim;
    std::unique_ptr<PoolExecutor> pool;
    ExecutorBase *executor = nullptr;
    if (config.executor == ExecutorKind::Pool) {
        PoolExecutorConfig pool_cfg;
        pool_cfg.workers = config.pool_workers;
        pool_cfg.deterministic = config.deterministic;
        pool_cfg.seed = config.seed;
        pool_cfg.platform = config.platform;
        pool = std::make_unique<PoolExecutor>(pool_cfg);
        executor = pool.get();
    } else {
        sim = std::make_unique<SimScheduler>(platform);
        executor = sim.get();
    }
    executor->setMetrics(metrics.get());
    executor->setPhonebook(&phonebook);
    if (sink)
        executor->setTraceSink(sink);
    executor->addPlugin(&camera);
    executor->addPlugin(&imu);
    executor->addPlugin(&vio);
    executor->addPlugin(&integrator);
    executor->addPlugin(&application);
    const Duration vsync = periodFromHz(tuning.display_hz);
    executor->addVsyncAlignedPlugin(&timewarp, vsync);
    executor->addPlugin(&audio_enc);
    executor->addPlugin(&audio_play);
    if (resilience) {
        resilience->attach(*executor);
        if (resilience->degradationPlugin())
            executor->addPlugin(resilience->degradationPlugin());
    }

    executor->run(config.duration);

    IntegratedResult result;
    result.config = config;
    result.vsync = vsync;
    double total_host = 0.0;
    for (const std::string &name : executor->taskNames()) {
        const TaskStats &stats = executor->stats(name);
        result.tasks.emplace(name, stats);
        double host = 0.0;
        for (const InvocationRecord &rec : stats.records)
            host += rec.host_seconds;
        result.cpu_share[name] = host;
        total_host += host;
    }
    if (total_host > 0.0) {
        for (auto &[name, host] : result.cpu_share)
            host /= total_host;
    }
    result.target_hz["camera"] = tuning.camera_hz;
    result.target_hz["vio"] = tuning.camera_hz;
    result.target_hz["imu"] = tuning.imu_hz;
    result.target_hz["integrator"] = tuning.imu_hz;
    result.target_hz["application"] = tuning.display_hz;
    result.target_hz["timewarp"] = tuning.display_hz;
    result.target_hz["audio_encoding"] = tuning.audio_hz;
    result.target_hz["audio_playback"] = tuning.audio_hz;

    result.mtp = computeMtp(executor->stats("timewarp"),
                            timewarp.imuAgesMs(), vsync);
    result.lineage_stages = {topics::kCamera, topics::kImu,
                             topics::kSlowPose, topics::kFastPose,
                             topics::kSubmittedFrame};
    if (sink) {
        result.trace = sink;
        result.lineage_mtp = computeLineageMtp(
            *sink, vsync, topics::kDisplayFrame, result.lineage_stages);
    }
    result.metrics = metrics;
    result.utilization.cpu =
        pool ? pool->cpuUtilization() : sim->cpuUtilization();
    result.utilization.gpu =
        pool ? pool->gpuUtilization() : sim->gpuUtilization();
    result.utilization.memory = std::min(
        1.0, 0.55 * result.utilization.gpu +
                 0.35 * result.utilization.cpu + 0.10);
    result.power = computePower(platform, result.utilization);
    result.vio_trajectory = vio.trajectory();
    result.extra["pose_round_trip_ms"] = vio.roundTripMs().mean();
    result.extra["frames_lost"] =
        static_cast<double>(vio.framesLost());
    result.extra["circuit_opens"] =
        static_cast<double>(vio.circuitOpens());
    result.extra["failover_poses"] =
        static_cast<double>(vio.failoverPoses());
    exportResilienceExtras(resilience.get(), result.extra);
    return result;
}

} // namespace illixr
