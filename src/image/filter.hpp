/**
 * @file
 * Image filtering kernels: separable Gaussian blur, Sobel gradients,
 * bilateral filtering (used by scene reconstruction's camera
 * processing task), and simple resampling.
 */

#pragma once

#include "image/image.hpp"

namespace illixr {

/** Separable Gaussian blur with the given sigma (radius = 3 sigma). */
ImageF gaussianBlur(const ImageF &src, double sigma);

/** Horizontal Sobel gradient (dI/dx). */
ImageF sobelX(const ImageF &src);

/** Vertical Sobel gradient (dI/dy). */
ImageF sobelY(const ImageF &src);

/**
 * Bilateral filter: Gaussian in space and in intensity. Invalid
 * pixels (value <= 0) are ignored — matching the depth-map denoise +
 * invalid-depth-rejection step of scene reconstruction.
 *
 * @param spatial_sigma Space kernel sigma in pixels.
 * @param range_sigma   Intensity kernel sigma in image units.
 */
ImageF bilateralFilter(const ImageF &src, double spatial_sigma,
                       double range_sigma);

/** Downsample by 2 with a 2x2 box average. */
ImageF downsampleHalf(const ImageF &src);

namespace detail {

/**
 * Separable Gaussian into @p dst (w*h floats); the intermediate
 * horizontal pass lives in the caller thread's ScratchArena, so the
 * pyramid path allocates nothing per frame. @p src and @p dst may not
 * alias. Row-tiled via the kernel pool; bit-identical at any width.
 */
void gaussianBlurRaw(const float *src, int w, int h, double sigma,
                     float *dst);

/** 2x2 box downsample into dst (max(1,w/2) x max(1,h/2) floats). */
void downsampleHalfRaw(const float *src, int w, int h, float *dst);

} // namespace detail

/** Resize to an arbitrary resolution with bilinear sampling. */
ImageF resizeBilinear(const ImageF &src, int new_width, int new_height);

} // namespace illixr
