/**
 * @file
 * Image containers shared by the camera path, the renderer, the
 * visual pipeline, and the QoE metrics.
 *
 * Grayscale images are single-plane float in [0, 1]; color images are
 * three planar float channels. Planar storage keeps the per-channel
 * kernels (blur, SSIM windows, chromatic-aberration sampling) simple
 * and cache-friendly.
 */

#pragma once

#include "foundation/vec.hpp"

#include <cstddef>
#include <vector>

namespace illixr {

/** Single-channel float image, row-major, values nominally in [0, 1]. */
class ImageF
{
  public:
    ImageF() = default;
    ImageF(int width, int height, float fill = 0.0f);

    int width() const { return width_; }
    int height() const { return height_; }
    bool empty() const { return data_.empty(); }
    std::size_t pixelCount() const { return data_.size(); }

    float &at(int x, int y) { return data_[idx(x, y)]; }
    float at(int x, int y) const { return data_[idx(x, y)]; }

    /** Clamped integer access (edge pixels repeat outside bounds). */
    float atClamped(int x, int y) const;

    /** Bilinear sample at continuous coordinates (pixel centers at
     *  integer coordinates); clamps to the image border. */
    float sampleBilinear(double x, double y) const;

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Mean pixel value (0 for an empty image). */
    double mean() const;

    /** Fill every pixel. */
    void fill(float value);

    bool inBounds(int x, int y) const
    {
        return x >= 0 && y >= 0 && x < width_ && y < height_;
    }

  private:
    std::size_t idx(int x, int y) const
    {
        return static_cast<std::size_t>(y) * width_ + x;
    }

    int width_ = 0;
    int height_ = 0;
    std::vector<float> data_;
};

/** Three-plane RGB float image. */
class RgbImage
{
  public:
    RgbImage() = default;
    RgbImage(int width, int height, const Vec3 &fill = Vec3(0, 0, 0));

    int width() const { return r.width(); }
    int height() const { return r.height(); }
    bool empty() const { return r.empty(); }

    /** Set one pixel from an RGB triple (components in [0, 1]). */
    void setPixel(int x, int y, const Vec3 &rgb);

    /** Read one pixel as an RGB triple. */
    Vec3 pixel(int x, int y) const;

    /** Bilinear sample of all channels. */
    Vec3 sampleBilinear(double x, double y) const;

    /** ITU-R BT.709 luminance image. */
    ImageF luminance() const;

    ImageF r;
    ImageF g;
    ImageF b;
};

/** Single-channel float depth image in meters; 0 marks invalid. */
using DepthImage = ImageF;

} // namespace illixr
