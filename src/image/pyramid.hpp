/**
 * @file
 * Image pyramid for the pyramidal Lucas–Kanade tracker.
 */

#pragma once

#include "image/image.hpp"

#include <memory>
#include <vector>

namespace illixr {

/**
 * Gaussian image pyramid: level 0 is the source image, each higher
 * level is blurred and halved.
 *
 * Level 0 is held by shared_ptr, so a pyramid built from a camera
 * frame event aliases the event's image instead of deep-copying it,
 * and every consumer of the same frame shares one pyramid
 * (`std::shared_ptr<const ImagePyramid>` on the camera->pyramid->
 * tracker path). The blur temporaries live in the calling thread's
 * ScratchArena; only the stored levels themselves are heap-allocated.
 */
class ImagePyramid
{
  public:
    ImagePyramid() = default;

    /**
     * Build @p levels levels from @p base (levels >= 1). Stops early
     * when a level would fall below 32 pixels on a side. Copies the
     * base image; prefer the shared_ptr overload on hot paths.
     */
    ImagePyramid(const ImageF &base, int levels);

    /** Zero-copy build: level 0 aliases @p base. */
    ImagePyramid(std::shared_ptr<const ImageF> base, int levels);

    int levels() const
    {
        return base_ ? 1 + static_cast<int>(higher_.size()) : 0;
    }

    const ImageF &level(int i) const
    {
        return i == 0 ? *base_ : higher_[i - 1];
    }

    /** The shared base image (level 0). */
    const std::shared_ptr<const ImageF> &baseShared() const
    {
        return base_;
    }

  private:
    void build(int levels);

    std::shared_ptr<const ImageF> base_;
    std::vector<ImageF> higher_; ///< Levels 1..n-1.
};

} // namespace illixr
