/**
 * @file
 * Image pyramid for the pyramidal Lucas–Kanade tracker.
 */

#pragma once

#include "image/image.hpp"

#include <vector>

namespace illixr {

/**
 * Gaussian image pyramid: level 0 is the source image, each higher
 * level is blurred and halved.
 */
class ImagePyramid
{
  public:
    ImagePyramid() = default;

    /**
     * Build @p levels levels from @p base (levels >= 1). Stops early
     * when a level would fall below 16 pixels on a side.
     */
    ImagePyramid(const ImageF &base, int levels);

    int levels() const { return static_cast<int>(levels_.size()); }
    const ImageF &level(int i) const { return levels_[i]; }

  private:
    std::vector<ImageF> levels_;
};

} // namespace illixr
