#include "image/image.hpp"

#include <algorithm>
#include <cmath>

namespace illixr {

ImageF::ImageF(int width, int height, float fill)
    : width_(width), height_(height),
      data_(static_cast<std::size_t>(width) * height, fill)
{
}

float
ImageF::atClamped(int x, int y) const
{
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return data_[idx(x, y)];
}

float
ImageF::sampleBilinear(double x, double y) const
{
    x = std::clamp(x, 0.0, static_cast<double>(width_ - 1));
    y = std::clamp(y, 0.0, static_cast<double>(height_ - 1));
    const int x0 = static_cast<int>(x);
    const int y0 = static_cast<int>(y);
    const int x1 = std::min(x0 + 1, width_ - 1);
    const int y1 = std::min(y0 + 1, height_ - 1);
    const double fx = x - x0;
    const double fy = y - y0;
    const double top = at(x0, y0) * (1.0 - fx) + at(x1, y0) * fx;
    const double bot = at(x0, y1) * (1.0 - fx) + at(x1, y1) * fx;
    return static_cast<float>(top * (1.0 - fy) + bot * fy);
}

double
ImageF::mean() const
{
    if (data_.empty())
        return 0.0;
    double acc = 0.0;
    for (float v : data_)
        acc += v;
    return acc / static_cast<double>(data_.size());
}

void
ImageF::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

RgbImage::RgbImage(int width, int height, const Vec3 &fill)
    : r(width, height, static_cast<float>(fill.x)),
      g(width, height, static_cast<float>(fill.y)),
      b(width, height, static_cast<float>(fill.z))
{
}

void
RgbImage::setPixel(int x, int y, const Vec3 &rgb)
{
    r.at(x, y) = static_cast<float>(rgb.x);
    g.at(x, y) = static_cast<float>(rgb.y);
    b.at(x, y) = static_cast<float>(rgb.z);
}

Vec3
RgbImage::pixel(int x, int y) const
{
    return {r.at(x, y), g.at(x, y), b.at(x, y)};
}

Vec3
RgbImage::sampleBilinear(double x, double y) const
{
    return {r.sampleBilinear(x, y), g.sampleBilinear(x, y),
            b.sampleBilinear(x, y)};
}

ImageF
RgbImage::luminance() const
{
    ImageF lum(width(), height());
    for (int y = 0; y < height(); ++y) {
        for (int x = 0; x < width(); ++x) {
            lum.at(x, y) = 0.2126f * r.at(x, y) + 0.7152f * g.at(x, y) +
                           0.0722f * b.at(x, y);
        }
    }
    return lum;
}

} // namespace illixr
