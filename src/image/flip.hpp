/**
 * @file
 * FLIP perceptual image-difference metric (Andersson et al. 2020),
 * the second QoE image metric of paper §II-C / Table V.
 *
 * This is a faithful structural implementation of FLIP for LDR
 * images: a color-difference term computed in an opponent color space
 * after contrast-sensitivity (CSF) filtering, combined with a feature
 * (edge/point) difference term as
 *
 *     deltaE = deltaE_color ^ (1 - deltaE_feature)
 *
 * and mean-pooled. The CSF filters are Gaussian approximations
 * parameterized by pixels-per-degree, as in the reference
 * implementation; the exact fitted constants differ slightly, which
 * changes absolute values marginally but preserves the metric's
 * behaviour (0 = identical, 1 = maximally different, sensitivity to
 * both color shifts and structural edges).
 */

#pragma once

#include "image/image.hpp"

namespace illixr {

/** FLIP evaluation parameters. */
struct FlipOptions
{
    /** Pixels per degree of visual angle (67 ~= the paper's setup:
     *  0.7 m viewing distance, 0.27 mm pitch). */
    double pixels_per_degree = 67.0;
};

/**
 * Mean FLIP error between a test and a reference image, in [0, 1].
 * Returns 1.0 for size mismatch (maximally different).
 */
double flip(const RgbImage &test, const RgbImage &reference,
            const FlipOptions &options = FlipOptions());

/** Per-pixel FLIP error map. */
ImageF flipMap(const RgbImage &test, const RgbImage &reference,
               const FlipOptions &options = FlipOptions());

} // namespace illixr
