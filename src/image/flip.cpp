#include "image/flip.hpp"

#include "image/filter.hpp"

#include <algorithm>
#include <cmath>

namespace illixr {

namespace {

/** sRGB electro-optical transfer function (gamma decode). */
double
srgbToLinear(double c)
{
    if (c <= 0.04045)
        return c / 12.92;
    return std::pow((c + 0.055) / 1.055, 2.4);
}

/** Linear RGB -> CIE XYZ (D65). */
Vec3
linearRgbToXyz(const Vec3 &rgb)
{
    return {0.4124 * rgb.x + 0.3576 * rgb.y + 0.1805 * rgb.z,
            0.2126 * rgb.x + 0.7152 * rgb.y + 0.0722 * rgb.z,
            0.0193 * rgb.x + 0.1192 * rgb.y + 0.9505 * rgb.z};
}

double
labF(double t)
{
    constexpr double delta = 6.0 / 29.0;
    if (t > delta * delta * delta)
        return std::cbrt(t);
    return t / (3.0 * delta * delta) + 4.0 / 29.0;
}

/** XYZ -> CIE L*a*b* with D65 white. */
Vec3
xyzToLab(const Vec3 &xyz)
{
    constexpr double xn = 0.95047, yn = 1.0, zn = 1.08883;
    const double fx = labF(xyz.x / xn);
    const double fy = labF(xyz.y / yn);
    const double fz = labF(xyz.z / zn);
    return {116.0 * fy - 16.0, 500.0 * (fx - fy), 200.0 * (fy - fz)};
}

/**
 * HyAB color distance (Euclidean in ab, city-block in L), the color
 * error FLIP is built on.
 */
double
hyab(const Vec3 &lab1, const Vec3 &lab2)
{
    const double dl = std::fabs(lab1.x - lab2.x);
    const double da = lab1.y - lab2.y;
    const double db = lab1.z - lab2.z;
    return dl + std::sqrt(da * da + db * db);
}

/** Per-channel Gaussian CSF prefilter in the opponent (here: per
 *  RGB plane as a stand-in) domain; sigma scales with ppd. */
RgbImage
csfFilter(const RgbImage &img, double pixels_per_degree)
{
    // Achromatic channel resolves ~0.04 deg, chromatic ~0.08 deg.
    const double sigma_a =
        std::max(0.35, 0.04 * pixels_per_degree * 0.5);
    const double sigma_c =
        std::max(0.5, 0.08 * pixels_per_degree * 0.5);
    RgbImage out;
    out.r = gaussianBlur(img.r, sigma_c);
    out.g = gaussianBlur(img.g, sigma_a);
    out.b = gaussianBlur(img.b, sigma_c);
    return out;
}

/** Edge + point feature magnitude from first/second derivatives of
 *  luminance at the feature-detection scale. */
ImageF
featureMagnitude(const ImageF &lum, double pixels_per_degree)
{
    const double sigma = std::max(0.5, 0.5 * pixels_per_degree / 15.0);
    const ImageF smooth = gaussianBlur(lum, sigma);
    const ImageF gx = sobelX(smooth);
    const ImageF gy = sobelY(smooth);
    // Second derivative (point detector) via gradient-of-gradient.
    const ImageF gxx = sobelX(gx);
    const ImageF gyy = sobelY(gy);

    ImageF mag(lum.width(), lum.height());
    for (int y = 0; y < lum.height(); ++y) {
        for (int x = 0; x < lum.width(); ++x) {
            const double edge = std::sqrt(
                gx.at(x, y) * gx.at(x, y) + gy.at(x, y) * gy.at(x, y));
            const double point = std::fabs(gxx.at(x, y) + gyy.at(x, y));
            mag.at(x, y) = static_cast<float>(std::max(edge, point));
        }
    }
    return mag;
}

} // namespace

ImageF
flipMap(const RgbImage &test, const RgbImage &reference,
        const FlipOptions &options)
{
    const int w = test.width();
    const int h = test.height();
    if (w != reference.width() || h != reference.height() || test.empty()) {
        ImageF err(std::max(w, 1), std::max(h, 1));
        err.fill(1.0f);
        return err;
    }

    // --- Color pipeline: CSF filter, then per-pixel HyAB in Lab. ---
    const RgbImage test_f = csfFilter(test, options.pixels_per_degree);
    const RgbImage ref_f = csfFilter(reference, options.pixels_per_degree);

    // Normalization: HyAB distance between green and magenta (the
    // most-distant LDR color pair used by FLIP for scaling).
    const Vec3 green_lab =
        xyzToLab(linearRgbToXyz(Vec3(0.0, 1.0, 0.0)));
    const Vec3 magenta_lab =
        xyzToLab(linearRgbToXyz(Vec3(1.0, 0.0, 1.0)));
    const double hyab_max = hyab(green_lab, magenta_lab);
    constexpr double kQc = 0.7; // Perceptual remap exponent.

    ImageF color_err(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const Vec3 t = test_f.pixel(x, y);
            const Vec3 r = ref_f.pixel(x, y);
            const Vec3 t_lab = xyzToLab(linearRgbToXyz(
                Vec3(srgbToLinear(t.x), srgbToLinear(t.y),
                     srgbToLinear(t.z))));
            const Vec3 r_lab = xyzToLab(linearRgbToXyz(
                Vec3(srgbToLinear(r.x), srgbToLinear(r.y),
                     srgbToLinear(r.z))));
            const double d = hyab(t_lab, r_lab) / hyab_max;
            color_err.at(x, y) = static_cast<float>(
                std::clamp(std::pow(d, kQc), 0.0, 1.0));
        }
    }

    // --- Feature pipeline: edge/point magnitude differences. ---
    const ImageF test_feat =
        featureMagnitude(test.luminance(), options.pixels_per_degree);
    const ImageF ref_feat =
        featureMagnitude(reference.luminance(), options.pixels_per_degree);
    constexpr double kQf = 0.5;

    ImageF err(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const double feat_err = std::clamp(
                std::pow(std::fabs(test_feat.at(x, y) - ref_feat.at(x, y)) *
                             4.0,
                         kQf),
                0.0, 1.0);
            // FLIP combination: feature differences amplify color error.
            // Guard c == 0 so pow(0, 0) cannot report maximal error on
            // a pixel whose colors match exactly.
            const double c = color_err.at(x, y);
            err.at(x, y) = static_cast<float>(
                c == 0.0 ? 0.0 : std::pow(c, 1.0 - feat_err));
        }
    }
    return err;
}

double
flip(const RgbImage &test, const RgbImage &reference,
     const FlipOptions &options)
{
    return flipMap(test, reference, options).mean();
}

} // namespace illixr
