/**
 * @file
 * Minimal binary PPM/PGM image I/O, so examples can dump the frames
 * the visual pipeline produces and experiments can be inspected
 * without any external imaging dependency.
 */

#pragma once

#include "image/image.hpp"

#include <string>

namespace illixr {

/** Write a grayscale image as binary PGM (P5), clamping to [0, 1]. */
bool writePgm(const ImageF &img, const std::string &path);

/** Write an RGB image as binary PPM (P6), clamping to [0, 1]. */
bool writePpm(const RgbImage &img, const std::string &path);

/** Read a binary PGM (P5) file. Returns an empty image on failure. */
ImageF readPgm(const std::string &path);

/** Read a binary PPM (P6) file. Returns an empty image on failure. */
RgbImage readPpm(const std::string &path);

} // namespace illixr
