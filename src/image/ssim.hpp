/**
 * @file
 * Structural Similarity Index (SSIM), Wang et al. 2004 — one of the
 * two image-quality QoE metrics ILLIXR reports (paper §II-C,
 * Table V). Computed on luminance with the standard 11x11 Gaussian
 * window (sigma 1.5) and K1 = 0.01, K2 = 0.03.
 */

#pragma once

#include "image/image.hpp"

namespace illixr {

/** Mean SSIM between two equally sized grayscale images, in [-1, 1]. */
double ssim(const ImageF &a, const ImageF &b);

/** Mean SSIM on the luminance of two RGB images. */
double ssim(const RgbImage &a, const RgbImage &b);

/** Per-pixel SSIM map (same size as the inputs). */
ImageF ssimMap(const ImageF &a, const ImageF &b);

} // namespace illixr
