#include "image/filter.hpp"

#include "foundation/simd.hpp"
#include "runtime/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace illixr {

namespace {

/** Rows per tile for the row-parallel filter kernels. */
constexpr std::size_t kRowGrain = 16;

/**
 * Row grain for an image of @p w x @p h: camera-sized frames
 * (< 64k px) run as a single tile because the per-row work is far
 * below the kernel-pool launch handoff cost (the fig3 width-4
 * inversion). A pure function of the image shape, so tiling stays
 * width-independent.
 */
inline std::size_t
rowGrainFor(int w, int h)
{
    return static_cast<std::size_t>(w) * h < 64 * 1024
               ? static_cast<std::size_t>(std::max(h, 1))
               : kRowGrain;
}

inline int
clampi(int v, int lo, int hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Normalized 1-D Gaussian kernel with radius 3 sigma. */
std::vector<double>
gaussianKernel(double sigma)
{
    const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
    std::vector<double> k(2 * radius + 1);
    double sum = 0.0;
    for (int i = -radius; i <= radius; ++i) {
        const double v = std::exp(-(i * i) / (2.0 * sigma * sigma));
        k[i + radius] = v;
        sum += v;
    }
    for (double &v : k)
        v /= sum;
    return k;
}

} // namespace

namespace detail {

void
gaussianBlurRaw(const float *src, int w, int h, double sigma, float *dst)
{
    if (w <= 0 || h <= 0)
        return;
    // The vectorized passes assume distinct src/dst ranges (in-place
    // blur was never a supported call pattern).
    simd::requireNoOverlap(src, static_cast<std::size_t>(w) * h *
                                    sizeof(float),
                           dst, static_cast<std::size_t>(w) * h *
                                    sizeof(float),
                           "gaussianBlurRaw");
    if (sigma <= 0.0) {
        std::copy(src, src + static_cast<std::size_t>(w) * h, dst);
        return;
    }
    const auto kernel = gaussianKernel(sigma);
    const int radius = static_cast<int>(kernel.size() / 2);

    ArenaFrame scratch;
    float *tmp = scratch.alloc<float>(static_cast<std::size_t>(w) * h);

    // Horizontal pass (rows are independent). Interior pixels — where
    // the clamp is the identity — run four at a time in Vec<double, 4>
    // with the double accumulator and serial tap order preserved
    // (float -> double widening is exact and the final narrowing store
    // is the same IEEE round, so results are bit-identical to the
    // scalar loop; DESIGN.md "SIMD & data layout"). Border pixels keep
    // the scalar clamped path.
    const std::size_t row_grain = rowGrainFor(w, h);
    parallelFor("gaussian_h", 0, static_cast<std::size_t>(h), row_grain,
                [&](std::size_t yb, std::size_t ye) {
                    using simd::VecD4;
                    for (std::size_t y = yb; y < ye; ++y) {
                        const float *row = src + y * w;
                        float *out_row = tmp + y * w;
                        auto scalar_px = [&](int x) {
                            double acc = 0.0;
                            for (int k = -radius; k <= radius; ++k)
                                acc += kernel[k + radius] *
                                       row[clampi(x + k, 0, w - 1)];
                            out_row[x] = static_cast<float>(acc);
                        };
                        const int interior_end = w - radius;
                        int x = 0;
                        for (; x < std::min(radius, w); ++x)
                            scalar_px(x);
                        for (; x + 4 <= interior_end; x += 4) {
                            VecD4 acc = VecD4::zero();
                            for (int k = -radius; k <= radius; ++k)
                                acc = simd::madd(
                                    acc,
                                    VecD4::broadcast(kernel[k + radius]),
                                    simd::widenLoad(row + x + k));
                            simd::narrowStore4(acc, out_row + x);
                        }
                        for (; x < w; ++x)
                            scalar_px(x);
                    }
                });
    // Vertical pass (the horizontal pass is fully materialized, so
    // output rows only read tmp; rows stay independent). The clamp is
    // on y — uniform across a row — so every x vectorizes.
    parallelFor("gaussian_v", 0, static_cast<std::size_t>(h), row_grain,
                [&](std::size_t yb, std::size_t ye) {
                    using simd::VecD4;
                    for (std::size_t y = yb; y < ye; ++y) {
                        float *out_row = dst + y * w;
                        int x = 0;
                        for (; x + 4 <= w; x += 4) {
                            VecD4 acc = VecD4::zero();
                            for (int k = -radius; k <= radius; ++k) {
                                const int yy = clampi(
                                    static_cast<int>(y) + k, 0, h - 1);
                                acc = simd::madd(
                                    acc,
                                    VecD4::broadcast(kernel[k + radius]),
                                    simd::widenLoad(
                                        tmp +
                                        static_cast<std::size_t>(yy) * w +
                                        x));
                            }
                            simd::narrowStore4(acc, out_row + x);
                        }
                        for (; x < w; ++x) {
                            double acc = 0.0;
                            for (int k = -radius; k <= radius; ++k) {
                                const int yy = clampi(
                                    static_cast<int>(y) + k, 0, h - 1);
                                acc += kernel[k + radius] *
                                       tmp[static_cast<std::size_t>(yy) *
                                               w +
                                           x];
                            }
                            out_row[x] = static_cast<float>(acc);
                        }
                    }
                });
}

void
downsampleHalfRaw(const float *src, int w, int h, float *dst)
{
    const int ow = std::max(1, w / 2);
    const int oh = std::max(1, h / 2);
    // dst rows read src rows at different offsets; overlap corrupts.
    simd::requireNoOverlap(src, static_cast<std::size_t>(w) * h *
                                    sizeof(float),
                           dst, static_cast<std::size_t>(ow) * oh *
                                    sizeof(float),
                           "downsampleHalfRaw");
    parallelFor(
        "downsample", 0, static_cast<std::size_t>(oh), rowGrainFor(ow, oh),
        [&](std::size_t yb, std::size_t ye) {
            for (std::size_t y = yb; y < ye; ++y) {
                float *out_row = dst + y * ow;
                for (int x = 0; x < ow; ++x) {
                    const int x0 = clampi(2 * x, 0, w - 1);
                    const int x1 = clampi(2 * x + 1, 0, w - 1);
                    const int y0 =
                        clampi(2 * static_cast<int>(y), 0, h - 1);
                    const int y1 =
                        clampi(2 * static_cast<int>(y) + 1, 0, h - 1);
                    const double v =
                        (src[static_cast<std::size_t>(y0) * w + x0] +
                         src[static_cast<std::size_t>(y0) * w + x1] +
                         src[static_cast<std::size_t>(y1) * w + x0] +
                         src[static_cast<std::size_t>(y1) * w + x1]) /
                        4.0;
                    out_row[x] = static_cast<float>(v);
                }
            }
        });
}

} // namespace detail

ImageF
gaussianBlur(const ImageF &src, double sigma)
{
    if (src.empty() || sigma <= 0.0)
        return src;
    ImageF out(src.width(), src.height());
    detail::gaussianBlurRaw(src.data(), src.width(), src.height(), sigma,
                            out.data());
    return out;
}

ImageF
sobelX(const ImageF &src)
{
    ImageF out(src.width(), src.height());
    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            const double v =
                -src.atClamped(x - 1, y - 1) + src.atClamped(x + 1, y - 1) -
                2.0 * src.atClamped(x - 1, y) + 2.0 * src.atClamped(x + 1, y) -
                src.atClamped(x - 1, y + 1) + src.atClamped(x + 1, y + 1);
            out.at(x, y) = static_cast<float>(v / 8.0);
        }
    }
    return out;
}

ImageF
sobelY(const ImageF &src)
{
    ImageF out(src.width(), src.height());
    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            const double v =
                -src.atClamped(x - 1, y - 1) - 2.0 * src.atClamped(x, y - 1) -
                src.atClamped(x + 1, y - 1) + src.atClamped(x - 1, y + 1) +
                2.0 * src.atClamped(x, y + 1) + src.atClamped(x + 1, y + 1);
            out.at(x, y) = static_cast<float>(v / 8.0);
        }
    }
    return out;
}

ImageF
bilateralFilter(const ImageF &src, double spatial_sigma, double range_sigma)
{
    const int radius =
        std::max(1, static_cast<int>(std::ceil(2.0 * spatial_sigma)));
    ImageF out(src.width(), src.height());
    const double inv_2ss = 1.0 / (2.0 * spatial_sigma * spatial_sigma);
    const double inv_2rs = 1.0 / (2.0 * range_sigma * range_sigma);

    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            const double center = src.at(x, y);
            if (center <= 0.0) {
                out.at(x, y) = 0.0f; // Invalid stays invalid.
                continue;
            }
            double acc = 0.0;
            double weight_sum = 0.0;
            for (int dy = -radius; dy <= radius; ++dy) {
                for (int dx = -radius; dx <= radius; ++dx) {
                    const double v = src.atClamped(x + dx, y + dy);
                    if (v <= 0.0)
                        continue; // Reject invalid neighbors.
                    const double diff = v - center;
                    const double w =
                        std::exp(-(dx * dx + dy * dy) * inv_2ss) *
                        std::exp(-diff * diff * inv_2rs);
                    acc += w * v;
                    weight_sum += w;
                }
            }
            out.at(x, y) =
                static_cast<float>(weight_sum > 0.0 ? acc / weight_sum : 0.0);
        }
    }
    return out;
}

ImageF
downsampleHalf(const ImageF &src)
{
    const int w = std::max(1, src.width() / 2);
    const int h = std::max(1, src.height() / 2);
    ImageF out(w, h);
    if (!src.empty())
        detail::downsampleHalfRaw(src.data(), src.width(), src.height(),
                                  out.data());
    return out;
}

ImageF
resizeBilinear(const ImageF &src, int new_width, int new_height)
{
    ImageF out(new_width, new_height);
    const double sx =
        static_cast<double>(src.width()) / static_cast<double>(new_width);
    const double sy =
        static_cast<double>(src.height()) / static_cast<double>(new_height);
    for (int y = 0; y < new_height; ++y) {
        for (int x = 0; x < new_width; ++x) {
            out.at(x, y) = src.sampleBilinear((x + 0.5) * sx - 0.5,
                                              (y + 0.5) * sy - 0.5);
        }
    }
    return out;
}

} // namespace illixr
