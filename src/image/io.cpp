#include "image/io.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace illixr {

namespace {

unsigned char
toByte(float v)
{
    return static_cast<unsigned char>(
        std::clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f);
}

/** Skip PNM whitespace and comments, then parse one integer. */
bool
readPnmInt(std::FILE *f, int &value)
{
    int c = std::fgetc(f);
    while (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '#') {
        if (c == '#') {
            while (c != '\n' && c != EOF)
                c = std::fgetc(f);
        }
        c = std::fgetc(f);
    }
    if (c == EOF)
        return false;
    value = 0;
    bool any = false;
    while (c >= '0' && c <= '9') {
        value = value * 10 + (c - '0');
        any = true;
        c = std::fgetc(f);
    }
    return any;
}

} // namespace

bool
writePgm(const ImageF &img, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P5\n%d %d\n255\n", img.width(), img.height());
    std::vector<unsigned char> row(img.width());
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x)
            row[x] = toByte(img.at(x, y));
        std::fwrite(row.data(), 1, row.size(), f);
    }
    std::fclose(f);
    return true;
}

bool
writePpm(const RgbImage &img, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P6\n%d %d\n255\n", img.width(), img.height());
    std::vector<unsigned char> row(static_cast<std::size_t>(img.width()) * 3);
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            row[3 * x + 0] = toByte(img.r.at(x, y));
            row[3 * x + 1] = toByte(img.g.at(x, y));
            row[3 * x + 2] = toByte(img.b.at(x, y));
        }
        std::fwrite(row.data(), 1, row.size(), f);
    }
    std::fclose(f);
    return true;
}

ImageF
readPgm(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    char magic[3] = {0, 0, 0};
    if (std::fread(magic, 1, 2, f) != 2 || magic[0] != 'P' ||
        magic[1] != '5') {
        std::fclose(f);
        return {};
    }
    int w = 0, h = 0, maxval = 0;
    if (!readPnmInt(f, w) || !readPnmInt(f, h) || !readPnmInt(f, maxval) ||
        w <= 0 || h <= 0 || maxval <= 0 || maxval > 255) {
        std::fclose(f);
        return {};
    }
    ImageF img(w, h);
    std::vector<unsigned char> row(w);
    for (int y = 0; y < h; ++y) {
        if (std::fread(row.data(), 1, row.size(), f) != row.size()) {
            std::fclose(f);
            return {};
        }
        for (int x = 0; x < w; ++x)
            img.at(x, y) = static_cast<float>(row[x]) /
                           static_cast<float>(maxval);
    }
    std::fclose(f);
    return img;
}

RgbImage
readPpm(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    char magic[3] = {0, 0, 0};
    if (std::fread(magic, 1, 2, f) != 2 || magic[0] != 'P' ||
        magic[1] != '6') {
        std::fclose(f);
        return {};
    }
    int w = 0, h = 0, maxval = 0;
    if (!readPnmInt(f, w) || !readPnmInt(f, h) || !readPnmInt(f, maxval) ||
        w <= 0 || h <= 0 || maxval <= 0 || maxval > 255) {
        std::fclose(f);
        return {};
    }
    RgbImage img(w, h);
    std::vector<unsigned char> row(static_cast<std::size_t>(w) * 3);
    for (int y = 0; y < h; ++y) {
        if (std::fread(row.data(), 1, row.size(), f) != row.size()) {
            std::fclose(f);
            return {};
        }
        for (int x = 0; x < w; ++x) {
            img.r.at(x, y) = static_cast<float>(row[3 * x + 0]) /
                             static_cast<float>(maxval);
            img.g.at(x, y) = static_cast<float>(row[3 * x + 1]) /
                             static_cast<float>(maxval);
            img.b.at(x, y) = static_cast<float>(row[3 * x + 2]) /
                             static_cast<float>(maxval);
        }
    }
    std::fclose(f);
    return img;
}

} // namespace illixr
