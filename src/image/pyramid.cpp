#include "image/pyramid.hpp"

#include "image/filter.hpp"

namespace illixr {

ImagePyramid::ImagePyramid(const ImageF &base, int levels)
{
    levels_.push_back(base);
    for (int i = 1; i < levels; ++i) {
        const ImageF &prev = levels_.back();
        if (prev.width() < 32 || prev.height() < 32)
            break;
        levels_.push_back(downsampleHalf(gaussianBlur(prev, 1.0)));
    }
}

} // namespace illixr
