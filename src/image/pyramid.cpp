#include "image/pyramid.hpp"

#include "image/filter.hpp"
#include "runtime/parallel.hpp"

#include <algorithm>

namespace illixr {

ImagePyramid::ImagePyramid(const ImageF &base, int levels)
    : base_(std::make_shared<const ImageF>(base))
{
    build(levels);
}

ImagePyramid::ImagePyramid(std::shared_ptr<const ImageF> base, int levels)
    : base_(std::move(base))
{
    if (base_)
        build(levels);
}

void
ImagePyramid::build(int levels)
{
    const ImageF *prev = base_.get();
    for (int i = 1; i < levels; ++i) {
        if (prev->width() < 32 || prev->height() < 32)
            break;
        const int w = prev->width();
        const int h = prev->height();
        // The blurred full-resolution intermediate is scratch: it only
        // feeds the downsample, so it lives in the arena.
        ArenaFrame scratch;
        float *blurred =
            scratch.alloc<float>(static_cast<std::size_t>(w) * h);
        detail::gaussianBlurRaw(prev->data(), w, h, 1.0, blurred);
        ImageF next(std::max(1, w / 2), std::max(1, h / 2));
        detail::downsampleHalfRaw(blurred, w, h, next.data());
        higher_.push_back(std::move(next));
        prev = &higher_.back();
    }
}

} // namespace illixr
