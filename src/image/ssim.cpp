#include "image/ssim.hpp"

#include "image/filter.hpp"

namespace illixr {

namespace {

constexpr double kK1 = 0.01;
constexpr double kK2 = 0.03;
constexpr double kDynamicRange = 1.0; // Images are in [0, 1].
constexpr double kC1 = (kK1 * kDynamicRange) * (kK1 * kDynamicRange);
constexpr double kC2 = (kK2 * kDynamicRange) * (kK2 * kDynamicRange);
constexpr double kWindowSigma = 1.5;

ImageF
multiply(const ImageF &a, const ImageF &b)
{
    ImageF out(a.width(), a.height());
    for (int y = 0; y < a.height(); ++y)
        for (int x = 0; x < a.width(); ++x)
            out.at(x, y) = a.at(x, y) * b.at(x, y);
    return out;
}

} // namespace

ImageF
ssimMap(const ImageF &a, const ImageF &b)
{
    // Local statistics via Gaussian windows, the standard formulation.
    const ImageF mu_a = gaussianBlur(a, kWindowSigma);
    const ImageF mu_b = gaussianBlur(b, kWindowSigma);
    const ImageF a_sq = gaussianBlur(multiply(a, a), kWindowSigma);
    const ImageF b_sq = gaussianBlur(multiply(b, b), kWindowSigma);
    const ImageF ab = gaussianBlur(multiply(a, b), kWindowSigma);

    ImageF map(a.width(), a.height());
    for (int y = 0; y < a.height(); ++y) {
        for (int x = 0; x < a.width(); ++x) {
            const double ma = mu_a.at(x, y);
            const double mb = mu_b.at(x, y);
            const double var_a = a_sq.at(x, y) - ma * ma;
            const double var_b = b_sq.at(x, y) - mb * mb;
            const double cov = ab.at(x, y) - ma * mb;
            const double num =
                (2.0 * ma * mb + kC1) * (2.0 * cov + kC2);
            const double den =
                (ma * ma + mb * mb + kC1) * (var_a + var_b + kC2);
            map.at(x, y) = static_cast<float>(num / den);
        }
    }
    return map;
}

double
ssim(const ImageF &a, const ImageF &b)
{
    if (a.empty() || a.width() != b.width() || a.height() != b.height())
        return 0.0;
    return ssimMap(a, b).mean();
}

double
ssim(const RgbImage &a, const RgbImage &b)
{
    return ssim(a.luminance(), b.luminance());
}

} // namespace illixr
